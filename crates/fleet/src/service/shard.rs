//! One capacity region's worker-side state: a [`FleetPlanner`] over the
//! region's path subset, the global↔local id maps, and the tick queue.

use std::collections::BTreeMap;

use dmc_core::{Plan, ScenarioPath};
use dmc_sim::LinkChange;

use super::router::ServiceEvent;
use crate::error::FleetError;
use crate::flow::{FlowId, FlowRequest};
use crate::planner::{AdmissionDecision, FleetConfig, FleetPlanner};
use crate::schedule::{
    ScheduleAdvance, ScheduleDecision, SchedulePlanner, ScheduleRequest, TimeGrid,
};

/// One queued submission, already localized to this shard (path indices
/// are shard-local; `seq` is the global submission sequence number).
#[derive(Debug, Clone)]
pub(crate) enum ShardOp {
    /// Offer a flow whose whole path set lives in this region.
    Offer {
        /// Global submission sequence — doubles as the flow's global id.
        seq: u64,
        /// The request, with `paths()` rewritten to shard-local indices.
        request: FlowRequest,
    },
    /// Depart a flow this shard owns.
    Depart {
        /// Global submission sequence of the departure itself.
        seq: u64,
        /// Global id of the departing flow.
        flow: u64,
    },
    /// Apply a link change to one of this shard's paths.
    Link {
        /// Global submission sequence of the change.
        seq: u64,
        /// Shard-local path index.
        path: usize,
        /// The change, in [`dmc_sim::LinkChange`] vocabulary.
        change: LinkChange,
    },
}

/// One region's planner plus the bookkeeping the router needs: which
/// global flow ids map to which local [`FlowId`]s, the queue of ops for
/// the next tick, and the events the last tick produced.
///
/// A shard is self-contained — it never touches another shard's state —
/// which is what makes the router's parallel tick phase deterministic.
pub(crate) struct Shard {
    /// Sorted global indices of this region's paths.
    paths: Vec<usize>,
    /// This shard's private telemetry fork (never the router's parent
    /// registry): the parallel tick phase records into it freely, and
    /// the router absorbs every fork in shard order at snapshot time.
    obs: dmc_obs::Obs,
    planner: FleetPlanner,
    /// The optional slotted reservation plane over the same path subset
    /// (present iff [`super::ServiceConfig`] carries a [`TimeGrid`]).
    /// It shares this shard's telemetry fork, so its
    /// `fleet.reservations`/`fleet.carryover` counters surface through
    /// the router's snapshot merge like everything else.
    schedule: Option<SchedulePlanner>,
    /// Global flow id (submission seq) → local planner id.
    to_local: BTreeMap<u64, FlowId>,
    /// Local planner id → global flow id.
    to_global: BTreeMap<FlowId, u64>,
    queue: Vec<ShardOp>,
    out: Vec<ServiceEvent>,
    error: Option<FleetError>,
}

impl Shard {
    pub(crate) fn new(
        global_paths: Vec<usize>,
        subset: Vec<ScenarioPath>,
        config: FleetConfig,
        grid: Option<TimeGrid>,
    ) -> Result<Self, FleetError> {
        let obs = config.obs.clone();
        let schedule = match grid {
            Some(grid) => Some(SchedulePlanner::new(subset.clone(), grid, config.clone())?),
            None => None,
        };
        Ok(Shard {
            paths: global_paths,
            obs,
            planner: FleetPlanner::new(subset, config)?,
            schedule,
            to_local: BTreeMap::new(),
            to_global: BTreeMap::new(),
            queue: Vec::new(),
            out: Vec::new(),
            error: None,
        })
    }

    /// Sorted global indices of this region's paths.
    pub(crate) fn global_paths(&self) -> &[usize] {
        &self.paths
    }

    /// The shard's telemetry fork (for the router's snapshot merge).
    pub(crate) fn obs(&self) -> &dmc_obs::Obs {
        &self.obs
    }

    /// Submissions currently queued for the next tick.
    pub(crate) fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Maps a global path index into this shard (`None` if not ours).
    pub(crate) fn local_path_index(&self, global: usize) -> Option<usize> {
        self.paths.binary_search(&global).ok()
    }

    pub(crate) fn enqueue(&mut self, op: ShardOp) {
        self.queue.push(op);
    }

    pub(crate) fn take_error(&mut self) -> Option<FleetError> {
        self.error.take()
    }

    pub(crate) fn drain_out(&mut self) -> Vec<ServiceEvent> {
        std::mem::take(&mut self.out)
    }

    /// The shard-local utilization vector, paired with global indices via
    /// [`Shard::global_paths`].
    pub(crate) fn utilization(&self) -> Vec<f64> {
        self.planner.utilization()
    }

    pub(crate) fn num_flows(&self) -> usize {
        self.planner.num_flows()
    }

    pub(crate) fn plan_of_global(&self, flow: u64) -> Option<&Plan> {
        self.to_local
            .get(&flow)
            .and_then(|local| self.planner.plan_of(*local))
    }

    pub(crate) fn plan_local(&self, local: FlowId) -> Option<&Plan> {
        self.planner.plan_of(local)
    }

    /// Whether this shard still tracks a global flow id (admitted or
    /// queued for re-admission).
    pub(crate) fn owns(&self, flow: u64) -> bool {
        self.to_local.contains_key(&flow)
    }

    /// Runs every queued op in submission order: consecutive offers
    /// collapse into one `offer_batch` solve, consecutive departures into
    /// one `depart_batch` solve, link changes run singly. The first
    /// planner error aborts the tick (remaining ops are dropped) and is
    /// surfaced through [`Shard::take_error`].
    pub(crate) fn run_tick(&mut self) {
        let ops = std::mem::take(&mut self.queue);
        let mut i = 0;
        while i < ops.len() && self.error.is_none() {
            match &ops[i] {
                ShardOp::Offer { .. } => {
                    let mut seqs = Vec::new();
                    let mut requests = Vec::new();
                    while let Some(ShardOp::Offer { seq, request }) = ops.get(i) {
                        seqs.push(*seq);
                        requests.push(request.clone());
                        i += 1;
                    }
                    self.run_offers(&seqs, requests);
                }
                ShardOp::Depart { .. } => {
                    let mut departs = Vec::new();
                    while let Some(ShardOp::Depart { seq, flow }) = ops.get(i) {
                        departs.push((*seq, *flow));
                        i += 1;
                    }
                    self.run_departs(&departs);
                }
                ShardOp::Link { seq, path, change } => {
                    let (seq, path, change) = (*seq, *path, change.clone());
                    i += 1;
                    self.run_link(seq, path, &change);
                }
            }
        }
    }

    fn run_offers(&mut self, seqs: &[u64], requests: Vec<FlowRequest>) {
        self.obs
            .histogram("service.batch_size")
            .record(seqs.len() as u64);
        match self.planner.offer_batch(requests) {
            Ok(decisions) => {
                for (&seq, decision) in seqs.iter().zip(&decisions) {
                    match decision {
                        AdmissionDecision::Admitted {
                            id,
                            predicted_quality,
                        } => {
                            self.register(seq, *id);
                            self.out.push(ServiceEvent::Decision {
                                seq,
                                admitted: true,
                                predicted_quality: *predicted_quality,
                            });
                        }
                        AdmissionDecision::Rejected { .. } => {
                            self.out.push(ServiceEvent::Decision {
                                seq,
                                admitted: false,
                                predicted_quality: 0.0,
                            });
                        }
                    }
                }
            }
            Err(e) => self.error = Some(e),
        }
    }

    fn run_departs(&mut self, departs: &[(u64, u64)]) {
        self.obs
            .histogram("service.batch_size")
            .record(departs.len() as u64);
        let mut known = Vec::new();
        for &(seq, flow) in departs {
            match self.to_local.get(&flow) {
                Some(&local) => known.push((seq, flow, local)),
                None => self.out.push(ServiceEvent::Departed {
                    seq,
                    flow,
                    found: false,
                }),
            }
        }
        let Some(&(last_seq, _, _)) = known.last() else {
            return;
        };
        let ids: Vec<FlowId> = known.iter().map(|&(_, _, local)| local).collect();
        match self.planner.depart_batch(&ids) {
            Ok(_) => {
                for &(seq, flow, local) in &known {
                    self.to_local.remove(&flow);
                    self.to_global.remove(&local);
                    self.out.push(ServiceEvent::Departed {
                        seq,
                        flow,
                        found: true,
                    });
                }
                // One batch = one capacity event = one revive sweep.
                if let Some(event) = self.capacity_event(last_seq, Vec::new()) {
                    self.out.push(event);
                }
            }
            Err(e) => self.error = Some(e),
        }
    }

    fn run_link(&mut self, seq: u64, path: usize, change: &LinkChange) {
        // The reservation plane tracks the same links: forward the change
        // so future-window feasibility stays honest. Its reschedules are
        // internal (slot-based revival); drops surface via its counters.
        if let Some(schedule) = &mut self.schedule {
            if let Err(e) = schedule.apply_link_change(path, change) {
                self.error = Some(e);
                return;
            }
        }
        match self.planner.apply_link_change(path, change) {
            Ok(shed_ids) => {
                let shed: Vec<u64> = shed_ids.iter().map(|id| self.global_of(id)).collect();
                // Link changes always confirm with a capacity event, even
                // an empty one — the chaos harness keys off it.
                let event =
                    self.capacity_event(seq, shed.clone())
                        .unwrap_or(ServiceEvent::Capacity {
                            seq,
                            shed,
                            revived: Vec::new(),
                            rejected: Vec::new(),
                        });
                self.out.push(event);
            }
            Err(e) => self.error = Some(e),
        }
    }

    /// Offer an already-localized windowed request to the reservation
    /// plane (router's sequential control path — windowed offers never
    /// ride the tick queue).
    pub(crate) fn offer_windowed(
        &mut self,
        request: ScheduleRequest,
    ) -> Result<ScheduleDecision, FleetError> {
        self.schedule
            .as_mut()
            .ok_or_else(|| {
                FleetError::Invalid("windowed offers need a TimeGrid in ServiceConfig::grid".into())
            })?
            .offer(request)
    }

    /// Withdraw a windowed flow from the reservation plane.
    pub(crate) fn depart_windowed(&mut self, id: FlowId) -> Result<(), FleetError> {
        self.schedule
            .as_mut()
            .ok_or_else(|| {
                FleetError::Invalid("windowed offers need a TimeGrid in ServiceConfig::grid".into())
            })?
            .depart(id)
    }

    /// Advances the reservation plane's horizon. The router only calls
    /// this on shards built with a grid.
    pub(crate) fn advance_schedule(
        &mut self,
        new_origin: u64,
    ) -> Result<ScheduleAdvance, FleetError> {
        self.schedule
            .as_mut()
            .expect("the router only advances shards built with a grid")
            .advance_to(new_origin)
    }

    /// The shard's reservation plane, when configured.
    pub(crate) fn schedule(&self) -> Option<&SchedulePlanner> {
        self.schedule.as_ref()
    }

    /// Offer one already-localized leg of a spanning flow directly
    /// (router's sequential reserve phase).
    pub(crate) fn offer_local(
        &mut self,
        request: FlowRequest,
    ) -> Result<AdmissionDecision, FleetError> {
        self.planner.offer(request)
    }

    /// Withdraw a reserved-but-uncommitted spanning leg (rollback). The
    /// freed capacity may revive previously shed flows, so a capacity
    /// event can be emitted into `events`.
    pub(crate) fn rollback_reservation(
        &mut self,
        seq: u64,
        local: FlowId,
        events: &mut Vec<ServiceEvent>,
    ) -> Result<(), FleetError> {
        self.planner.depart(local)?;
        if let Some(event) = self.capacity_event(seq, Vec::new()) {
            events.push(event);
        }
        Ok(())
    }

    /// Depart one committed spanning leg (router's sequential phase).
    pub(crate) fn depart_local(
        &mut self,
        seq: u64,
        local: FlowId,
        events: &mut Vec<ServiceEvent>,
    ) -> Result<(), FleetError> {
        if let Some(flow) = self.to_global.remove(&local) {
            self.to_local.remove(&flow);
        }
        self.planner.depart(local)?;
        if let Some(event) = self.capacity_event(seq, Vec::new()) {
            events.push(event);
        }
        Ok(())
    }

    /// Register a committed flow (or spanning leg) under its global id.
    pub(crate) fn register(&mut self, flow: u64, local: FlowId) {
        self.to_local.insert(flow, local);
        self.to_global.insert(local, flow);
    }

    /// Drains the planner's per-event revive/reject lists into one
    /// capacity event (translating local ids to global), or `None` when
    /// nothing happened. Definitively rejected flows leave the maps.
    fn capacity_event(&mut self, seq: u64, shed: Vec<u64>) -> Option<ServiceEvent> {
        let revived: Vec<u64> = self
            .planner
            .drain_revived()
            .iter()
            .map(|id| self.global_of(id))
            .collect();
        let rejected: Vec<u64> = self
            .planner
            .drain_shed_rejected()
            .iter()
            .map(|id| self.global_of(id))
            .collect();
        for flow in &rejected {
            if let Some(local) = self.to_local.remove(flow) {
                self.to_global.remove(&local);
            }
        }
        if shed.is_empty() && revived.is_empty() && rejected.is_empty() {
            return None;
        }
        Some(ServiceEvent::Capacity {
            seq,
            shed,
            revived,
            rejected,
        })
    }

    fn global_of(&self, local: &FlowId) -> u64 {
        self.to_global
            .get(local)
            .copied()
            .expect("every shed or revived flow was registered at admission")
    }
}
