//! The wire front end: drive a [`FleetService`] with the checksummed
//! [`dmc_proto::wire`] control-plane frames instead of typed calls.

use bytes::Bytes;
use dmc_proto::wire::{DecisionFrame, DepartFrame, LinkChangeFrame, OfferFrame, Verdict};

use super::router::{FleetService, ServiceEvent};
use crate::error::FleetError;
use crate::flow::FlowRequest;

impl FleetService {
    /// Feeds one encoded control-plane frame to the service.
    ///
    /// Returns the submission seq the frame consumed, or `None` when the
    /// frame was dropped: unknown magic, truncation, a failed checksum
    /// (the wire contract: a corrupt frame is indistinguishable from a
    /// lost one), or a link change with invalid parameters.
    ///
    /// An [`OfferFrame`] whose *parameters* are semantically invalid
    /// (non-positive rate, floor outside `[0, 1]`, zero transmissions,
    /// out-of-range path mask…) still consumes a seq and is answered at
    /// the next [`FleetService::tick_frames`] with a
    /// [`Verdict::Invalid`] decision, so the client can tell "malformed
    /// request" from "lost frame".
    pub fn handle_frame(&mut self, frame: &[u8]) -> Option<u64> {
        if let Some(offer) = OfferFrame::decode(frame) {
            let seq = match self.validated_request(&offer) {
                Ok(request) => self
                    .submit(request)
                    .expect("a validated offer cannot fail submission"),
                Err(reason) => {
                    let seq = self.alloc_seq();
                    self.push_invalid(seq, reason);
                    seq
                }
            };
            self.record_echo(seq, offer.seq);
            return Some(seq);
        }
        if let Some(depart) = DepartFrame::decode(frame) {
            let seq = self.submit_depart(depart.flow);
            self.record_echo(seq, depart.seq);
            return Some(seq);
        }
        if let Some(link) = LinkChangeFrame::decode(frame) {
            return match self.submit_link(usize::from(link.path), link.change()) {
                Ok(seq) => {
                    self.record_echo(seq, link.seq);
                    Some(seq)
                }
                Err(_) => None,
            };
        }
        None
    }

    /// Runs one [`FleetService::tick`] and encodes the answers that have
    /// a wire form: one [`DecisionFrame`] per decision (admitted,
    /// rejected or invalid), with the client's offer tag echoed in `seq`
    /// and the service-assigned global flow id in `flow`. The full typed
    /// event stream rides along for callers that also want departures
    /// and capacity events.
    ///
    /// # Errors
    ///
    /// Same as [`FleetService::tick`].
    pub fn tick_frames(&mut self) -> Result<(Vec<Bytes>, Vec<ServiceEvent>), FleetError> {
        let events = self.tick()?;
        let echoes = self.take_echoes();
        let mut frames = Vec::new();
        for event in &events {
            let (seq, verdict, predicted_quality) = match event {
                ServiceEvent::Decision {
                    seq,
                    admitted,
                    predicted_quality,
                } => (
                    *seq,
                    if *admitted {
                        Verdict::Admitted
                    } else {
                        Verdict::Rejected
                    },
                    *predicted_quality,
                ),
                ServiceEvent::InvalidOffer { seq, .. } => (*seq, Verdict::Invalid, 0.0),
                _ => continue,
            };
            let client_tag = echoes.get(&seq).copied().unwrap_or(seq);
            frames.push(
                DecisionFrame {
                    seq: client_tag,
                    flow: seq,
                    verdict,
                    predicted_quality,
                }
                .encode(),
            );
        }
        Ok((frames, events))
    }

    /// Semantic validation of a decoded offer (the frame's checksum only
    /// proves integrity, not sense). The builders on [`FlowRequest`]
    /// assert on bad values, so everything is checked here first.
    fn validated_request(&self, offer: &OfferFrame) -> Result<FlowRequest, String> {
        let mut request =
            FlowRequest::new(offer.data_rate, offer.lifetime).map_err(|e| e.to_string())?;
        if !offer.min_quality.is_finite() || !(0.0..=1.0).contains(&offer.min_quality) {
            return Err(format!(
                "min quality must be in [0, 1], got {}",
                offer.min_quality
            ));
        }
        request = request.with_min_quality(offer.min_quality);
        if !offer.priority.is_finite() || !(offer.priority > 0.0) {
            return Err(format!(
                "priority must be finite and > 0, got {}",
                offer.priority
            ));
        }
        request = request.with_priority(offer.priority);
        if offer.transmissions == 0 {
            return Err("transmissions must be ≥ 1".into());
        }
        request = request.with_transmissions(usize::from(offer.transmissions));
        if offer.cost_budget.is_nan() || offer.cost_budget <= 0.0 {
            return Err(format!(
                "cost budget must be > 0 (or +∞), got {}",
                offer.cost_budget
            ));
        }
        if offer.cost_budget.is_finite() {
            request = request.with_cost_budget(offer.cost_budget);
        }
        if let Some(paths) = offer.path_subset() {
            let n = self.num_paths();
            if let Some(&bad) = paths.iter().find(|&&k| k >= n) {
                return Err(format!(
                    "path mask names path {bad}, but there are only {n} shared paths"
                ));
            }
            request = request.with_paths(paths);
        }
        Ok(request)
    }
}

#[cfg(test)]
mod tests {
    use dmc_core::ScenarioPath;
    use dmc_proto::wire::{DecisionFrame, LinkChangeFrame, OfferFrame, Verdict};
    use dmc_sim::LinkChange;

    use crate::service::{FleetService, ServiceConfig};

    fn two_path_service() -> FleetService {
        FleetService::new(
            vec![
                ScenarioPath::constant(50e6, 0.200, 0.1).unwrap(),
                ScenarioPath::constant(20e6, 0.100, 0.0).unwrap(),
            ],
            &[],
            ServiceConfig {
                workers: 1,
                ..ServiceConfig::default()
            },
        )
        .unwrap()
    }

    fn offer(tag: u64, rate: f64, paths: &[usize]) -> OfferFrame {
        OfferFrame {
            seq: tag,
            data_rate: rate,
            lifetime: 0.800,
            min_quality: 0.5,
            cost_budget: f64::INFINITY,
            priority: 1.0,
            transmissions: 2,
            path_mask: OfferFrame::mask_for(paths).unwrap(),
        }
    }

    #[test]
    fn frames_drive_the_service_end_to_end() {
        let mut service = two_path_service();
        let seq = service
            .handle_frame(&offer(77, 10e6, &[0]).encode())
            .unwrap();
        let (frames, events) = service.tick_frames().unwrap();
        assert_eq!(frames.len(), 1);
        assert_eq!(events.len(), 1);
        let decision = DecisionFrame::decode(&frames[0]).unwrap();
        assert_eq!(decision.seq, 77, "the client tag must be echoed");
        assert_eq!(decision.flow, seq);
        assert_eq!(decision.verdict, Verdict::Admitted);
        assert!(decision.predicted_quality >= 0.5);

        // A link failure over the wire answers with a capacity event.
        let link = LinkChangeFrame::from_change(78, 0, &LinkChange::Fail);
        assert!(service.handle_frame(&link.encode()).is_some());
        let (frames, events) = service.tick_frames().unwrap();
        assert!(frames.is_empty(), "capacity events have no decision frame");
        assert_eq!(events.len(), 1);
    }

    #[test]
    fn invalid_offers_get_an_invalid_verdict_and_garbage_is_dropped() {
        let mut service = two_path_service();
        // Structurally sound frame, semantically absurd rate.
        let mut bad = offer(9, 10e6, &[0]);
        bad.data_rate = -5.0;
        assert!(service.handle_frame(&bad.encode()).is_some());
        // Path mask past the fleet's two paths.
        let masked = offer(10, 10e6, &[1, 7]);
        assert!(service.handle_frame(&masked.encode()).is_some());
        let (frames, _) = service.tick_frames().unwrap();
        assert_eq!(frames.len(), 2);
        for frame in &frames {
            let decision = DecisionFrame::decode(frame).unwrap();
            assert_eq!(decision.verdict, Verdict::Invalid);
        }

        // Corrupt and truncated frames are dropped without consuming a
        // seq — indistinguishable from loss.
        let before = service.submissions();
        let mut corrupt = offer(11, 10e6, &[0]).encode().to_vec();
        corrupt[20] ^= 0x40;
        assert_eq!(service.handle_frame(&corrupt), None);
        assert_eq!(service.handle_frame(&corrupt[..10]), None);
        assert_eq!(service.handle_frame(&[]), None);
        assert_eq!(service.submissions(), before);
    }
}
