//! Time-expanded scheduling: the joint fleet LP over a slotted horizon.
//!
//! The instant [`FleetPlanner`](crate::FleetPlanner) allocates one
//! steady-state moment; this module adds the **time axis**: a
//! [`TimeGrid`] of fixed-width slots, per-slot shared capacity rows, and
//! flows carrying a `[start, deadline)` [`SlotWindow`] whose assignment
//! block only touches the slots inside the window — the DDCCast/Ahani
//! style of deadline scheduling as capacity allocation over time.
//!
//! # The time-expanded LP
//!
//! For a grid of `S` slots over `K` shared paths and flows `f` with
//! window slots `s ∈ W_f` (`L_f = |W_f|`), with `x^{f,s}` the fraction
//! of flow `f`'s *total* window volume served in slot `s` per path
//! combination and `c^f_i ≥ 0` the fraction buffered across the slot
//! boundary after the `i`-th window slot (store-and-forward):
//!
//! ```text
//! max  Σ_f w_f (λ_f·L_f/Λ) p_f·Σ_s x^{f,s}
//! s.t. Σ_f (λ_f·L_f/Λ) usage_{f,k}·x^{f,s} ≤ b_k(s)/Λ   (per slot s, path k)
//!      cost_f·Σ_s x^{f,s} ≤ µ_f/λ_f                     (per budgeted flow)
//!      p_f·Σ_s x^{f,s} ≥ q_f                            (per flow with a floor)
//!      Σ_j x^{f,s_i}_j + c^f_i − c^f_{i−1} = 1/L_f      (balance, per window slot)
//!      c^f_i ≤ B_f/L_f                                  (buffer cap, per boundary)
//!      x, c ≥ 0
//! ```
//!
//! `Λ = Σ_f λ_f·L_f` is the aggregate *volume* rate, so coefficients
//! stay O(1) like the instant LP's. The balance rows say a slot's
//! generation (`1/L_f` of the window volume) is either served now or
//! buffered into the next slot — never served *before* it is generated
//! — and the missing `c` terms at the window edges (`c_{−1} = c_{L−1} =
//! 0`) force the buffer empty at both ends. `b_k(s)` is the path's live
//! bandwidth, or **zero during a maintenance window**
//! ([`SchedulePlanner::set_maintenance`]).
//!
//! With `S = 1` and every window a single slot, each reduction is exact
//! in floating point (`λ·1.0 ≡ λ`, `1.0/1.0 ≡ 1.0`), and the assembly
//! emits the *same* `Problem` mutation sequence as the instant planner —
//! so a single-slot horizon reproduces [`crate::FleetPlanner`] **bit for
//! bit** (`tests/schedule_parity.rs`).
//!
//! # Incremental machinery, reused
//!
//! A (flow × window) block is just another
//! [`append_block`](dmc_lp::Problem::append_block): the shared rows are
//! the `S·K` per-slot capacity rows, **ring-indexed** (`row(s, k) =
//! (s mod S)·K + k`) so a slot's row index never moves as the horizon
//! advances. Departures and expiries tombstone the block exactly like
//! the instant assembly (balance RHS `1/L → 0` forces the block to
//! zero without changing the LP's shape), so the shape-keyed warm-basis
//! cache keeps hitting across [`SchedulePlanner::advance_to`]: expired
//! slots' rows are recycled in place for the new tail slots, and a new
//! arrival with the same width/window-ring pattern takes a tombstoned
//! slot over in place. That is what the `schedule_horizon` bench
//! measures against a rebuild-per-solve baseline.
//!
//! # Advance reservations
//!
//! A flow refused at its requested window is offered the **earliest
//! feasible later window** of the same width inside the grid
//! ([`ScheduleDecision::Reserved`]) — the admit-at-t+Δ verdict, with the
//! window certifying exactly when capacity opens. Flows displaced by a
//! link change get the same treatment (*slot-based revival*): each is
//! first retried at its own window, then slid forward, and only dropped
//! when no window of the remaining horizon fits it.

use crate::error::FleetError;
use crate::flow::{FlowId, FlowRequest};
use crate::planner::{
    local_path_index, FleetConfig, FleetObjective, JointShapeKey, SharedPath, MAX_CACHED_SHAPES,
};
use dmc_core::{Objective, Plan, Planner, Scenario, ScenarioModel, ScenarioPath, WarmStats};
use dmc_lp::{Basis, Problem, SolveError, SolveStatus, SolverOptions, Workspace};
use dmc_sim::LinkChange;
use std::collections::BTreeSet;
// dmc-lint: allow(det-unordered-map) key-lookup-only warm-basis cache (get/insert/contains_key/len/clear, never iterated), mirroring FleetPlanner's
use std::collections::HashMap;
use std::fmt;
use std::ops::Range;

/// A slotted scheduling horizon: `horizon` slots of `slot_width`
/// seconds each, starting at absolute slot number `origin`.
///
/// Slot numbers are **absolute** (slot `s` covers wall time
/// `[s·width, (s+1)·width)`), so they stay meaningful as the horizon
/// advances; the grid is the moving window `[origin, origin+horizon)`
/// of slots the planner can currently allocate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeGrid {
    slot_width: f64,
    horizon: usize,
    origin: u64,
}

impl TimeGrid {
    /// A grid of `horizon_slots` slots of `slot_width_s` seconds,
    /// starting at slot 0.
    ///
    /// # Errors
    ///
    /// Rejects a non-finite or non-positive width and a zero horizon.
    pub fn new(slot_width_s: f64, horizon_slots: usize) -> Result<Self, FleetError> {
        if !(slot_width_s > 0.0) || !slot_width_s.is_finite() {
            return Err(FleetError::Invalid(format!(
                "slot width must be finite and > 0, got {slot_width_s}"
            )));
        }
        if horizon_slots == 0 {
            return Err(FleetError::Invalid(
                "a time grid needs at least one slot".into(),
            ));
        }
        Ok(TimeGrid {
            slot_width: slot_width_s,
            horizon: horizon_slots,
            origin: 0,
        })
    }

    /// Slot width in seconds.
    pub fn slot_width(&self) -> f64 {
        self.slot_width
    }

    /// Number of slots in the horizon.
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// First (oldest) slot currently in the horizon.
    pub fn origin(&self) -> u64 {
        self.origin
    }

    /// One past the last slot in the horizon.
    pub fn end(&self) -> u64 {
        self.origin + self.horizon as u64
    }

    /// The absolute slot containing wall time `at_s`.
    ///
    /// # Errors
    ///
    /// Rejects non-finite or negative times.
    pub fn slot_of(&self, at_s: f64) -> Result<u64, FleetError> {
        if !(at_s >= 0.0) || !at_s.is_finite() {
            return Err(FleetError::Invalid(format!(
                "time must be finite and ≥ 0, got {at_s}"
            )));
        }
        Ok((at_s / self.slot_width).floor() as u64)
    }

    /// Wall-clock start of a slot, in seconds.
    pub fn start_of(&self, slot: u64) -> f64 {
        slot as f64 * self.slot_width
    }

    /// Whether `slot` is inside the current horizon.
    pub fn contains(&self, slot: u64) -> bool {
        slot >= self.origin && slot < self.end()
    }

    /// Whether a whole window is inside the current horizon.
    pub fn contains_window(&self, window: &SlotWindow) -> bool {
        window.start() >= self.origin && window.end() <= self.end()
    }

    /// The capacity-row ring position of a slot: rows are laid out
    /// `(slot mod horizon)·K + k`, so a surviving slot's rows never move
    /// when the horizon advances and an expired slot's rows are recycled
    /// in place by the slot that takes over its ring position.
    pub(crate) fn ring(&self, slot: u64) -> usize {
        (slot % self.horizon as u64) as usize
    }

    fn advanced_to(mut self, new_origin: u64) -> Self {
        self.origin = new_origin;
        self
    }
}

/// A half-open window of slots `[start, end)` — the flow may only be
/// served inside it (`start` = release slot, `end` = deadline slot).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SlotWindow {
    start: u64,
    end: u64,
}

impl SlotWindow {
    /// The window `[start, end)`.
    ///
    /// # Errors
    ///
    /// Rejects `end ≤ start` (use [`SlotWindow::instant`] for the
    /// zero-width "serve within this one slot" window).
    pub fn new(start: u64, end: u64) -> Result<Self, FleetError> {
        if end <= start {
            return Err(FleetError::Invalid(format!(
                "slot window [{start}, {end}) is empty"
            )));
        }
        Ok(SlotWindow { start, end })
    }

    /// The degenerate window whose release and deadline land in the same
    /// slot — the whole demand must be served inside `slot`. On a
    /// single-slot grid this reproduces the instant joint LP bit for bit.
    pub fn instant(slot: u64) -> Self {
        SlotWindow {
            start: slot,
            end: slot + 1,
        }
    }

    /// First slot of the window.
    pub fn start(&self) -> u64 {
        self.start
    }

    /// One past the last slot of the window.
    pub fn end(&self) -> u64 {
        self.end
    }

    /// Number of slots in the window (≥ 1).
    pub fn len(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// Always `false` — constructors reject empty windows; provided for
    /// clippy's `len`-without-`is_empty` convention.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The same-width window starting at `start` instead.
    pub fn shifted_to(&self, start: u64) -> SlotWindow {
        SlotWindow {
            start,
            end: start + (self.end - self.start),
        }
    }

    /// The slots of the window, ascending.
    pub fn slots(&self) -> impl Iterator<Item = u64> {
        self.start..self.end
    }
}

impl fmt::Display for SlotWindow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

/// A windowed admission request: a plain [`FlowRequest`] plus the slot
/// window it must be served in and, optionally, a store-and-forward
/// buffer allowance.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleRequest {
    flow: FlowRequest,
    window: SlotWindow,
    buffer: f64,
}

impl ScheduleRequest {
    /// A request to serve `flow` inside `window`, with no buffering.
    pub fn new(flow: FlowRequest, window: SlotWindow) -> Self {
        ScheduleRequest {
            flow,
            window,
            buffer: 0.0,
        }
    }

    /// Allows up to `frac` of one slot's generation to be buffered
    /// across each slot boundary inside the window (store-and-forward:
    /// traffic generated in slot `t` may drain in `t+1`). `0` (the
    /// default) disables buffering; `1` allows a full slot's worth.
    ///
    /// # Panics
    ///
    /// Panics unless `frac ∈ [0, 1]`.
    #[must_use]
    pub fn with_buffer(mut self, frac: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&frac),
            "buffer fraction must be in [0, 1], got {frac}"
        );
        self.buffer = frac;
        self
    }

    /// The underlying flow request.
    pub fn flow(&self) -> &FlowRequest {
        &self.flow
    }

    /// The requested service window.
    pub fn window(&self) -> SlotWindow {
        self.window
    }

    /// The buffer allowance (fraction of one slot's generation).
    pub fn buffer(&self) -> f64 {
        self.buffer
    }

    fn shifted_to(&self, start: u64) -> ScheduleRequest {
        ScheduleRequest {
            window: self.window.shifted_to(start),
            ..self.clone()
        }
    }
}

/// Outcome of one [`SchedulePlanner::offer`].
#[derive(Debug, Clone)]
pub enum ScheduleDecision {
    /// The flow fits at its requested window.
    Scheduled {
        /// The assigned flow id.
        id: FlowId,
        /// The granted window (= the requested one).
        window: SlotWindow,
        /// Predicted in-time delivery fraction over the window.
        predicted_quality: f64,
    },
    /// The requested window is infeasible, but a later same-width window
    /// inside the horizon fits: the flow holds an **advance reservation**
    /// for the earliest such window — `window.start() -
    /// requested.start()` slots after it asked.
    Reserved {
        /// The assigned flow id.
        id: FlowId,
        /// The window the tenant asked for.
        requested: SlotWindow,
        /// The earliest feasible window actually granted.
        window: SlotWindow,
        /// Predicted in-time delivery fraction over the granted window.
        predicted_quality: f64,
    },
    /// No window of the requested width inside the horizon fits.
    Rejected {
        /// The id the offer consumed (ids are offer-ordered).
        id: FlowId,
        /// Human-readable reason.
        reason: String,
    },
}

impl ScheduleDecision {
    /// Whether the flow holds capacity (scheduled or reserved).
    pub fn is_admitted(&self) -> bool {
        !matches!(self, ScheduleDecision::Rejected { .. })
    }

    /// Whether the flow was granted its requested window.
    pub fn is_scheduled(&self) -> bool {
        matches!(self, ScheduleDecision::Scheduled { .. })
    }

    /// Whether the flow holds an advance reservation for a later window.
    pub fn is_reserved(&self) -> bool {
        matches!(self, ScheduleDecision::Reserved { .. })
    }

    /// The flow id this decision is about.
    pub fn id(&self) -> FlowId {
        match self {
            ScheduleDecision::Scheduled { id, .. }
            | ScheduleDecision::Reserved { id, .. }
            | ScheduleDecision::Rejected { id, .. } => *id,
        }
    }

    /// The granted window, if any.
    pub fn window(&self) -> Option<SlotWindow> {
        match self {
            ScheduleDecision::Scheduled { window, .. }
            | ScheduleDecision::Reserved { window, .. } => Some(*window),
            ScheduleDecision::Rejected { .. } => None,
        }
    }

    /// Predicted in-time delivery fraction (`None` when rejected).
    pub fn predicted_quality(&self) -> Option<f64> {
        match self {
            ScheduleDecision::Scheduled {
                predicted_quality, ..
            }
            | ScheduleDecision::Reserved {
                predicted_quality, ..
            } => Some(*predicted_quality),
            ScheduleDecision::Rejected { .. } => None,
        }
    }

    /// How many slots after the requested start the granted window opens
    /// (0 when scheduled as asked or rejected).
    pub fn opens_in(&self) -> u64 {
        match self {
            ScheduleDecision::Reserved {
                requested, window, ..
            } => window.start() - requested.start(),
            _ => 0,
        }
    }
}

/// What one [`SchedulePlanner::advance_to`] did.
#[derive(Debug, Clone, Default)]
pub struct ScheduleAdvance {
    /// Flows whose window ended at or before the new origin — their
    /// service is complete and they left the fleet.
    pub completed: Vec<FlowId>,
    /// Flows whose window straddled the new origin: they stay, truncated
    /// to the remaining `[new_origin, end)` slots (their remaining
    /// demand renormalized over the shorter window).
    pub truncated: Vec<FlowId>,
    /// Flows rescheduled to a later window because their own no longer
    /// fit after the advance (slot-based revival).
    pub rescheduled: Vec<(FlowId, SlotWindow)>,
    /// Flows dropped because no remaining window fits them.
    pub dropped: Vec<FlowId>,
}

/// What a capacity change (link change or maintenance edit) did to the
/// scheduled flows.
#[derive(Debug, Clone, Default)]
pub struct ScheduleShuffle {
    /// Flows moved to a later window (slot-based revival), in
    /// re-admission order.
    pub rescheduled: Vec<(FlowId, SlotWindow)>,
    /// Flows dropped because no window of the remaining horizon fits.
    pub dropped: Vec<FlowId>,
}

impl ScheduleShuffle {
    /// Whether every flow kept its window.
    pub fn is_quiet(&self) -> bool {
        self.rescheduled.is_empty() && self.dropped.is_empty()
    }
}

/// One scheduled flow: its (possibly slid or truncated) request, model,
/// per-slot allocation and aggregate plan, plus its block slot.
#[derive(Debug)]
struct SchedFlowState {
    id: FlowId,
    request: ScheduleRequest,
    model: ScenarioModel,
    /// Aggregate plan over the window (decomposed exactly like the
    /// instant planner's, from the slot-summed assignment vector).
    plan: Plan,
    /// Per-window-slot assignment segments (`x^{f,s}`, slot-ascending).
    slot_x: Vec<Vec<f64>>,
    /// Largest buffer level the allocation uses (0 without buffering).
    peak_carry: f64,
    /// Index into the assembly's slot table.
    slot: usize,
}

/// One flow's block in the time-expanded assembly: `L·n` assignment
/// columns (window-slot-major) plus `carry` buffer columns, its
/// optional cost/floor rows, its `L` balance rows and `carry` cap rows.
/// Tombstoning zeroes the balance/floor/cap RHS — forcing the whole
/// block to zero without changing the LP's shape — and a later flow
/// with the same width, window length, buffering and window *ring
/// phase* takes the slot over in place.
#[derive(Debug, Clone)]
struct SchedSlot {
    cols: Range<usize>,
    window: SlotWindow,
    n_combos: usize,
    carry: usize,
    cost_row: Option<usize>,
    floor_row: Option<usize>,
    /// First of the `window.len()` balance rows (contiguous).
    balance_start: usize,
    /// First of the `carry` buffer-cap rows (contiguous, after balance).
    cap_start: usize,
    active: bool,
}

impl SchedSlot {
    /// Column offset of window-slot `i`'s assignment segment.
    fn combo_start(&self, i: usize) -> usize {
        self.cols.start + i * self.n_combos
    }
}

/// How a tentative placement got its slot (mirrors the instant
/// assembly's rollback contract).
#[derive(Debug, Clone, Copy)]
enum Placement {
    Appended { prev_vars: usize, prev_rows: usize },
    Reused,
}

/// The incrementally maintained time-expanded joint LP.
///
/// Row layout: the `S·K` ring-indexed per-slot capacity rows first,
/// then per-block rows in slot order — optional cost row, optional
/// floor row, the `L` balance equalities, the `carry` buffer caps. At
/// `S = 1`, `L = 1`, no buffering, this is exactly the instant
/// assembly's layout.
#[derive(Debug)]
struct SchedAssembly {
    problem: Problem,
    slots: Vec<SchedSlot>,
    seg: Vec<f64>,
}

impl SchedAssembly {
    fn new() -> Self {
        SchedAssembly {
            problem: Problem::maximize(Vec::new()),
            slots: Vec::new(),
            seg: Vec::new(),
        }
    }

    /// A compatible tombstoned slot: same assignment width, window
    /// length, buffering, row pattern *and ring phase* (the capacity
    /// rows a block touches are baked into its coefficients, so only a
    /// window hitting the same rings can take the block over).
    fn reusable_slot(&self, grid: &TimeGrid, req: &ScheduleRequest, n: usize) -> Option<usize> {
        let window = req.window();
        let carry = carry_vars(req);
        let has_cost = req.flow().cost_budget().is_finite();
        let has_floor = req.flow().min_quality() > 0.0;
        self.slots.iter().position(|s| {
            !s.active
                && s.n_combos == n
                && s.window.len() == window.len()
                && s.carry == carry
                && grid.ring(s.window.start()) == grid.ring(window.start())
                && s.cost_row.is_some() == has_cost
                && s.floor_row.is_some() == has_floor
        })
    }

    /// Places a flow's block — reusing a compatible tombstone in place,
    /// else appending (adding the `S·K` shared capacity rows first if
    /// this is the very first block). Objective and shared-row segments
    /// are left to [`SchedAssembly::rescale`], which every solve runs.
    fn place(
        &mut self,
        grid: &TimeGrid,
        n_paths: usize,
        req: &ScheduleRequest,
        model: &ScenarioModel,
    ) -> (usize, Placement) {
        let n = model.num_combos();
        let window = req.window();
        let len = window.len();
        let carry = carry_vars(req);
        let g = 1.0 / len as f64;
        if let Some(idx) = self.reusable_slot(grid, req, n) {
            let slot = self.slots[idx].clone();
            if let Some(row) = slot.cost_row {
                self.seg.clear();
                for _ in 0..len {
                    self.seg.extend_from_slice(model.cost_coeffs());
                }
                self.seg.resize(len * n + carry, 0.0);
                let seg = std::mem::take(&mut self.seg);
                self.problem
                    .set_row_range(row, slot.cols.start, &seg)
                    .expect("cost segment fits");
                self.problem
                    .set_rhs(row, req.flow().cost_budget() / req.flow().data_rate())
                    .expect("row index recorded at assembly stays in range");
                self.seg = seg;
            }
            if let Some(row) = slot.floor_row {
                // `add_ge` stores the row negated; patch it the same way.
                self.seg.clear();
                for _ in 0..len {
                    self.seg.extend(model.quality_coeffs().iter().map(|p| -p));
                }
                self.seg.resize(len * n + carry, 0.0);
                let seg = std::mem::take(&mut self.seg);
                self.problem
                    .set_row_range(row, slot.cols.start, &seg)
                    .expect("floor segment fits");
                self.problem
                    .set_rhs(row, -req.flow().min_quality())
                    .expect("row index recorded at assembly stays in range");
                self.seg = seg;
            }
            for i in 0..len {
                self.problem
                    .set_rhs(slot.balance_start + i, g)
                    .expect("balance row exists");
            }
            for i in 0..carry {
                self.problem
                    .set_rhs(slot.cap_start + i, req.buffer() * g)
                    .expect("cap row exists");
            }
            self.slots[idx].active = true;
            self.slots[idx].window = window;
            return (idx, Placement::Reused);
        }

        // Append a fresh block.
        let prev_vars = self.problem.num_vars();
        let prev_rows = self.problem.num_constraints();
        let width = len * n + carry;
        self.seg.clear();
        self.seg.resize(width, 0.0);
        let seg = std::mem::take(&mut self.seg);
        let cols = self.problem.append_block(&seg).expect("nonempty block");
        self.seg = seg;
        if prev_rows == 0 {
            // First block: create the S·K ring-indexed capacity rows
            // (coefficients and RHS are rescale's job).
            for _ in 0..grid.horizon() * n_paths {
                self.problem
                    .add_le_sparse(&[], 1.0)
                    .expect("empty shared row");
            }
        }
        let cost_row = req.flow().cost_budget().is_finite().then(|| {
            let mut entries: Vec<(usize, f64)> = Vec::new();
            for i in 0..len {
                entries.extend(
                    model
                        .cost_triplets()
                        .map(|(j, v)| (cols.start + i * n + j, v)),
                );
            }
            self.problem
                .add_le_sparse(&entries, req.flow().cost_budget() / req.flow().data_rate())
                .expect("valid cost row");
            self.problem.num_constraints() - 1
        });
        let floor_row = (req.flow().min_quality() > 0.0).then(|| {
            let mut entries: Vec<(usize, f64)> = Vec::new();
            for i in 0..len {
                entries.extend(
                    model
                        .quality_triplets()
                        .map(|(j, v)| (cols.start + i * n + j, v)),
                );
            }
            self.problem
                .add_ge_sparse(&entries, req.flow().min_quality())
                .expect("valid floor row");
            self.problem.num_constraints() - 1
        });
        let balance_start = self.problem.num_constraints();
        for i in 0..len {
            let mut entries: Vec<(usize, f64)> =
                (0..n).map(|j| (cols.start + i * n + j, 1.0)).collect();
            if carry > 0 {
                // Sparse rows want ascending columns: carry-in (slot
                // boundary i-1) sits below carry-out (boundary i).
                let carry_base = cols.start + len * n;
                if i >= 1 {
                    entries.push((carry_base + i - 1, -1.0));
                }
                if i < carry {
                    entries.push((carry_base + i, 1.0));
                }
            }
            self.problem
                .add_eq_sparse(&entries, g)
                .expect("valid balance row");
        }
        let cap_start = self.problem.num_constraints();
        for i in 0..carry {
            self.problem
                .add_le_sparse(&[(cols.start + len * n + i, 1.0)], req.buffer() * g)
                .expect("valid buffer cap row");
        }
        self.slots.push(SchedSlot {
            cols,
            window,
            n_combos: n,
            carry,
            cost_row,
            floor_row,
            balance_start,
            cap_start,
            active: true,
        });
        (
            self.slots.len() - 1,
            Placement::Appended {
                prev_vars,
                prev_rows,
            },
        )
    }

    /// Tombstones a slot: objective and capacity-row segments zeroed,
    /// every balance RHS `1/L → 0` (with the floor and cap RHS relaxed
    /// to 0), which forces every variable of the block to zero — the
    /// balance rows telescope to `Σx = 0` — while preserving the LP's
    /// shape, so the cached basis of this shape keeps working.
    fn deactivate(&mut self, grid: &TimeGrid, n_paths: usize, idx: usize) {
        let slot = self.slots[idx].clone();
        self.seg.clear();
        self.seg.resize(slot.cols.len(), 0.0);
        let seg = std::mem::take(&mut self.seg);
        self.problem
            .set_objective_range(slot.cols.start, &seg)
            .expect("objective segment fits");
        for (i, s) in slot.window.slots().enumerate() {
            for k in 0..n_paths {
                self.problem
                    .set_row_range(
                        grid.ring(s) * n_paths + k,
                        slot.combo_start(i),
                        &seg[..slot.n_combos],
                    )
                    .expect("shared segment fits");
            }
        }
        self.seg = seg;
        for i in 0..slot.window.len() {
            self.problem
                .set_rhs(slot.balance_start + i, 0.0)
                .expect("balance row exists");
        }
        if let Some(row) = slot.floor_row {
            self.problem.set_rhs(row, 0.0).expect("floor row exists");
        }
        for i in 0..slot.carry {
            self.problem
                .set_rhs(slot.cap_start + i, 0.0)
                .expect("cap row exists");
        }
        self.slots[idx].active = false;
    }

    /// Rolls a tentative placement back; appended placements must be
    /// rolled back in reverse order (same contract as the instant
    /// assembly — a middle truncation would shift later slots' indices).
    fn rollback(
        &mut self,
        grid: &TimeGrid,
        n_paths: usize,
        idx: usize,
        placement: Placement,
    ) -> Result<(), FleetError> {
        match placement {
            Placement::Appended {
                prev_vars,
                prev_rows,
            } => {
                if idx + 1 != self.slots.len() {
                    return Err(FleetError::Invalid(format!(
                        "rollback out of order: appended slot {idx} is not the last of {} slots",
                        self.slots.len()
                    )));
                }
                self.problem.truncate_rows(prev_rows);
                self.problem.truncate_vars(prev_vars);
                self.slots.pop();
            }
            Placement::Reused => self.deactivate(grid, n_paths, idx),
        }
        Ok(())
    }

    /// Recomputes every Λ-dependent coefficient from the given
    /// membership with fresh arithmetic (never by scaling running
    /// values), exactly like the instant assembly: per-block objective
    /// segments `w·(λ_f·L_f/Λ)·p_f`, per-(slot, path) capacity segments
    /// `(λ_f·L_f/Λ)·usage_f`, and the capacity RHS `b_k(s)/Λ` — zero
    /// for maintenance slots.
    fn rescale(
        &mut self,
        objective: FleetObjective,
        grid: &TimeGrid,
        paths: &[SharedPath],
        maintenance: &BTreeSet<(u64, usize)>,
        members: &[(usize, &ScheduleRequest, &ScenarioModel)],
    ) {
        let lambda_vol: f64 = members
            .iter()
            .map(|(_, r, _)| r.flow().data_rate() * r.window().len() as f64)
            .sum();
        let mut seg = std::mem::take(&mut self.seg);
        for &(slot_idx, r, m) in members {
            let slot = self.slots[slot_idx].clone();
            let start = slot.cols.start;
            let n = m.num_combos();
            let len = r.window().len();
            let w = match objective {
                FleetObjective::WeightedFair => r.flow().priority(),
                FleetObjective::MaxAdmitted | FleetObjective::MaxTotalQuality => 1.0,
            };
            let share = r.flow().data_rate() * len as f64 / lambda_vol;
            seg.clear();
            for _ in 0..len {
                seg.extend(m.quality_coeffs().iter().map(|p| w * share * p));
            }
            seg.resize(slot.cols.len(), 0.0);
            self.problem
                .set_objective_range(start, &seg)
                .expect("objective segment fits");
            for k in 0..paths.len() {
                for (i, s) in r.window().slots().enumerate() {
                    seg.clear();
                    match local_path_index(r.flow().paths(), k) {
                        Some(lk) => seg.extend(m.usage_coeffs(lk).iter().map(|u| share * u)),
                        None => seg.resize(n, 0.0),
                    }
                    self.problem
                        .set_row_range(grid.ring(s) * paths.len() + k, slot.combo_start(i), &seg)
                        .expect("shared segment fits");
                }
            }
        }
        for s in grid.origin()..grid.end() {
            for (k, path) in paths.iter().enumerate() {
                let rhs = if maintenance.contains(&(s, k)) {
                    0.0
                } else {
                    path.bandwidth / lambda_vol
                };
                self.problem
                    .set_rhs(grid.ring(s) * paths.len() + k, rhs)
                    .expect("shared row exists");
            }
        }
        self.seg = seg;
    }
}

/// Number of carry (store-and-forward buffer) variables a request needs:
/// one per interior slot boundary when buffering is enabled, none for
/// single-slot windows or a zero buffer.
fn carry_vars(req: &ScheduleRequest) -> usize {
    if req.buffer() > 0.0 && req.window().len() > 1 {
        req.window().len() - 1
    } else {
        0
    }
}

/// The slotted fleet planner: admission control and joint allocation
/// over a [`TimeGrid`] horizon, with advance reservations,
/// store-and-forward buffering and maintenance windows.
///
/// ```
/// use dmc_core::ScenarioPath;
/// use dmc_fleet::{FleetConfig, SchedulePlanner, ScheduleRequest, SlotWindow, TimeGrid, FlowRequest};
///
/// # fn main() -> Result<(), dmc_fleet::FleetError> {
/// let mut sched = SchedulePlanner::new(
///     vec![
///         ScenarioPath::constant(80e6, 0.450, 0.2)?,
///         ScenarioPath::constant(20e6, 0.150, 0.0)?,
///     ],
///     TimeGrid::new(1.0, 8)?, // 8 one-second slots
///     FleetConfig::default(),
/// )?;
/// // A two-slot transfer that may buffer half a slot across boundaries.
/// let d = sched.offer(
///     ScheduleRequest::new(FlowRequest::new(30e6, 0.750)?, SlotWindow::new(0, 2)?)
///         .with_buffer(0.5),
/// )?;
/// assert!(d.is_scheduled());
/// // Advancing the horizon expires slot 0 and recycles its capacity rows.
/// let adv = sched.advance_to(1)?;
/// assert_eq!(adv.truncated, vec![d.id()]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SchedulePlanner {
    config: FleetConfig,
    grid: TimeGrid,
    paths: Vec<SharedPath>,
    flows: Vec<SchedFlowState>,
    next_id: u64,
    /// Builds per-flow coefficient models (never solves).
    flow_planner: Planner,
    workspace: Workspace,
    // dmc-lint: allow(det-unordered-map) key-lookup-only cache: get/insert/contains_key/len/clear, never iterated, so key order cannot reach results
    warm_bases: HashMap<JointShapeKey, Basis>,
    warm_attempts: u64,
    warm_hits: u64,
    warm_anomalies: u64,
    /// Zero-capacity (slot, path) pairs — scheduled maintenance.
    maintenance: BTreeSet<(u64, usize)>,
    assembly: Option<SchedAssembly>,
    /// Objective value of the last successful joint solve (0 when empty).
    last_objective: f64,
}

impl SchedulePlanner {
    /// A slotted fleet over `paths` and `grid`.
    ///
    /// # Errors
    ///
    /// Rejects an empty path set and paths whose delay distribution has
    /// a non-finite mean (same contract as [`crate::FleetPlanner::new`]).
    pub fn new(
        paths: Vec<ScenarioPath>,
        grid: TimeGrid,
        config: FleetConfig,
    ) -> Result<Self, FleetError> {
        if paths.is_empty() {
            return Err(FleetError::Invalid(
                "a fleet needs at least one shared path".into(),
            ));
        }
        for (k, p) in paths.iter().enumerate() {
            if !p.delay().mean().is_finite() {
                return Err(FleetError::Invalid(format!(
                    "shared path {k} has a non-finite mean delay"
                )));
            }
        }
        let mut config = config;
        if config.obs.is_enabled() && !config.planner.solver.obs.is_enabled() {
            config.planner.solver.obs = config.obs.clone();
        }
        let flow_planner = Planner::with_config(config.planner.clone());
        Ok(SchedulePlanner {
            config,
            grid,
            paths: paths.into_iter().map(SharedPath::from_scenario).collect(),
            flows: Vec::new(),
            next_id: 0,
            flow_planner,
            workspace: Workspace::new(),
            // dmc-lint: allow(det-unordered-map) constructor of the key-lookup-only warm-basis cache above
            warm_bases: HashMap::new(),
            warm_attempts: 0,
            warm_hits: 0,
            warm_anomalies: 0,
            maintenance: BTreeSet::new(),
            assembly: None,
            last_objective: 0.0,
        })
    }

    /// The active configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// The current horizon.
    pub fn grid(&self) -> &TimeGrid {
        &self.grid
    }

    /// Offers one windowed flow.
    ///
    /// The requested window must lie inside the current horizon. If the
    /// joint LP is feasible with the flow at its requested window the
    /// flow is [`ScheduleDecision::Scheduled`]; otherwise the window is
    /// slid forward one slot at a time (keeping its width) and the
    /// earliest feasible start yields a [`ScheduleDecision::Reserved`]
    /// — the admit-at-t+Δ advance reservation. Only when no start fits
    /// is the flow [`ScheduleDecision::Rejected`]. A rejection leaves
    /// the incumbents' allocation untouched.
    ///
    /// # Errors
    ///
    /// Invalid windows/scenarios and non-infeasibility solver failures.
    pub fn offer(&mut self, request: ScheduleRequest) -> Result<ScheduleDecision, FleetError> {
        if !self.grid.contains_window(&request.window()) {
            return Err(FleetError::Invalid(format!(
                "window {} is outside the horizon [{}, {})",
                request.window(),
                self.grid.origin(),
                self.grid.end()
            )));
        }
        let id = FlowId::new(self.next_id);
        self.next_id += 1;
        let model = self.flow_model(request.flow())?;
        match self.try_admit(id, &request, &model)? {
            Some(q) => {
                self.config.obs.counter("fleet.admits").inc();
                Ok(ScheduleDecision::Scheduled {
                    id,
                    window: request.window(),
                    predicted_quality: q,
                })
            }
            None => {
                let requested = request.window();
                let len = requested.len() as u64;
                let mut start = requested.start() + 1;
                while start + len <= self.grid.end() {
                    let slid = request.shifted_to(start);
                    if let Some(q) = self.try_admit(id, &slid, &model)? {
                        self.config.obs.counter("fleet.reservations").inc();
                        return Ok(ScheduleDecision::Reserved {
                            id,
                            requested,
                            window: slid.window(),
                            predicted_quality: q,
                        });
                    }
                    start += 1;
                }
                self.config.obs.counter("fleet.refusals").inc();
                Ok(ScheduleDecision::Rejected {
                    id,
                    reason: "no window of the requested width inside the horizon can meet \
                             this flow's quality floor alongside every scheduled flow's"
                        .into(),
                })
            }
        }
    }

    /// Withdraws a scheduled flow before (or during) its window.
    ///
    /// # Errors
    ///
    /// Unknown ids.
    pub fn depart(&mut self, id: FlowId) -> Result<(), FleetError> {
        let Some(pos) = self.flows.iter().position(|f| f.id == id) else {
            return Err(FleetError::UnknownFlow(id));
        };
        let f = self.flows.remove(pos);
        if let Some(assembly) = self.assembly.as_mut() {
            assembly.deactivate(&self.grid, self.paths.len(), f.slot);
        }
        self.resolve_members()?;
        Ok(())
    }

    /// Advances the horizon so `new_origin` becomes its first slot.
    ///
    /// Flows whose window has fully passed are **completed**; flows
    /// whose window straddles the boundary are **truncated** to the
    /// remaining slots (their remaining demand renormalized over the
    /// shorter window) — and if the truncated window no longer fits,
    /// they get the reservation slide before being dropped. Expired
    /// slots' capacity rows are recycled in place (ring indexing), so
    /// the LP's shape — and with it the warm-basis cache — survives the
    /// advance; the `schedule_horizon` bench pins the payoff.
    ///
    /// # Errors
    ///
    /// Rejects a `new_origin` before the current origin; forwards
    /// solver failures.
    pub fn advance_to(&mut self, new_origin: u64) -> Result<ScheduleAdvance, FleetError> {
        if new_origin < self.grid.origin() {
            return Err(FleetError::Invalid(format!(
                "cannot advance backwards: origin {} to {new_origin}",
                self.grid.origin()
            )));
        }
        if new_origin == self.grid.origin() {
            return Ok(ScheduleAdvance::default());
        }
        let mut out = ScheduleAdvance::default();
        self.grid = self.grid.advanced_to(new_origin);
        self.maintenance.retain(|&(s, _)| s >= new_origin);

        // Completed flows leave; straddling flows are truncated (and
        // re-placed — their window length changed, so their block does
        // too).
        let mut keep = Vec::with_capacity(self.flows.len());
        let mut truncate = Vec::new();
        for f in std::mem::take(&mut self.flows) {
            if f.request.window().end() <= new_origin {
                out.completed.push(f.id);
                if let Some(assembly) = self.assembly.as_mut() {
                    assembly.deactivate(&self.grid, self.paths.len(), f.slot);
                }
            } else if f.request.window().start() < new_origin {
                truncate.push(f);
            } else {
                keep.push(f);
            }
        }
        self.flows = keep;
        for f in truncate {
            if let Some(assembly) = self.assembly.as_mut() {
                assembly.deactivate(&self.grid, self.paths.len(), f.slot);
            }
            let truncated = ScheduleRequest {
                window: SlotWindow::new(new_origin, f.request.window().end())
                    .expect("straddling window keeps at least one slot past the new origin"),
                ..f.request.clone()
            };
            match self.try_admit(f.id, &truncated, &f.model)? {
                Some(_) => out.truncated.push(f.id),
                None => match self.slide_into_horizon(f.id, &truncated, &f.model)? {
                    Some(window) => out.rescheduled.push((f.id, window)),
                    None => out.dropped.push(f.id),
                },
            }
        }
        // One settle pass for the survivors: the recycled tail slots may
        // carry maintenance, so the whole membership re-solves (and, on
        // collective infeasibility, resettles deterministically).
        let shuffle = self.settle_all()?;
        out.rescheduled.extend(shuffle.rescheduled);
        out.dropped.extend(shuffle.dropped);
        Ok(out)
    }

    /// Declares a maintenance window: path `path` has zero capacity
    /// during `slot`. Flows already scheduled over that slot are
    /// re-settled (rescheduled to later windows where needed — the
    /// returned [`ScheduleShuffle`] says who moved or fell out).
    ///
    /// # Errors
    ///
    /// Bad path index, a slot before the horizon, or solver failures.
    pub fn set_maintenance(
        &mut self,
        slot: u64,
        path: usize,
    ) -> Result<ScheduleShuffle, FleetError> {
        if path >= self.paths.len() {
            return Err(FleetError::Invalid(format!(
                "path index {path} out of range ({} shared paths)",
                self.paths.len()
            )));
        }
        if slot < self.grid.origin() {
            return Err(FleetError::Invalid(format!(
                "maintenance slot {slot} is before the horizon origin {}",
                self.grid.origin()
            )));
        }
        self.maintenance.insert((slot, path));
        self.settle_all()
    }

    /// Cancels a maintenance window (a no-op if none was declared).
    ///
    /// # Errors
    ///
    /// Forwards solver failures from the re-solve.
    pub fn clear_maintenance(&mut self, slot: u64, path: usize) -> Result<(), FleetError> {
        if self.maintenance.remove(&(slot, path)) {
            self.resolve_members()?;
        }
        Ok(())
    }

    /// The declared maintenance windows, sorted by (slot, path).
    pub fn maintenance(&self) -> impl Iterator<Item = (u64, usize)> + '_ {
        self.maintenance.iter().copied()
    }

    /// Applies a link change ([`dmc_sim::LinkChange`] vocabulary) to a
    /// shared path. Every flow's model is rebuilt against the changed
    /// paths and the fleet re-settles; displaced flows get the
    /// reservation slide — **slot-based revival**: instead of the
    /// instant planner's shed queue, a flow that no longer fits *now*
    /// is moved to the earliest later window that still fits it, and
    /// only dropped when none does.
    ///
    /// # Errors
    ///
    /// Bad path index, invalid change parameters, or solver failures.
    pub fn apply_link_change(
        &mut self,
        path: usize,
        change: &LinkChange,
    ) -> Result<ScheduleShuffle, FleetError> {
        let Some(shared) = self.paths.get_mut(path) else {
            return Err(FleetError::Invalid(format!(
                "path index {path} out of range ({} shared paths)",
                self.paths.len()
            )));
        };
        match change {
            LinkChange::Fail => shared.failed = true,
            LinkChange::Recover => shared.failed = false,
            LinkChange::SetBandwidth(bps) => {
                if !(*bps > 0.0) || !bps.is_finite() {
                    return Err(FleetError::Invalid(format!(
                        "bandwidth must be finite and > 0, got {bps}"
                    )));
                }
                shared.bandwidth = *bps;
            }
            LinkChange::SetLoss(model) => {
                model.validate().map_err(FleetError::Invalid)?;
                shared.loss = model.stationary_loss();
            }
        }
        for i in 0..self.flows.len() {
            let flow = self.flows[i].request.flow().clone();
            self.flows[i].model = self.flow_model(&flow)?;
        }
        // Coefficients changed wholesale: rebuild the assembly from the
        // new models (shape usually unchanged, so the cached basis of
        // the shape still applies), then settle.
        self.assembly = None;
        self.settle_all()
    }

    /// Number of scheduled flows (including reservations).
    pub fn num_flows(&self) -> usize {
        self.flows.len()
    }

    /// Whether nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Scheduled flow ids, in admission order.
    pub fn flow_ids(&self) -> Vec<FlowId> {
        self.flows.iter().map(|f| f.id).collect()
    }

    /// The granted window of a scheduled flow.
    pub fn window_of(&self, id: FlowId) -> Option<SlotWindow> {
        self.flows
            .iter()
            .find(|f| f.id == id)
            .map(|f| f.request.window())
    }

    /// The aggregate per-flow plan (slot-summed assignment decomposed
    /// exactly like the instant planner's).
    pub fn plan_of(&self, id: FlowId) -> Option<&Plan> {
        self.flows.iter().find(|f| f.id == id).map(|f| &f.plan)
    }

    /// Per-window-slot delivered-quality profile of a flow: entry `i`
    /// is the in-time fraction served in the window's `i`-th slot
    /// (summing to the plan's quality).
    pub fn slot_quality_of(&self, id: FlowId) -> Option<Vec<f64>> {
        let f = self.flows.iter().find(|f| f.id == id)?;
        Some(
            f.slot_x
                .iter()
                .map(|seg| {
                    f.model
                        .quality_coeffs()
                        .iter()
                        .zip(seg)
                        .map(|(p, x)| p * x)
                        .sum()
                })
                .collect(),
        )
    }

    /// The largest store-and-forward buffer level a flow's allocation
    /// uses, as a fraction of its window volume (0 without buffering).
    pub fn peak_carry_of(&self, id: FlowId) -> Option<f64> {
        self.flows.iter().find(|f| f.id == id).map(|f| f.peak_carry)
    }

    /// Per-slot, per-path utilization of the horizon: `out[i][k]` is the
    /// fraction of path `k`'s capacity consumed in slot `origin + i`
    /// (0 for maintenance slots, whose capacity is zero).
    pub fn utilization(&self) -> Vec<Vec<f64>> {
        let mut out = vec![vec![0.0; self.paths.len()]; self.grid.horizon()];
        for f in &self.flows {
            let vol = f.request.flow().data_rate() * f.request.window().len() as f64;
            for (i, s) in f.request.window().slots().enumerate() {
                let Some(rel) = s.checked_sub(self.grid.origin()) else {
                    continue;
                };
                for (k, _) in self.paths.iter().enumerate() {
                    if let Some(lk) = local_path_index(f.request.flow().paths(), k) {
                        let used: f64 = f
                            .model
                            .usage_coeffs(lk)
                            .iter()
                            .zip(&f.slot_x[i])
                            .map(|(u, x)| u * x)
                            .sum();
                        out[rel as usize][k] += vol * used;
                    }
                }
            }
        }
        for (i, s) in (self.grid.origin()..self.grid.end()).enumerate() {
            for (k, path) in self.paths.iter().enumerate() {
                if self.maintenance.contains(&(s, k)) {
                    out[i][k] = 0.0;
                } else {
                    out[i][k] /= path.bandwidth;
                }
            }
        }
        out
    }

    /// Volume-weighted mean predicted quality of the scheduled flows.
    pub fn aggregate_quality(&self) -> f64 {
        let vol: f64 = self
            .flows
            .iter()
            .map(|f| f.request.flow().data_rate() * f.request.window().len() as f64)
            .sum();
        // dmc-lint: allow(float-exact) vol is a sum of validated positive rates; it is exactly 0.0 iff the fleet is empty
        if vol == 0.0 {
            return 0.0;
        }
        self.flows
            .iter()
            .map(|f| {
                f.request.flow().data_rate() * f.request.window().len() as f64 * f.plan.quality()
            })
            .sum::<f64>()
            / vol
    }

    /// Objective value of the last successful joint solve (the unique
    /// LP optimum — what the advance-vs-fresh differential tests
    /// compare, since per-flow splits can differ at degenerate
    /// vertices).
    pub fn objective_value(&self) -> f64 {
        self.last_objective
    }

    /// Warm-start statistics of the joint solves.
    pub fn warm_stats(&self) -> WarmStats {
        WarmStats {
            hits: self.warm_hits,
            misses: self.warm_attempts - self.warm_hits,
        }
    }

    /// Cold re-solves forced by a warm-start anomaly.
    pub fn warm_anomalies(&self) -> u64 {
        self.warm_anomalies
    }

    /// Effective shared paths (base description + link dynamics so far).
    ///
    /// # Errors
    ///
    /// A path whose effective parameters no longer validate.
    pub fn shared_paths(&self) -> Result<Vec<ScenarioPath>, FleetError> {
        self.paths.iter().map(SharedPath::effective).collect()
    }

    /// Builds the candidate's per-flow model against the current shared
    /// paths (same contract as the instant planner's).
    fn flow_model(&mut self, request: &FlowRequest) -> Result<ScenarioModel, FleetError> {
        let effective = self.shared_paths()?;
        let flow_paths = match request.paths() {
            Some(subset) => {
                if let Some(&bad) = subset.iter().find(|&&k| k >= effective.len()) {
                    return Err(FleetError::Invalid(format!(
                        "flow path index {bad} out of range ({} shared paths)",
                        effective.len()
                    )));
                }
                subset.iter().map(|&k| effective[k].clone()).collect()
            }
            None => effective,
        };
        let mut builder = Scenario::builder()
            .paths(flow_paths)
            .data_rate(request.data_rate())
            .lifetime(request.lifetime())
            .transmissions(request.transmissions());
        if request.cost_budget().is_finite() {
            builder = builder.cost_budget(request.cost_budget());
        }
        let scenario = builder.build().map_err(FleetError::Spec)?;
        Ok(self.flow_planner.model(&scenario))
    }

    /// Tentatively admits `id` at the request's window: commits and
    /// returns the predicted quality on feasibility, rolls back and
    /// returns `None` on infeasibility.
    fn try_admit(
        &mut self,
        id: FlowId,
        request: &ScheduleRequest,
        model: &ScenarioModel,
    ) -> Result<Option<f64>, FleetError> {
        match self.solve_with_extra(Some((request, model))) {
            Ok(segments) => {
                let mut segments = segments;
                let candidate = segments.pop().expect("candidate segment present");
                let slot = candidate.0;
                self.refresh_plans(segments);
                let state = self.decompose(id, request.clone(), model.clone(), slot, candidate.1);
                if state.peak_carry > 0.0 {
                    self.config.obs.counter("fleet.carryover").inc();
                }
                self.flows.push(state);
                let q = self
                    .flows
                    .last()
                    .map(|f| f.plan.quality())
                    .expect("flow just pushed");
                Ok(Some(q))
            }
            Err(SolveError::Infeasible { .. }) => Ok(None),
            Err(e) => Err(FleetError::Solve(e)),
        }
    }

    /// The reservation slide: earliest feasible same-width window at or
    /// after the request's start. The request itself is tried first.
    fn slide_into_horizon(
        &mut self,
        id: FlowId,
        request: &ScheduleRequest,
        model: &ScenarioModel,
    ) -> Result<Option<SlotWindow>, FleetError> {
        let len = request.window().len() as u64;
        let mut start = request.window().start().max(self.grid.origin());
        while start + len <= self.grid.end() {
            let slid = request.shifted_to(start);
            if self.try_admit(id, &slid, model)?.is_some() {
                self.config.obs.counter("fleet.reservations").inc();
                return Ok(Some(slid.window()));
            }
            start += 1;
        }
        Ok(None)
    }

    /// Re-solves over the current membership (no candidate), refreshing
    /// every plan. Infeasibility is an invariant breach here — callers
    /// that can face it use [`SchedulePlanner::settle_all`] instead.
    fn resolve_members(&mut self) -> Result<(), FleetError> {
        match self.solve_with_extra(None) {
            Ok(segments) => {
                self.refresh_plans(segments);
                Ok(())
            }
            Err(SolveError::Infeasible { .. }) => Err(FleetError::Invalid(
                "removing capacity demand made the joint LP infeasible".into(),
            )),
            Err(e) => Err(FleetError::Solve(e)),
        }
    }

    /// Re-solves the whole membership; on collective infeasibility,
    /// re-admits deterministically (highest priority first, admission
    /// order within ties), giving each refused flow the reservation
    /// slide before dropping it.
    fn settle_all(&mut self) -> Result<ScheduleShuffle, FleetError> {
        let mut out = ScheduleShuffle::default();
        if self.flows.is_empty() {
            // The joint optimum of an empty membership is 0 — keep the
            // reported objective honest when an advance clears the fleet.
            self.last_objective = 0.0;
            return Ok(out);
        }
        match self.solve_with_extra(None) {
            Ok(segments) => {
                self.refresh_plans(segments);
                Ok(out)
            }
            Err(SolveError::Infeasible { .. }) => {
                let mut survivors = std::mem::take(&mut self.flows);
                self.assembly = None;
                survivors.sort_by(|a, b| {
                    b.request
                        .flow()
                        .priority()
                        .partial_cmp(&a.request.flow().priority())
                        .expect("priorities are finite")
                        .then(a.id.cmp(&b.id))
                });
                for f in survivors {
                    let original = f.request.window();
                    match self.slide_into_horizon(f.id, &f.request, &f.model)? {
                        Some(window) if window != original => {
                            out.rescheduled.push((f.id, window));
                        }
                        Some(_) => {}
                        None => out.dropped.push(f.id),
                    }
                }
                Ok(out)
            }
            Err(e) => Err(FleetError::Solve(e)),
        }
    }

    /// Assembles and solves the joint LP over the scheduled flows plus
    /// an optional candidate, returning `(slot, raw block x)` per flow —
    /// members first (admission order), candidate last. Any error rolls
    /// the candidate's placement back, leaving the incumbents untouched.
    #[allow(clippy::type_complexity)]
    fn solve_with_extra(
        &mut self,
        extra: Option<(&ScheduleRequest, &ScenarioModel)>,
    ) -> Result<Vec<(usize, Vec<f64>)>, SolveError> {
        if self.flows.is_empty() && extra.is_none() {
            self.last_objective = 0.0;
            return Ok(Vec::new());
        }
        let n_paths = self.paths.len();
        if !self.config.incremental {
            // Differential baseline: rebuild the assembly from scratch
            // on every solve (the pre-incremental behavior).
            self.assembly = None;
        }
        if self.assembly.is_none() {
            let mut fresh = SchedAssembly::new();
            for f in &mut self.flows {
                let (slot, _) = fresh.place(&self.grid, n_paths, &f.request, &f.model);
                f.slot = slot;
            }
            self.assembly = Some(fresh);
        }
        let mut assembly = self.assembly.take().expect("assembly ensured above");
        let placement = extra.map(|(r, m)| assembly.place(&self.grid, n_paths, r, m));
        let members: Vec<(usize, &ScheduleRequest, &ScenarioModel)> = self
            .flows
            .iter()
            .map(|f| (f.slot, &f.request, &f.model))
            .chain(
                placement
                    .iter()
                    .zip(extra.iter())
                    .map(|(&(slot, _), &(r, m))| (slot, r, m)),
            )
            .collect();
        assembly.rescale(
            self.config.objective,
            &self.grid,
            &self.paths,
            &self.maintenance,
            &members,
        );
        drop(members);
        match self.solve_joint_problem(&assembly.problem) {
            Ok(solution) => {
                let x = solution.into_x();
                self.last_objective = assembly.problem.objective_value(&x);
                let out = self
                    .flows
                    .iter()
                    .map(|f| f.slot)
                    .chain(placement.iter().map(|&(slot, _)| slot))
                    .map(|slot| (slot, x[assembly.slots[slot].cols.clone()].to_vec()))
                    .collect();
                self.assembly = Some(assembly);
                Ok(out)
            }
            Err(e) => {
                let clean = placement
                    .into_iter()
                    .all(|(slot, p)| assembly.rollback(&self.grid, n_paths, slot, p).is_ok());
                if clean {
                    self.assembly = Some(assembly);
                } else {
                    // Inconsistent rollback: rebuild lazily on the next
                    // solve rather than patch shifted indices in place.
                    self.assembly = None;
                }
                Err(e)
            }
        }
    }

    /// Solves an assembled problem with the shape-keyed warm-start
    /// cache (the instant planner's logic, applied to the slotted LP).
    fn solve_joint_problem(&mut self, problem: &Problem) -> Result<dmc_lp::Solution, SolveError> {
        let opts = SolverOptions {
            backend: self.config.joint_backend,
            ..self.config.planner.solver.clone()
        };
        let key = self
            .config
            .planner
            .warm_start
            .then(|| JointShapeKey::of(problem));
        let solution = match key.and_then(|k| self.warm_bases.get(&k)) {
            Some(basis) => {
                self.warm_attempts += 1;
                match problem.solve_warm_with(&opts, &mut self.workspace, basis) {
                    Ok(s) => {
                        if s.used_warm_start() {
                            self.warm_hits += 1;
                            self.config.obs.counter("fleet.warm_hits").inc();
                        } else {
                            self.config.obs.counter("fleet.warm_misses").inc();
                        }
                        s
                    }
                    Err(e) if SolveStatus::of_error(&e).is_anomaly() => {
                        self.warm_anomalies += 1;
                        self.config.obs.counter("fleet.warm_anomalies").inc();
                        self.config.obs.counter("fleet.warm_misses").inc();
                        if let Some(k) = key {
                            self.warm_bases.remove(&k);
                        }
                        problem.solve_with(&opts, &mut self.workspace)?
                    }
                    Err(e) => {
                        self.config.obs.counter("fleet.warm_misses").inc();
                        return Err(e);
                    }
                }
            }
            None => problem.solve_with(&opts, &mut self.workspace)?,
        };
        if let (Some(k), Some(basis)) = (key, solution.basis()) {
            if self.warm_bases.len() >= MAX_CACHED_SHAPES && !self.warm_bases.contains_key(&k) {
                self.warm_bases.clear();
            }
            self.warm_bases.insert(k, basis.clone());
        }
        if cfg!(debug_assertions) || self.config.certify {
            solution
                .certify(problem)
                .expect("joint LP solution failed its feasibility certificate");
        }
        Ok(solution)
    }

    /// Splits a block's raw solution into per-slot segments, the
    /// aggregate assignment (slot-summed, fed to `plan_for` exactly
    /// like the instant planner's), and the peak carry level.
    fn decompose(
        &self,
        id: FlowId,
        request: ScheduleRequest,
        model: ScenarioModel,
        slot: usize,
        raw: Vec<f64>,
    ) -> SchedFlowState {
        let n = model.num_combos();
        let len = request.window().len();
        let mut slot_x: Vec<Vec<f64>> = Vec::with_capacity(len);
        for i in 0..len {
            slot_x.push(raw[i * n..(i + 1) * n].to_vec());
        }
        let mut total = slot_x[0].clone();
        for seg in &slot_x[1..] {
            for (t, v) in total.iter_mut().zip(seg) {
                *t += v;
            }
        }
        let peak_carry = raw[len * n..].iter().copied().fold(0.0, f64::max);
        let plan = model.plan_for(Objective::MaxQuality, total);
        SchedFlowState {
            id,
            request,
            model,
            plan,
            slot_x,
            peak_carry,
            slot,
        }
    }

    /// Re-packages a fresh joint solution's member segments into the
    /// scheduled flows' plans (admission order).
    fn refresh_plans(&mut self, segments: Vec<(usize, Vec<f64>)>) {
        debug_assert_eq!(segments.len(), self.flows.len());
        for (i, (slot, raw)) in segments.into_iter().enumerate() {
            let f = &self.flows[i];
            let state = self.decompose(f.id, f.request.clone(), f.model.clone(), slot, raw);
            self.flows[i] = state;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmc_core::ScenarioPath;

    fn paths() -> Vec<ScenarioPath> {
        vec![
            ScenarioPath::constant(80e6, 0.450, 0.2).expect("valid path"),
            ScenarioPath::constant(20e6, 0.150, 0.0).expect("valid path"),
        ]
    }

    fn sched(horizon: usize) -> SchedulePlanner {
        SchedulePlanner::new(
            paths(),
            TimeGrid::new(1.0, horizon).expect("valid grid"),
            FleetConfig::default(),
        )
        .expect("valid planner")
    }

    #[test]
    fn grid_and_window_validation() {
        assert!(TimeGrid::new(0.0, 4).is_err());
        assert!(TimeGrid::new(f64::NAN, 4).is_err());
        assert!(TimeGrid::new(1.0, 0).is_err());
        let g = TimeGrid::new(0.5, 4).expect("valid grid");
        assert_eq!(g.slot_of(0.0).expect("finite"), 0);
        assert_eq!(g.slot_of(1.25).expect("finite"), 2);
        assert!(g.slot_of(-1.0).is_err());
        assert!(SlotWindow::new(3, 3).is_err());
        assert_eq!(SlotWindow::instant(3).len(), 1);
        let w = SlotWindow::new(1, 4).expect("valid window");
        assert_eq!(w.len(), 3);
        assert_eq!(w.shifted_to(5), SlotWindow::new(5, 8).expect("valid"));
        assert_eq!(format!("{w}"), "[1, 4)");
        assert!(g.contains_window(&w));
        assert!(!g.contains_window(&SlotWindow::new(2, 5).expect("valid")));
    }

    #[test]
    fn windowed_flows_schedule_and_complete() {
        let mut s = sched(4);
        let flow = FlowRequest::new(20e6, 0.8).expect("valid flow");
        let d = s
            .offer(ScheduleRequest::new(
                flow.clone(),
                SlotWindow::new(0, 2).expect("valid"),
            ))
            .expect("offer");
        assert!(d.is_scheduled());
        assert_eq!(
            s.window_of(d.id()),
            Some(SlotWindow::new(0, 2).expect("valid"))
        );
        // Per-slot quality sums to the plan's quality.
        let per_slot = s.slot_quality_of(d.id()).expect("scheduled");
        let q: f64 = per_slot.iter().sum();
        let plan_q = s.plan_of(d.id()).expect("plan").quality();
        assert!((q - plan_q).abs() < 1e-9, "{q} vs {plan_q}");
        // Advancing past the window completes the flow.
        let adv = s.advance_to(2).expect("advance");
        assert_eq!(adv.completed, vec![d.id()]);
        assert!(s.is_empty());
        assert_eq!(s.grid().origin(), 2);
        assert!(s.advance_to(1).is_err());
    }

    #[test]
    fn refused_now_gets_a_future_reservation() {
        let mut s = sched(6);
        // A fat strict flow fills slot 0.
        let hog = s
            .offer(ScheduleRequest::new(
                FlowRequest::new(90e6, 0.8)
                    .expect("valid flow")
                    .with_min_quality(0.9),
                SlotWindow::instant(0),
            ))
            .expect("offer");
        assert!(hog.is_scheduled());
        // A second strict flow cannot fit in slot 0 alongside it…
        let d = s
            .offer(ScheduleRequest::new(
                FlowRequest::new(60e6, 0.8)
                    .expect("valid flow")
                    .with_min_quality(0.9),
                SlotWindow::instant(0),
            ))
            .expect("offer");
        // …so it is reserved for the earliest free slot instead.
        match &d {
            ScheduleDecision::Reserved {
                requested, window, ..
            } => {
                assert_eq!(*requested, SlotWindow::instant(0));
                assert_eq!(*window, SlotWindow::instant(1));
                assert_eq!(d.opens_in(), 1);
            }
            other => panic!("expected a reservation, got {other:?}"),
        }
        assert_eq!(s.num_flows(), 2);
    }

    #[test]
    fn store_and_forward_uses_the_buffer_only_when_allowed() {
        // Slot 1 of path 0 is under maintenance, so a two-slot flow
        // over [0, 2) must either lean on path 1 in slot 1 or buffer.
        let mut s = sched(2);
        s.set_maintenance(1, 0).expect("maintenance");
        let buffered = s
            .offer(
                ScheduleRequest::new(
                    FlowRequest::new(30e6, 0.8).expect("valid flow"),
                    SlotWindow::new(0, 2).expect("valid"),
                )
                .with_buffer(1.0),
            )
            .expect("offer");
        assert!(buffered.is_admitted());
        // Buffering can only help (a larger feasible region).
        let q_buffered = buffered.predicted_quality().expect("admitted");
        let mut s2 = sched(2);
        s2.set_maintenance(1, 0).expect("maintenance");
        let plain = s2
            .offer(ScheduleRequest::new(
                FlowRequest::new(30e6, 0.8).expect("valid flow"),
                SlotWindow::new(0, 2).expect("valid"),
            ))
            .expect("offer");
        let q_plain = plain.predicted_quality().expect("admitted");
        assert!(
            q_buffered >= q_plain - 1e-9,
            "buffering shrank quality: {q_buffered} < {q_plain}"
        );
        assert_eq!(s2.peak_carry_of(plain.id()), Some(0.0));
    }

    #[test]
    fn buffered_windows_of_three_or_more_slots_assemble() {
        // Regression: a middle slot of a buffered window has BOTH a
        // carry-in and a carry-out term in its balance row; the sparse
        // row must be emitted in ascending column order or assembly
        // rejects it (`UnsortedSparseColumn`). Needs window length ≥ 3.
        let mut s = sched(4);
        let d = s
            .offer(
                ScheduleRequest::new(
                    FlowRequest::new(30e6, 0.8).expect("valid flow"),
                    SlotWindow::new(0, 3).expect("valid"),
                )
                .with_buffer(0.5),
            )
            .expect("a buffered three-slot window must assemble");
        assert!(d.is_scheduled());
        // Depart and re-offer so the tombstone-reuse path builds the
        // same balance rows through `set_row_range` as well.
        s.depart(d.id()).expect("depart");
        let again = s
            .offer(
                ScheduleRequest::new(
                    FlowRequest::new(30e6, 0.8).expect("valid flow"),
                    SlotWindow::new(0, 3).expect("valid"),
                )
                .with_buffer(0.5),
            )
            .expect("reused buffered block must assemble");
        assert!(again.is_scheduled());
        assert_eq!(
            d.predicted_quality().expect("admitted").to_bits(),
            again.predicted_quality().expect("admitted").to_bits(),
            "tombstone reuse must reproduce the fresh block bit for bit"
        );
    }

    #[test]
    fn maintenance_zeroes_the_slot() {
        let mut s = sched(3);
        let d = s
            .offer(ScheduleRequest::new(
                FlowRequest::new(20e6, 0.8).expect("valid flow"),
                SlotWindow::new(0, 3).expect("valid"),
            ))
            .expect("offer");
        assert!(d.is_scheduled());
        let shuffle = s.set_maintenance(1, 0).expect("maintenance");
        assert!(shuffle.dropped.is_empty());
        let util = s.utilization();
        assert_eq!(util.len(), 3);
        assert_eq!(util[1][0], 0.0, "maintenance slot reports zero utilization");
        s.clear_maintenance(1, 0).expect("clear");
        assert_eq!(s.maintenance().count(), 0);
    }

    #[test]
    fn depart_frees_the_window() {
        let mut s = sched(2);
        let a = s
            .offer(ScheduleRequest::new(
                FlowRequest::new(90e6, 0.8)
                    .expect("valid flow")
                    .with_min_quality(0.9),
                SlotWindow::instant(0),
            ))
            .expect("offer");
        s.depart(a.id()).expect("depart");
        assert!(s.is_empty());
        assert!(s.depart(a.id()).is_err());
        // The freed slot admits a new strict flow again.
        let b = s
            .offer(ScheduleRequest::new(
                FlowRequest::new(90e6, 0.8)
                    .expect("valid flow")
                    .with_min_quality(0.9),
                SlotWindow::instant(0),
            ))
            .expect("offer");
        assert!(b.is_scheduled());
    }

    #[test]
    fn link_failure_triggers_slot_based_revival() {
        let mut s = sched(4);
        // Two strict flows in slot 0, feasible only with both paths up.
        let a = s
            .offer(ScheduleRequest::new(
                FlowRequest::new(60e6, 0.8)
                    .expect("valid flow")
                    .with_min_quality(0.9),
                SlotWindow::instant(0),
            ))
            .expect("offer");
        assert!(a.is_scheduled());
        let shuffle = s.apply_link_change(0, &LinkChange::Fail).expect("fail");
        // The strict flow cannot be served on the thin path alone in any
        // slot: it is dropped (no shed queue — the horizon is the queue).
        assert!(shuffle.rescheduled.is_empty());
        assert_eq!(shuffle.dropped, vec![a.id()]);
        assert!(s.is_empty());
        let back = s
            .apply_link_change(0, &LinkChange::Recover)
            .expect("recover");
        assert!(back.is_quiet());
    }

    #[test]
    fn advance_truncates_straddling_windows() {
        let mut s = sched(4);
        let d = s
            .offer(ScheduleRequest::new(
                FlowRequest::new(20e6, 0.8).expect("valid flow"),
                SlotWindow::new(0, 3).expect("valid"),
            ))
            .expect("offer");
        let adv = s.advance_to(1).expect("advance");
        assert_eq!(adv.truncated, vec![d.id()]);
        assert_eq!(
            s.window_of(d.id()),
            Some(SlotWindow::new(1, 3).expect("valid"))
        );
        // The truncated flow's demand renormalizes over two slots.
        let per_slot = s.slot_quality_of(d.id()).expect("scheduled");
        assert_eq!(per_slot.len(), 2);
    }

    #[test]
    fn tombstoned_blocks_are_reused_across_churn() {
        let mut s = sched(4);
        let mk = || {
            ScheduleRequest::new(
                FlowRequest::new(20e6, 0.8).expect("valid flow"),
                SlotWindow::new(1, 3).expect("valid"),
            )
        };
        let a = s.offer(mk()).expect("offer");
        let vars_before = s.assembly.as_ref().expect("assembled").problem.num_vars();
        s.depart(a.id()).expect("depart");
        let b = s.offer(mk()).expect("offer");
        assert!(b.is_scheduled());
        let vars_after = s.assembly.as_ref().expect("assembled").problem.num_vars();
        assert_eq!(
            vars_before, vars_after,
            "an equivalent flow must take the tombstoned block over in place"
        );
    }
}
