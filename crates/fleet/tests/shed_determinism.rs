//! Shedding determinism under correlated link failures:
//!
//! * a trace that fails **two links at the same instant** (one fault
//!   domain) sheds a deterministic set of flows, in a deterministic
//!   order — lowest priority first, admission order within ties;
//! * recovery revives the shed flows under their original ids, again in
//!   a deterministic order;
//! * the `DMC_THREADS` environment variable (which parallelizes the
//!   Monte-Carlo engine, never the fleet) cannot influence any of it —
//!   fresh fleets replaying the same trace agree bitwise under every
//!   setting.

use dmc_core::ScenarioPath;
use dmc_fleet::{FleetConfig, FleetPlanner, FleetSnapshot, FleetTrace, FlowRequest};
use dmc_sim::LinkChange;

fn three_paths() -> Vec<ScenarioPath> {
    vec![
        ScenarioPath::constant(80e6, 0.450, 0.2).unwrap(),
        ScenarioPath::constant(20e6, 0.150, 0.0).unwrap(),
        ScenarioPath::constant(40e6, 0.250, 0.05).unwrap(),
    ]
}

/// Floored flows of mixed priorities, then paths 0 and 2 fail together
/// (a correlated fault domain), then both recover together.
fn correlated_outage_trace() -> FleetTrace {
    FleetTrace::new()
        .arrive(
            0.0,
            FlowRequest::new(30e6, 0.8)
                .unwrap()
                .with_min_quality(0.8)
                .with_priority(2.0),
        )
        .unwrap()
        .arrive(
            1.0,
            FlowRequest::new(25e6, 0.8).unwrap().with_min_quality(0.7),
        )
        .unwrap()
        .arrive(
            2.0,
            FlowRequest::new(10e6, 0.8)
                .unwrap()
                .with_min_quality(0.9)
                .with_priority(8.0),
        )
        .unwrap()
        .arrive(3.0, FlowRequest::new(15e6, 1.2).unwrap())
        .unwrap()
        // The fault domain: both failures land at t = 4.0 (FIFO within
        // the tie, like dmc_sim::Dynamics).
        .link(4.0, 0, LinkChange::Fail)
        .unwrap()
        .link(4.0, 2, LinkChange::Fail)
        .unwrap()
        // One capacity event while degraded (a no-op retune) gives the
        // shed queue an extra deterministic sweep.
        .link(5.0, 1, LinkChange::SetBandwidth(20e6))
        .unwrap()
        .link(6.0, 0, LinkChange::Recover)
        .unwrap()
        .link(6.0, 2, LinkChange::Recover)
        .unwrap()
}

fn replay_fresh() -> Vec<FleetSnapshot> {
    let mut fleet = FleetPlanner::new(three_paths(), FleetConfig::default()).unwrap();
    fleet.replay(&correlated_outage_trace()).unwrap()
}

fn assert_snapshots_identical(a: &[FleetSnapshot], b: &[FleetSnapshot]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.admitted, y.admitted);
        assert_eq!(x.shed, y.shed);
        assert_eq!(x.revived, y.revived);
        assert_eq!(x.utilization, y.utilization); // bitwise
        assert_eq!(x.aggregate_quality, y.aggregate_quality); // bitwise
    }
}

#[test]
fn correlated_failures_shed_and_revive_deterministically() {
    let baseline = replay_fresh();
    // All four flows were admitted before the outage.
    assert!(baseline[..4]
        .iter()
        .all(|s| s.decision.as_ref().unwrap().is_admitted()));
    // The correlated outage sheds at least one floored flow, lowest
    // priority first: every shed id must have a priority no higher than
    // any id that survived with a floor.
    let shed_at_outage: Vec<_> = baseline[4..6].iter().flat_map(|s| s.shed.clone()).collect();
    assert!(
        !shed_at_outage.is_empty(),
        "losing 120 of 140 Mbps must displace some floored flow"
    );
    // The 8.0-priority flow (id 2) fits on the surviving clean link and
    // must never be shed.
    assert!(shed_at_outage.iter().all(|id| id.index() != 2));
    // Recovery revives every shed flow; nobody is definitively rejected
    // within this short trace.
    let revived: Vec<_> = baseline.iter().flat_map(|s| s.revived.clone()).collect();
    assert_eq!(
        {
            let mut s = shed_at_outage.clone();
            s.sort();
            s
        },
        {
            let mut r = revived.clone();
            r.sort();
            r
        },
        "every shed flow is revived once capacity returns"
    );
    // Fresh fleets agree bitwise…
    assert_snapshots_identical(&baseline, &replay_fresh());
    // …and DMC_THREADS cannot change the shed set, shed order, or
    // re-admission order.
    for threads in ["1", "4", "13"] {
        std::env::set_var("DMC_THREADS", threads);
        assert_snapshots_identical(&baseline, &replay_fresh());
    }
    std::env::remove_var("DMC_THREADS");
}
