//! Admission-control invariants:
//!
//! * the admitted set is **deterministic** for a fixed event trace —
//!   fresh fleets replaying the same trace agree bitwise, and the
//!   `DMC_THREADS` environment variable (which parallelizes the
//!   Monte-Carlo engine, never the fleet) cannot influence it;
//! * **departing flows never reduce a surviving flow's delivery
//!   probability below its target** — the floors stay constraints of
//!   every re-solve, and a departure only relaxes the joint LP.

use dmc_core::ScenarioPath;
use dmc_fleet::{FleetConfig, FleetPlanner, FleetSnapshot, FleetTrace, FlowId, FlowRequest};
use dmc_sim::LinkChange;

fn two_paths() -> Vec<ScenarioPath> {
    vec![
        ScenarioPath::constant(80e6, 0.450, 0.2).unwrap(),
        ScenarioPath::constant(20e6, 0.150, 0.0).unwrap(),
    ]
}

/// A busy fixed trace: floors, a rejection, a link retune, departures.
fn busy_trace() -> FleetTrace {
    FleetTrace::new()
        .arrive(
            0.0,
            FlowRequest::new(40e6, 0.8).unwrap().with_min_quality(0.85),
        )
        .unwrap()
        .arrive(
            1.0,
            FlowRequest::new(30e6, 0.75).unwrap().with_min_quality(0.7),
        )
        .unwrap()
        .arrive(
            2.0,
            // Cannot also get 90 % out of what's left: rejected.
            FlowRequest::new(60e6, 0.8).unwrap().with_min_quality(0.9),
        )
        .unwrap()
        .arrive(3.0, FlowRequest::new(25e6, 1.2).unwrap())
        .unwrap()
        .link(4.0, 0, LinkChange::SetBandwidth(60e6))
        .unwrap()
        .depart(5.0, FlowId::from_index(0))
        .unwrap()
        .arrive(
            6.0,
            FlowRequest::new(35e6, 0.8).unwrap().with_min_quality(0.8),
        )
        .unwrap()
        .depart(7.0, FlowId::from_index(2)) // the rejected flow: a no-op
        .unwrap()
}

fn replay_fresh() -> Vec<FleetSnapshot> {
    let mut fleet = FleetPlanner::new(two_paths(), FleetConfig::default()).unwrap();
    fleet.replay(&busy_trace()).unwrap()
}

fn assert_snapshots_identical(a: &[FleetSnapshot], b: &[FleetSnapshot]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.admitted, y.admitted);
        assert_eq!(x.departed, y.departed);
        assert_eq!(x.shed, y.shed);
        assert_eq!(x.revived, y.revived);
        assert_eq!(x.utilization, y.utilization); // bitwise
        assert_eq!(x.aggregate_quality, y.aggregate_quality); // bitwise
        assert_eq!(
            x.decision.as_ref().map(|d| (d.id(), d.is_admitted())),
            y.decision.as_ref().map(|d| (d.id(), d.is_admitted()))
        );
    }
}

#[test]
fn admitted_set_is_deterministic_and_thread_count_independent() {
    let baseline = replay_fresh();
    // The trace exercises both outcomes.
    let decisions: Vec<bool> = baseline
        .iter()
        .filter_map(|s| s.decision.as_ref().map(|d| d.is_admitted()))
        .collect();
    assert_eq!(decisions, vec![true, true, false, true, true]);
    // Fresh fleets agree bitwise…
    assert_snapshots_identical(&baseline, &replay_fresh());
    // …and DMC_THREADS (read only by the Monte-Carlo engine) cannot
    // change fleet decisions: replay under several settings.
    for threads in ["1", "4", "13"] {
        std::env::set_var("DMC_THREADS", threads);
        assert_snapshots_identical(&baseline, &replay_fresh());
    }
    std::env::remove_var("DMC_THREADS");
}

#[test]
fn departures_never_break_surviving_floors() {
    // The issue's 3-flow / 2-path monotonicity trace: three floored flows
    // admitted together, then the middle one departs.
    let floors = [0.80, 0.60, 0.70];
    let rates = [30e6, 25e6, 20e6];
    let mut fleet = FleetPlanner::new(two_paths(), FleetConfig::default()).unwrap();
    let mut ids = Vec::new();
    for (rate, floor) in rates.iter().zip(floors) {
        let d = fleet
            .offer(
                FlowRequest::new(*rate, 0.8)
                    .unwrap()
                    .with_min_quality(floor),
            )
            .unwrap();
        assert!(d.is_admitted());
        ids.push(d.id());
    }
    let before: Vec<f64> = ids
        .iter()
        .map(|&id| fleet.plan_of(id).unwrap().quality())
        .collect();
    for (q, floor) in before.iter().zip(floors) {
        assert!(*q >= floor - 1e-9, "pre-departure: {q} < floor {floor}");
    }
    let goodput_survivors_before = rates[0] * before[0] + rates[2] * before[2];

    fleet.depart(ids[1]).unwrap();

    // Survivors still meet their targets…
    for (i, &id) in [0usize, 2].iter().zip([ids[0], ids[2]].iter()) {
        let q = fleet.plan_of(id).unwrap().quality();
        assert!(
            q >= floors[*i] - 1e-9,
            "post-departure: flow {i} at {q} < floor {}",
            floors[*i]
        );
    }
    // …and the freed capacity can only help the survivors in aggregate
    // (the old allocation restricted to them is still feasible).
    let goodput_survivors_after = rates[0] * fleet.plan_of(ids[0]).unwrap().quality()
        + rates[2] * fleet.plan_of(ids[2]).unwrap().quality();
    assert!(
        goodput_survivors_after >= goodput_survivors_before - 1e-3,
        "{goodput_survivors_after} < {goodput_survivors_before}"
    );

    // Repeated departures keep the invariant down to one flow.
    fleet.depart(ids[0]).unwrap();
    let q_last = fleet.plan_of(ids[2]).unwrap().quality();
    assert!(q_last >= floors[2] - 1e-9);
    assert_eq!(fleet.num_flows(), 1);
}
