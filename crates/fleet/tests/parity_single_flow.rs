//! Single-flow degeneracy parity: a fleet with exactly one flow must
//! produce a `Plan` identical (≤ 1e-9 on allocations, metrics and
//! timeouts) to `Planner::plan` on the same `Scenario`.
//!
//! With one floor-free flow the joint LP is row-for-row the single-flow
//! planner's LP (same coefficients, same row order, same scaling — `λ/Λ`
//! is exactly 1.0). Under the *legacy* configuration (rebuild assembly +
//! the revised backend, i.e. the same solver `Planner::plan` uses) the
//! canonical vertex therefore agrees **bit for bit**, which
//! [`legacy_config_matches_bit_for_bit`] pins. The default fleet now
//! routes joint solves through the block-structured sparse backend,
//! whose factorization order differs — same canonical vertex, last-bit
//! arithmetic differences — so the default-path tests assert the 1e-9
//! contract everywhere (fixed cases and the proptest alike).

use dmc_core::{Objective, Plan, Planner, Scenario, ScenarioPath};
use dmc_fleet::{AdmissionDecision, FleetConfig, FleetPlanner, FlowRequest};
use dmc_lp::Backend;
use dmc_stats::ShiftedGamma;
use proptest::prelude::*;
use proptest::Strategy;
use std::sync::Arc;

const TOL: f64 = 1e-9;

/// The pre-sparse fleet configuration: rebuild the joint LP per solve
/// and solve it with the same revised backend `Planner::plan` uses.
fn legacy_config() -> FleetConfig {
    FleetConfig {
        joint_backend: Backend::Revised,
        incremental: false,
        ..FleetConfig::default()
    }
}

/// Runs `scenario` through a fresh single-flow fleet (given config) and
/// returns the decomposed plan.
fn fleet_plan_with(scenario: &Scenario, config: FleetConfig) -> Plan {
    let mut fleet = FleetPlanner::new(scenario.paths().to_vec(), config).expect("valid paths");
    let mut request = FlowRequest::new(scenario.data_rate(), scenario.lifetime())
        .expect("valid request")
        .with_transmissions(scenario.transmissions());
    if scenario.cost_budget().is_finite() {
        request = request.with_cost_budget(scenario.cost_budget());
    }
    let decision = fleet.offer(request).expect("offer succeeds");
    let AdmissionDecision::Admitted { id, .. } = decision else {
        panic!("a floor-free flow is always admitted");
    };
    fleet.plan_of(id).expect("admitted plan").clone()
}

/// The default (incremental + sparse) fleet path.
fn fleet_plan(scenario: &Scenario) -> Plan {
    fleet_plan_with(scenario, FleetConfig::default())
}

fn assert_plans_match(fleet: &Plan, solo: &Plan, ctx: &str) {
    assert_eq!(
        fleet.strategy().x().len(),
        solo.strategy().x().len(),
        "{ctx}: combo count"
    );
    for (l, (a, b)) in fleet
        .strategy()
        .x()
        .iter()
        .zip(solo.strategy().x())
        .enumerate()
    {
        assert!((a - b).abs() <= TOL, "{ctx}: x[{l}] = {a} vs {b}");
    }
    assert!(
        (fleet.quality() - solo.quality()).abs() <= TOL,
        "{ctx}: quality {} vs {}",
        fleet.quality(),
        solo.quality()
    );
    assert!(
        (fleet.cost_rate() - solo.cost_rate()).abs() <= TOL,
        "{ctx}: cost rate"
    );
    for (k, (a, b)) in fleet.send_rates().iter().zip(solo.send_rates()).enumerate() {
        // Send rates are in bits/s; 1e-9 relative to the rate.
        assert!(
            (a - b).abs() <= TOL * a.abs().max(1.0),
            "{ctx}: S_{k} = {a} vs {b}"
        );
    }
    assert_eq!(fleet.ack_path(), solo.ack_path(), "{ctx}: ack path");
    // Timeout schedules: compare every armed stage timer.
    let n = fleet.strategy().table().num_combos();
    for l in 0..n {
        let stages = solo.schedule().stages(l);
        for s in 0..stages.len() {
            match (fleet.schedule().stage(l, s), solo.schedule().stage(l, s)) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    assert!(
                        (a.delay - b.delay).abs() <= TOL,
                        "{ctx}: timeout({l},{s}) = {} vs {}",
                        a.delay,
                        b.delay
                    );
                    assert_eq!(a.retransmit, b.retransmit, "{ctx}: retransmit({l},{s})");
                }
                (a, b) => panic!("{ctx}: stage ({l},{s}) armed differently: {a:?} vs {b:?}"),
            }
        }
    }
}

#[test]
fn table3_sweep_matches_default_path() {
    let mut planner = Planner::new();
    for lambda in [10e6, 60e6, 90e6, 120e6] {
        for delta in [0.45, 0.8, 1.5] {
            let scenario = Scenario::builder()
                .path(ScenarioPath::constant(80e6, 0.450, 0.2).unwrap())
                .path(ScenarioPath::constant(20e6, 0.150, 0.0).unwrap())
                .data_rate(lambda)
                .lifetime(delta)
                .build()
                .unwrap();
            let solo = planner.plan(&scenario, Objective::MaxQuality).unwrap();
            let fleet = fleet_plan(&scenario);
            assert_plans_match(&fleet, &solo, &format!("λ={lambda} δ={delta}"));
            // The timeout machinery is LP-independent: exact equality.
            assert_eq!(fleet.schedule(), solo.schedule());
        }
    }
}

#[test]
fn legacy_config_matches_bit_for_bit() {
    // Identical LPs solved by the identical backend ⇒ identical
    // canonical vertices, bit for bit — a stronger statement than the
    // 1e-9 bar, preserved on the rebuild+revised configuration.
    let mut planner = Planner::new();
    for lambda in [10e6, 60e6, 90e6, 120e6] {
        for delta in [0.45, 0.8, 1.5] {
            let scenario = Scenario::builder()
                .path(ScenarioPath::constant(80e6, 0.450, 0.2).unwrap())
                .path(ScenarioPath::constant(20e6, 0.150, 0.0).unwrap())
                .data_rate(lambda)
                .lifetime(delta)
                .build()
                .unwrap();
            let solo = planner.plan(&scenario, Objective::MaxQuality).unwrap();
            let fleet = fleet_plan_with(&scenario, legacy_config());
            assert_eq!(fleet.strategy().x(), solo.strategy().x(), "λ={lambda}");
            assert_eq!(fleet.quality(), solo.quality());
            assert_eq!(fleet.send_rates(), solo.send_rates());
            assert_eq!(fleet.schedule(), solo.schedule());
            assert_plans_match(&fleet, &solo, &format!("λ={lambda} δ={delta}"));
        }
    }
}

#[test]
fn budgeted_flow_matches() {
    let scenario = Scenario::builder()
        .path(ScenarioPath::constant_with_cost(80e6, 0.450, 0.2, 2e-9).unwrap())
        .path(ScenarioPath::constant_with_cost(20e6, 0.150, 0.0, 1e-9).unwrap())
        .data_rate(90e6)
        .lifetime(0.8)
        .cost_budget(0.15)
        .build()
        .unwrap();
    let solo = Planner::new()
        .plan(&scenario, Objective::MaxQuality)
        .unwrap();
    let fleet = fleet_plan(&scenario);
    assert_plans_match(&fleet, &solo, "budgeted");
    // And the legacy configuration still agrees bitwise.
    let legacy = fleet_plan_with(&scenario, legacy_config());
    assert_eq!(legacy.strategy().x(), solo.strategy().x());
    assert_eq!(legacy.cost_rate(), solo.cost_rate());
}

#[test]
fn random_delay_flow_matches() {
    // Table V (§VI-B): the fleet path goes through the same discretized
    // Eq. 28/34 machinery as the single-flow planner.
    let scenario = Scenario::builder()
        .path(
            ScenarioPath::new(
                80e6,
                Arc::new(ShiftedGamma::new(10.0, 0.004, 0.400).unwrap()),
                0.2,
                0.0,
            )
            .unwrap(),
        )
        .path(
            ScenarioPath::new(
                20e6,
                Arc::new(ShiftedGamma::new(5.0, 0.002, 0.100).unwrap()),
                0.0,
                0.0,
            )
            .unwrap(),
        )
        .data_rate(90e6)
        .lifetime(0.750)
        .build()
        .unwrap();
    let solo = Planner::new()
        .plan(&scenario, Objective::MaxQuality)
        .unwrap();
    let fleet = fleet_plan(&scenario);
    assert_plans_match(&fleet, &solo, "table5");
}

fn arb_constant_path() -> impl Strategy<Value = ScenarioPath> {
    (
        1.0f64..200.0, // bandwidth Mbps
        0.005f64..0.8, // delay s
        0.0f64..0.9,   // loss
        0.0f64..5e-9,  // cost per bit
    )
        .prop_map(|(bw, d, l, c)| {
            ScenarioPath::constant_with_cost(bw * 1e6, d, l, c).expect("valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The 1e-9 single-flow parity contract over arbitrary deterministic
    /// scenarios: paths, rate, lifetime and transmission count all drawn
    /// at random.
    #[test]
    fn single_flow_fleet_matches_planner(
        paths in proptest::collection::vec(arb_constant_path(), 1..4),
        lambda in 1.0f64..300.0,
        delta in 0.05f64..2.0,
        m in 1usize..4,
    ) {
        let scenario = Scenario::builder()
            .paths(paths)
            .data_rate(lambda * 1e6)
            .lifetime(delta)
            .transmissions(m)
            .build()
            .expect("valid");
        let solo = Planner::new()
            .plan(&scenario, Objective::MaxQuality)
            .expect("feasible");
        let fleet = fleet_plan(&scenario);
        assert_plans_match(&fleet, &solo, &format!("λ={lambda}M δ={delta} m={m}"));
    }
}
