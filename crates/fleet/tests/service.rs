//! `dmc-fleetd` service-layer contracts:
//!
//! 1. **Sharded = monolithic** (proptest): for any partition of the
//!    shared paths into capacity regions and any script of path-subset
//!    offers and departures that respects the partition, the sharded
//!    service admits/rejects exactly the flows a single monolithic
//!    [`FleetPlanner`] admits, and every admitted plan agrees to 1e-9
//!    (the joint LP's capacity rows are scaled by the *aggregate* rate Λ,
//!    so the parity exercises Λ-rescaling invariance: each shard solves
//!    with its region's Λ, the monolith with the global one).
//! 2. **Two-phase spanning admission**: a flow whose path set spans
//!    regions is split by live-bandwidth share and reserved leg by leg;
//!    any refusal rolls the reserved legs back completely.
//! 3. **Worker-count determinism**: a fixed script produces bitwise
//!    identical event streams and decision hashes at 1 and 4 workers.

use dmc_core::ScenarioPath;
use dmc_fleet::{
    FleetConfig, FleetPlanner, FleetService, FlowRequest, ServiceConfig, ServiceEvent,
};
use dmc_sim::LinkChange;
use proptest::prelude::*;

const TOL: f64 = 1e-9;

fn shared_paths() -> Vec<ScenarioPath> {
    vec![
        ScenarioPath::constant(80e6, 0.450, 0.2).expect("valid path"),
        ScenarioPath::constant(20e6, 0.150, 0.0).expect("valid path"),
        ScenarioPath::constant(30e6, 0.250, 0.05).expect("valid path"),
        ScenarioPath::constant(40e6, 0.350, 0.1).expect("valid path"),
    ]
}

fn service(groups: &[Vec<usize>], workers: usize) -> FleetService {
    FleetService::new(
        shared_paths(),
        groups,
        ServiceConfig {
            workers,
            fleet: FleetConfig::default(),
            grid: None,
        },
    )
    .expect("valid service")
}

// ---------------------------------------------------------------------
// 1. Sharded vs monolithic parity
// ---------------------------------------------------------------------

/// One scripted action over a partitioned fleet.
#[derive(Debug, Clone)]
enum Action {
    /// Offer a request restricted to a subset of one region's paths
    /// (`region_sel` picks the region, `mask` the within-region subset).
    Offer {
        request: FlowRequest,
        region_sel: usize,
        mask: u8,
    },
    /// Depart the `k`-th currently admitted flow (mod the live count).
    Depart(usize),
}

fn arb_request() -> impl Strategy<Value = FlowRequest> {
    (
        4.0f64..40.0, // rate Mbps
        0.4f64..1.5,  // lifetime s
        0.0f64..0.9,  // floor
        proptest::prelude::any::<bool>(),
    )
        .prop_map(|(rate, delta, floor, budgeted)| {
            let mut r = FlowRequest::new(rate * 1e6, delta).expect("valid request");
            if floor > 0.05 {
                r = r.with_min_quality(floor);
            }
            if budgeted {
                r = r.with_cost_budget(2.0);
            }
            r
        })
}

fn arb_action() -> impl Strategy<Value = Action> {
    (
        proptest::prelude::any::<u64>(),
        arb_request(),
        proptest::prelude::any::<usize>(),
        proptest::prelude::any::<u8>(),
        0usize..6,
    )
        .prop_map(|(tag, request, region_sel, mask, k)| {
            if tag % 4 == 3 {
                Action::Depart(k)
            } else {
                Action::Offer {
                    request,
                    region_sel,
                    mask,
                }
            }
        })
}

/// Resolves an offer's path subset: the selected region's paths filtered
/// by the mask bits, falling back to the whole region when the mask
/// selects nothing.
fn subset_for(regions: &[Vec<usize>], region_sel: usize, mask: u8) -> Vec<usize> {
    let region = &regions[region_sel % regions.len()];
    let masked: Vec<usize> = region
        .iter()
        .enumerate()
        .filter(|(i, _)| mask & (1 << (i % 8)) != 0)
        .map(|(_, &k)| k)
        .collect();
    if masked.is_empty() {
        region.clone()
    } else {
        masked
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random partitions × random in-region offer/depart scripts: the
    /// sharded service and the monolithic planner agree on every
    /// admission outcome and on every admitted plan to 1e-9.
    #[test]
    fn sharded_matches_monolithic(
        labels in proptest::collection::vec(0usize..3, 4..5),
        script in proptest::collection::vec(arb_action(), 1..10),
    ) {
        // Partition the 4 paths by random label; groups declare the
        // partition to the service, and drive the monolith's subsets.
        let mut groups: Vec<Vec<usize>> = Vec::new();
        for label in 0..3 {
            let members: Vec<usize> = (0..4).filter(|&k| labels[k] == label).collect();
            if !members.is_empty() {
                groups.push(members);
            }
        }
        let mut service = service(&groups, 2);
        // The service's normalized regions (not the raw groups) define
        // the offer subsets, so every offer stays within one region.
        let regions: Vec<Vec<usize>> = (0..service.region_map().num_regions())
            .map(|r| service.region_map().region_paths(r).to_vec())
            .collect();
        let mut mono =
            FleetPlanner::new(shared_paths(), FleetConfig::default()).expect("valid fleet");

        // (service global id, monolithic id) of still-admitted flows.
        let mut admitted: Vec<(u64, dmc_fleet::FlowId)> = Vec::new();
        for action in &script {
            match action {
                Action::Offer { request, region_sel, mask } => {
                    let subset = subset_for(&regions, *region_sel, *mask);
                    let request = request.clone().with_paths(subset);
                    let seq = service.submit(request.clone()).expect("in-range subset");
                    let events = service.tick().expect("tick succeeds");
                    let mono_decision = mono.offer(request).expect("offer succeeds");
                    let [ServiceEvent::Decision { seq: dseq, admitted: ok, predicted_quality }] =
                        &events[..]
                    else {
                        panic!("expected exactly one decision, got {events:?}");
                    };
                    prop_assert_eq!(*dseq, seq);
                    prop_assert_eq!(
                        *ok,
                        mono_decision.is_admitted(),
                        "admission diverged on {:?}", action
                    );
                    if *ok {
                        if let dmc_fleet::AdmissionDecision::Admitted {
                            id,
                            predicted_quality: mono_quality,
                        } = mono_decision
                        {
                            prop_assert!(
                                (predicted_quality - mono_quality).abs() <= TOL,
                                "predicted quality {} vs {}", predicted_quality, mono_quality
                            );
                            admitted.push((seq, id));
                        }
                    }
                }
                Action::Depart(k) => {
                    if admitted.is_empty() {
                        continue;
                    }
                    let (seq, mono_id) = admitted.remove(k % admitted.len());
                    service.submit_depart(seq);
                    let events = service.tick().expect("tick succeeds");
                    prop_assert!(
                        events.iter().any(|e| matches!(
                            e,
                            ServiceEvent::Departed { flow, found: true, .. } if *flow == seq
                        )),
                        "departure of {} unanswered: {:?}", seq, events
                    );
                    mono.depart(mono_id).expect("known id");
                }
            }
        }

        // Every surviving plan agrees to 1e-9 (plans are built over the
        // flow's path subset in both worlds, so they align index-wise).
        for &(seq, mono_id) in &admitted {
            let legs = service.leg_plans(seq);
            prop_assert_eq!(legs.len(), 1, "single-region flow has one leg");
            let sharded = legs[0];
            let mono_plan = mono.plan_of(mono_id).expect("admitted plan");
            prop_assert!((sharded.quality() - mono_plan.quality()).abs() <= TOL);
            prop_assert!((sharded.cost_rate() - mono_plan.cost_rate()).abs() <= TOL);
            for (a, b) in sharded
                .strategy()
                .x()
                .iter()
                .zip(mono_plan.strategy().x())
            {
                prop_assert!((a - b).abs() <= TOL, "x: {} vs {}", a, b);
            }
            for (a, b) in sharded.send_rates().iter().zip(mono_plan.send_rates()) {
                prop_assert!((a - b).abs() <= TOL * a.abs().max(1.0), "S: {} vs {}", a, b);
            }
        }
        // And the aggregate per-path picture matches.
        let util = service.utilization();
        for (a, b) in util.iter().zip(mono.utilization()) {
            prop_assert!((a - b).abs() <= TOL * a.abs().max(1.0), "util: {} vs {}", a, b);
        }
    }
}

// ---------------------------------------------------------------------
// 2. Spanning flows: two-phase reserve/commit with rollback
// ---------------------------------------------------------------------

#[test]
fn spanning_flow_is_split_and_committed_across_regions() {
    // Regions {0,1} and {2,3}; an unrestricted flow spans both.
    let mut svc = service(&[vec![0, 1], vec![2, 3]], 1);
    let seq = svc
        .submit(
            FlowRequest::new(30e6, 0.9)
                .expect("valid")
                .with_min_quality(0.5),
        )
        .expect("in range");
    let events = svc.tick().expect("tick succeeds");
    assert!(matches!(
        events[..],
        [ServiceEvent::Decision { admitted: true, .. }]
    ));
    // One committed leg per region, both sides of the split live.
    assert_eq!(svc.leg_plans(seq).len(), 2);
    assert_eq!(svc.num_admitted_legs(), 2);
    let util = svc.utilization();
    let region_a: f64 = util[0] + util[1];
    let region_b: f64 = util[2] + util[3];
    assert!(
        region_a > 0.0 && region_b > 0.0,
        "both legs carry rate: {util:?}"
    );
    // The λ split follows the live-bandwidth share: region A holds
    // 100 of the 170 Mbps, region B the other 70.
    let legs = svc.leg_plans(seq);
    assert!((legs[0].scenario().data_rate() - 30e6 * 100.0 / 170.0).abs() <= 1.0);
    assert!((legs[1].scenario().data_rate() - 30e6 * 70.0 / 170.0).abs() <= 1.0);

    // Departing the spanning flow clears every leg.
    svc.submit_depart(seq);
    let events = svc.tick().expect("tick succeeds");
    assert!(events.iter().any(|e| matches!(
        e,
        ServiceEvent::Departed { flow, found: true, .. } if *flow == seq
    )));
    assert_eq!(svc.num_admitted_legs(), 0);
    assert!(svc.utilization().iter().all(|&u| u.abs() <= TOL));
}

#[test]
fn spanning_refusal_rolls_back_the_reserved_leg() {
    let mut svc = service(&[vec![0, 1], vec![2, 3]], 1);
    // Saturate region B so a spanning flow's B-leg must be refused.
    for _ in 0..3 {
        let seq = svc
            .submit(
                FlowRequest::new(20e6, 0.5)
                    .expect("valid")
                    .with_min_quality(0.9)
                    .with_paths(vec![2, 3]),
            )
            .expect("in range");
        let _ = (seq, svc.tick().expect("tick succeeds"));
    }
    let legs_before = svc.num_admitted_legs();
    let util_before = svc.utilization();

    // The spanning offer: region A could take its share, region B
    // cannot — the whole flow must be refused and A's reservation
    // rolled back.
    let seq = svc
        .submit(
            FlowRequest::new(40e6, 0.5)
                .expect("valid")
                .with_min_quality(0.95),
        )
        .expect("in range");
    let events = svc.tick().expect("tick succeeds");
    assert!(
        events.iter().any(|e| matches!(
            e,
            ServiceEvent::Decision { seq: s, admitted: false, .. } if *s == seq
        )),
        "spanning refusal expected: {events:?}"
    );
    assert!(svc.leg_plans(seq).is_empty());
    assert_eq!(
        svc.num_admitted_legs(),
        legs_before,
        "the reserved leg must be rolled back"
    );
    for (a, b) in svc.utilization().iter().zip(&util_before) {
        assert!(
            (a - b).abs() <= TOL * b.abs().max(1.0),
            "rollback left residue: {a} vs {b}"
        );
    }

    // The service still works: a modest A-only flow is admitted.
    let seq = svc
        .submit(
            FlowRequest::new(10e6, 0.9)
                .expect("valid")
                .with_paths(vec![0, 1]),
        )
        .expect("in range");
    let events = svc.tick().expect("tick succeeds");
    assert!(events.iter().any(|e| matches!(
        e,
        ServiceEvent::Decision { seq: s, admitted: true, .. } if *s == seq
    )));
}

// ---------------------------------------------------------------------
// 3. Worker-count determinism
// ---------------------------------------------------------------------

/// Replays a fixed mixed script (batched offers, a spanning flow,
/// departures, an outage/recovery cycle) and returns every tick's events
/// plus the final decision hash.
fn run_script(workers: usize) -> (Vec<Vec<ServiceEvent>>, u64) {
    let (ticks, hash, _) = run_script_with(workers, dmc_obs::Obs::disabled());
    (ticks, hash)
}

/// [`run_script`] with a telemetry registry; additionally returns the
/// service's merged [`dmc_obs::Snapshot`].
fn run_script_with(
    workers: usize,
    obs: dmc_obs::Obs,
) -> (Vec<Vec<ServiceEvent>>, u64, dmc_obs::Snapshot) {
    // Six singleton regions so the worker chunking actually splits.
    let paths: Vec<ScenarioPath> = (0..6)
        .map(|k| {
            ScenarioPath::constant(
                30e6 + 10e6 * k as f64,
                0.200 + 0.050 * k as f64,
                0.02 * k as f64,
            )
            .expect("valid path")
        })
        .collect();
    let mut svc = FleetService::new(
        paths,
        &[],
        ServiceConfig {
            workers,
            fleet: FleetConfig {
                obs,
                ..FleetConfig::default()
            },
            grid: None,
        },
    )
    .expect("valid service");
    let mut ticks = Vec::new();

    // Tick 1: one offer per region (all shards busy) + one spanning flow.
    let mut flows = Vec::new();
    for k in 0..6 {
        let seq = svc
            .submit(
                FlowRequest::new(8e6 + 2e6 * k as f64, 0.8)
                    .expect("valid")
                    .with_min_quality(0.6)
                    .with_paths(vec![k]),
            )
            .expect("in range");
        flows.push(seq);
    }
    let spanning = svc
        .submit(
            FlowRequest::new(24e6, 1.0)
                .expect("valid")
                .with_min_quality(0.4),
        )
        .expect("in range");
    ticks.push(svc.tick().expect("tick succeeds"));

    // Tick 2: depart two flows, fail a path, more offers.
    svc.submit_depart(flows[1]);
    svc.submit_depart(spanning);
    svc.submit_link(3, LinkChange::Fail).expect("valid change");
    for k in 0..3 {
        svc.submit(
            FlowRequest::new(6e6, 0.7)
                .expect("valid")
                .with_min_quality(0.5)
                .with_paths(vec![k * 2]),
        )
        .expect("in range");
    }
    ticks.push(svc.tick().expect("tick succeeds"));

    // Tick 3: recovery plus a bandwidth retune.
    svc.submit_link(3, LinkChange::Recover)
        .expect("valid change");
    svc.submit_link(0, LinkChange::SetBandwidth(45e6))
        .expect("valid change");
    ticks.push(svc.tick().expect("tick succeeds"));

    let snapshot = svc.obs_snapshot();
    (ticks, svc.decision_hash(), snapshot)
}

#[test]
fn decision_stream_is_bitwise_identical_across_worker_counts() {
    let (ticks_1, hash_1) = run_script(1);
    let (ticks_4, hash_4) = run_script(4);
    assert_eq!(
        ticks_1, ticks_4,
        "event streams diverged across worker counts"
    );
    assert_eq!(
        hash_1, hash_4,
        "decision hashes diverged across worker counts"
    );
    // And the hash really covers the stream: a rerun reproduces it.
    let (_, hash_again) = run_script(4);
    assert_eq!(hash_4, hash_again);
}

#[test]
fn telemetry_snapshot_is_identical_across_worker_counts() {
    let (_, _, snap_1) = run_script_with(1, dmc_obs::Obs::enabled());
    let (_, _, snap_4) = run_script_with(4, dmc_obs::Obs::enabled());
    assert_eq!(
        snap_1.fnv_hash(),
        snap_4.fnv_hash(),
        "telemetry snapshots diverged across worker counts:\n{}\nvs\n{}",
        snap_1.to_jsonl(),
        snap_4.to_jsonl()
    );

    // The script's shape is visible in the merged registry.
    assert_eq!(snap_1.counter("service.ticks"), Some(3));
    assert_eq!(snap_1.counter("service.spanning_offers"), Some(1));
    assert_eq!(
        snap_1.counter("service.spanning_commits").unwrap_or(0)
            + snap_1.counter("service.spanning_refusals").unwrap_or(0),
        1,
        "every spanning offer either commits or refuses"
    );
    let depth = snap_1
        .histogram("service.queue_depth")
        .expect("queue depth recorded per shard per tick");
    assert_eq!(depth.count, 3 * 6, "three ticks over six shards");
    assert!(snap_1.histogram("service.batch_size").is_some());
    assert!(snap_1.counter("fleet.admits").unwrap_or(0) > 0);
    assert!(
        snap_1.counter("lp.solves").unwrap_or(0) > 0,
        "shard forks carry the solver metrics into the merged snapshot"
    );
}

// ---------------------------------------------------------------------
// 4. The slotted reservation plane (ServiceConfig::grid)
// ---------------------------------------------------------------------

#[test]
fn windowed_offers_ride_the_reservation_plane() {
    use dmc_fleet::{ScheduleRequest, SlotWindow, TimeGrid};

    let mut svc = FleetService::new(
        shared_paths(),
        &[vec![0, 1, 2, 3]], // one capacity region
        ServiceConfig {
            workers: 1,
            fleet: FleetConfig::default(),
            grid: Some(TimeGrid::new(1.0, 8).expect("valid grid")),
        },
    )
    .expect("valid service");

    let request = ScheduleRequest::new(
        FlowRequest::new(30e6, 0.8)
            .expect("valid request")
            .with_min_quality(0.8),
        SlotWindow::new(0, 2).expect("valid window"),
    );
    let (region, decision) = svc.offer_windowed(request).expect("windowed offer runs");
    assert_eq!(region, 0);
    assert!(decision.is_scheduled(), "plenty of capacity: {decision:?}");
    assert_eq!(svc.windowed_flows(), vec![1]);
    // The instant admission plane is untouched by windowed offers.
    assert_eq!(svc.num_admitted_legs(), 0);
    assert_eq!(svc.submissions(), 0);

    // Advancing past the window completes the flow in every region.
    let advances = svc.advance_to(2).expect("advance runs");
    assert_eq!(advances.len(), 1);
    assert_eq!(advances[0].completed, vec![decision.id()]);
    assert_eq!(svc.windowed_flows(), vec![0]);
}

#[test]
fn windowed_departure_frees_the_reservation() {
    use dmc_fleet::{ScheduleRequest, SlotWindow, TimeGrid};

    let mut svc = FleetService::new(
        shared_paths(),
        &[vec![0, 1, 2, 3]],
        ServiceConfig {
            workers: 1,
            fleet: FleetConfig::default(),
            grid: Some(TimeGrid::new(1.0, 8).expect("valid grid")),
        },
    )
    .expect("valid service");
    let (region, decision) = svc
        .offer_windowed(ScheduleRequest::new(
            FlowRequest::new(20e6, 0.8).expect("valid request"),
            SlotWindow::new(1, 3).expect("valid window"),
        ))
        .expect("windowed offer runs");
    svc.depart_windowed(region, decision.id())
        .expect("known windowed flow departs");
    assert_eq!(svc.windowed_flows(), vec![0]);
    // Departing it again is an UnknownFlow error, not a silent no-op.
    assert!(svc.depart_windowed(region, decision.id()).is_err());
}

#[test]
fn spanning_windowed_offers_and_gridless_services_are_rejected() {
    use dmc_fleet::{ScheduleRequest, SlotWindow, TimeGrid};

    // Two regions: an unpinned windowed offer touches both -> invalid.
    let mut split = FleetService::new(
        shared_paths(),
        &[vec![0, 1], vec![2, 3]],
        ServiceConfig {
            workers: 1,
            fleet: FleetConfig::default(),
            grid: Some(TimeGrid::new(1.0, 4).expect("valid grid")),
        },
    )
    .expect("valid service");
    let unpinned = ScheduleRequest::new(
        FlowRequest::new(10e6, 0.5).expect("valid request"),
        SlotWindow::instant(0),
    );
    assert!(split.offer_windowed(unpinned.clone()).is_err());
    // Pinned to one region it goes through.
    let pinned = ScheduleRequest::new(
        FlowRequest::new(10e6, 0.5)
            .expect("valid request")
            .with_paths(vec![2, 3]),
        SlotWindow::instant(0),
    );
    let (region, decision) = split.offer_windowed(pinned).expect("pinned offer runs");
    assert_eq!(region, 1);
    assert!(decision.is_admitted());

    // Without a grid the whole plane is off.
    let mut gridless = service(&[vec![0, 1, 2, 3]], 1);
    assert!(gridless.offer_windowed(unpinned).is_err());
    assert!(gridless.advance_to(1).is_err());
}
