//! Differential testing of the fleet's two assembly/solve paths: the
//! default **incremental + sparse** pipeline against the pre-sparse
//! **rebuild-per-solve** baseline (with both the revised and the dense
//! backends), over admission, rejection, departure (tombstoning and slot
//! reuse), compaction and link-change resettles.
//!
//! Contract: every configuration must admit/reject the *same* flows and
//! agree on every admitted plan's allocation, quality, cost and send
//! rates to 1e-9. On a freshly populated fleet (no churn yet) the
//! incremental assembly produces the *identical* `Problem` the rebuild
//! path assembles, so with the same backend the plans match **bitwise**
//! — pinned here as the structural anchor.

use dmc_core::{PlannerConfig, ScenarioPath};
use dmc_fleet::{FleetConfig, FleetPlanner, FlowRequest};
use dmc_lp::Backend;
use dmc_sim::LinkChange;
use proptest::prelude::*;

const TOL: f64 = 1e-9;

fn shared_paths() -> Vec<ScenarioPath> {
    vec![
        ScenarioPath::constant(80e6, 0.450, 0.2).expect("valid"),
        ScenarioPath::constant(20e6, 0.150, 0.0).expect("valid"),
        ScenarioPath::constant(30e6, 0.250, 0.05).expect("valid"),
    ]
}

fn config(incremental: bool, joint_backend: Backend, warm: bool) -> FleetConfig {
    FleetConfig {
        incremental,
        joint_backend,
        planner: PlannerConfig {
            warm_start: warm,
            ..PlannerConfig::default()
        },
        ..FleetConfig::default()
    }
}

/// One scripted fleet action.
#[derive(Debug, Clone)]
enum Action {
    Offer(FlowRequest),
    /// Depart the `k`-th currently admitted flow (mod the live count).
    Depart(usize),
    Link(usize, LinkChange),
}

/// Replays a script and returns, per step, the decision outcomes, the
/// final per-flow plans `(id, x, quality, cost_rate, send_rates)`, and
/// the final rate-weighted aggregate quality (the joint objective).
#[allow(clippy::type_complexity)]
fn replay(
    cfg: FleetConfig,
    script: &[Action],
) -> (Vec<bool>, Vec<(u64, Vec<f64>, f64, f64, Vec<f64>)>, f64) {
    let mut fleet = FleetPlanner::new(shared_paths(), cfg).expect("valid paths");
    let mut outcomes = Vec::new();
    for action in script {
        match action {
            Action::Offer(req) => {
                let d = fleet.offer(req.clone()).expect("offer succeeds");
                outcomes.push(d.is_admitted());
            }
            Action::Depart(k) => {
                let ids = fleet.flow_ids();
                if !ids.is_empty() {
                    fleet.depart(ids[k % ids.len()]).expect("known id");
                }
                outcomes.push(true);
            }
            Action::Link(path, change) => {
                fleet
                    .apply_link_change(*path, change)
                    .expect("valid change");
                outcomes.push(true);
            }
        }
    }
    let plans = fleet
        .plans()
        .map(|(id, p)| {
            (
                id.index(),
                p.strategy().x().to_vec(),
                p.quality(),
                p.cost_rate(),
                p.send_rates().to_vec(),
            )
        })
        .collect();
    let agg = fleet.aggregate_quality();
    (outcomes, plans, agg)
}

#[allow(clippy::type_complexity)]
fn assert_replays_agree(
    script: &[Action],
    a: (Vec<bool>, Vec<(u64, Vec<f64>, f64, f64, Vec<f64>)>, f64),
    b: (Vec<bool>, Vec<(u64, Vec<f64>, f64, f64, Vec<f64>)>, f64),
    ctx: &str,
) {
    assert_eq!(a.0, b.0, "{ctx}: admission outcomes diverged\n{script:?}");
    assert_eq!(a.1.len(), b.1.len(), "{ctx}: admitted counts diverged");
    for ((id_a, x_a, q_a, c_a, s_a), (id_b, x_b, q_b, c_b, s_b)) in a.1.iter().zip(&b.1) {
        assert_eq!(id_a, id_b, "{ctx}: flow order");
        assert_eq!(x_a.len(), x_b.len(), "{ctx}: flow#{id_a} combo count");
        for (j, (va, vb)) in x_a.iter().zip(x_b).enumerate() {
            assert!(
                (va - vb).abs() <= TOL,
                "{ctx}: flow#{id_a} x[{j}] = {va} vs {vb}"
            );
        }
        assert!((q_a - q_b).abs() <= TOL, "{ctx}: flow#{id_a} quality");
        assert!((c_a - c_b).abs() <= TOL, "{ctx}: flow#{id_a} cost");
        for (k, (va, vb)) in s_a.iter().zip(s_b).enumerate() {
            assert!(
                (va - vb).abs() <= TOL * va.abs().max(1.0),
                "{ctx}: flow#{id_a} S_{k} = {va} vs {vb}"
            );
        }
    }
}

fn churn_script() -> Vec<Action> {
    vec![
        Action::Offer(FlowRequest::new(30e6, 0.8).unwrap().with_min_quality(0.7)),
        Action::Offer(FlowRequest::new(20e6, 0.6).unwrap()),
        Action::Offer(
            FlowRequest::new(15e6, 1.0)
                .unwrap()
                .with_min_quality(0.5)
                .with_cost_budget(1.0),
        ),
        Action::Depart(0),
        Action::Offer(FlowRequest::new(30e6, 0.8).unwrap().with_min_quality(0.7)), // reuses slot
        Action::Offer(FlowRequest::new(90e6, 0.8).unwrap().with_min_quality(0.95)), // rejected
        Action::Depart(1),
        Action::Link(0, LinkChange::SetBandwidth(50e6)),
        Action::Offer(FlowRequest::new(10e6, 0.9).unwrap().with_transmissions(3)),
        Action::Link(2, LinkChange::Fail),
        Action::Link(2, LinkChange::Recover),
        Action::Offer(FlowRequest::new(12e6, 0.7).unwrap().with_min_quality(0.4)),
    ]
}

#[test]
fn churn_script_agrees_across_all_configurations() {
    let script = churn_script();
    let baseline = replay(config(false, Backend::Revised, true), &script);
    for (name, cfg) in [
        ("incremental+sparse", config(true, Backend::Sparse, true)),
        (
            "incremental+sparse/cold",
            config(true, Backend::Sparse, false),
        ),
        ("incremental+revised", config(true, Backend::Revised, true)),
        ("rebuild+sparse", config(false, Backend::Sparse, true)),
    ] {
        let other = replay(cfg, &script);
        assert_replays_agree(&script, baseline.clone(), other, name);
    }
    // The dense tableau does not canonicalize across alternate optima —
    // on the (massively degenerate) joint LP it may report a different
    // optimal vertex — so it is compared on the backend-independent
    // quantities only: admission outcomes and each flow's quality (its
    // floors and the shared objective pin these at the optimum).
    let dense = replay(config(false, Backend::DenseTableau, true), &script);
    assert_eq!(baseline.0, dense.0, "dense: admission outcomes");
    assert!(
        (baseline.2 - dense.2).abs() <= 1e-6,
        "dense: aggregate quality {} vs {}",
        baseline.2,
        dense.2
    );
}

#[test]
fn fresh_population_is_bitwise_identical_across_assembly_paths() {
    // Without churn the incremental assembly builds the very same
    // Problem the rebuild path does, so with the same backend the final
    // joint solve — and every decomposed plan — matches bit for bit.
    let script: Vec<Action> = vec![
        Action::Offer(FlowRequest::new(30e6, 0.8).unwrap().with_min_quality(0.7)),
        Action::Offer(FlowRequest::new(20e6, 0.6).unwrap()),
        Action::Offer(
            FlowRequest::new(15e6, 1.0)
                .unwrap()
                .with_min_quality(0.5)
                .with_cost_budget(1.0),
        ),
    ];
    for backend in [Backend::Revised, Backend::Sparse, Backend::DenseTableau] {
        let incremental = replay(config(true, backend, false), &script);
        let rebuild = replay(config(false, backend, false), &script);
        assert_eq!(incremental.0, rebuild.0, "{backend:?}: outcomes");
        for ((ida, xa, qa, ca, sa), (idb, xb, qb, cb, sb)) in incremental.1.iter().zip(&rebuild.1) {
            assert_eq!(ida, idb);
            assert_eq!(xa, xb, "{backend:?}: flow#{ida} x");
            assert_eq!(qa, qb, "{backend:?}: flow#{ida} quality");
            assert_eq!(ca, cb, "{backend:?}: flow#{ida} cost");
            assert_eq!(sa, sb, "{backend:?}: flow#{ida} send rates");
        }
    }
}

fn arb_request() -> impl Strategy<Value = FlowRequest> {
    (
        5.0f64..60.0, // rate Mbps
        0.3f64..1.5,  // lifetime s
        0.0f64..0.95, // floor
        proptest::prelude::any::<bool>(),
        1usize..3, // transmissions
    )
        .prop_map(|(rate, delta, floor, budgeted, m)| {
            let mut r = FlowRequest::new(rate * 1e6, delta)
                .expect("valid")
                .with_transmissions(m);
            if floor > 0.05 {
                r = r.with_min_quality(floor.min(0.9));
            }
            if budgeted {
                r = r.with_cost_budget(2.0);
            }
            r
        })
}

fn arb_action() -> impl Strategy<Value = Action> {
    (
        proptest::prelude::any::<u64>(),
        arb_request(),
        0usize..8,
        0usize..3,
        40.0f64..90.0,
    )
        .prop_map(|(tag, req, k, path, bw)| match tag % 7 {
            0..=3 => Action::Offer(req),
            4 | 5 => Action::Depart(k),
            _ => Action::Link(path, LinkChange::SetBandwidth(bw * 1e6)),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary churn sequences (offers with random floors/budgets/
    /// widths, departures, bandwidth changes): the default incremental+
    /// sparse pipeline — warm *and* cold — agrees with the rebuild+
    /// revised baseline on every admission outcome and every plan.
    #[test]
    fn random_churn_sequences_agree(script in proptest::collection::vec(arb_action(), 1..14)) {
        let baseline = replay(config(false, Backend::Revised, true), &script);
        let warm = replay(config(true, Backend::Sparse, true), &script);
        let cold = replay(config(true, Backend::Sparse, false), &script);
        assert_replays_agree(&script, baseline.clone(), warm.clone(), "incremental+sparse warm");
        assert_replays_agree(&script, baseline, cold.clone(), "incremental+sparse cold");
        // Warm vs cold within the sparse incremental path: bitwise.
        prop_assert_eq!(warm.0, cold.0);
        for ((ida, xa, qa, ca, sa), (idb, xb, qb, cb, sb)) in warm.1.iter().zip(&cold.1) {
            prop_assert_eq!(ida, idb);
            prop_assert_eq!(xa, xb, "flow#{} warm != cold", ida);
            prop_assert_eq!(qa, qb);
            prop_assert_eq!(ca, cb);
            prop_assert_eq!(sa, sb);
        }
    }
}
