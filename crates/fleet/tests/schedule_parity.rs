//! Time-expanded scheduling contracts:
//!
//! 1. **Single-slot degeneracy, bit for bit**: on a one-slot horizon
//!    every window is `SlotWindow::instant(0)`, the slotted joint LP is
//!    op-for-op the instant joint LP (`λ·L ≡ λ`, `1/L ≡ 1` exactly in
//!    IEEE), so [`SchedulePlanner::offer`] must reproduce
//!    [`FleetPlanner::offer`] **bitwise** — verdicts, predicted
//!    qualities, decomposed plans — across admission *and* churn.
//! 2. **`horizon = 1` replay regression**: a trace replayed through a
//!    one-slot grid wide enough to hold it pins the pre-slotted
//!    behavior — the same decisions [`FleetPlanner::replay`] makes.
//! 3. **Reservation certification**: a refused-now flow holds a later
//!    window that really certifies (meets its floor) once the horizon
//!    advances to it.
//! 4. **Advance ≡ fresh rebuild** (proptest): advancing the grid under
//!    tombstoned expired slots and re-solving equals a fresh build of
//!    the truncated horizon to 1e-9 on the joint objective.

use dmc_core::ScenarioPath;
use dmc_fleet::{
    AdmissionDecision, FleetConfig, FleetPlanner, FleetTrace, FlowId, FlowRequest, SchedulePlanner,
    ScheduleRequest, SlotWindow, TimeGrid,
};
use proptest::prelude::*;

const TOL: f64 = 1e-9;

fn shared_paths() -> Vec<ScenarioPath> {
    vec![
        ScenarioPath::constant(80e6, 0.450, 0.2).expect("valid path"),
        ScenarioPath::constant(20e6, 0.150, 0.0).expect("valid path"),
    ]
}

fn instant_fleet() -> FleetPlanner {
    FleetPlanner::new(shared_paths(), FleetConfig::default()).expect("valid fleet")
}

fn single_slot_fleet(slot_width: f64) -> SchedulePlanner {
    SchedulePlanner::new(
        shared_paths(),
        TimeGrid::new(slot_width, 1).expect("valid grid"),
        FleetConfig::default(),
    )
    .expect("valid fleet")
}

/// A mixed script: floor-free, floored, budgeted, and one hopeless flow.
fn script() -> Vec<FlowRequest> {
    vec![
        FlowRequest::new(30e6, 0.8)
            .expect("valid")
            .with_min_quality(0.8),
        FlowRequest::new(20e6, 0.6).expect("valid"),
        FlowRequest::new(15e6, 1.0)
            .expect("valid")
            .with_min_quality(0.5)
            .with_cost_budget(2.0),
        // Far beyond the 100 Mb/s aggregate with a floor: refused.
        FlowRequest::new(400e6, 0.5)
            .expect("valid")
            .with_min_quality(0.99),
        FlowRequest::new(10e6, 0.4)
            .expect("valid")
            .with_priority(3.0),
    ]
}

#[test]
fn single_slot_horizon_matches_the_instant_fleet_bit_for_bit() {
    let mut instant = instant_fleet();
    let mut slotted = single_slot_fleet(1.0);
    let mut admitted: Vec<(FlowId, FlowId)> = Vec::new();

    for (i, request) in script().into_iter().enumerate() {
        let a = instant.offer(request.clone()).expect("instant offer runs");
        let b = slotted
            .offer(ScheduleRequest::new(request, SlotWindow::instant(0)))
            .expect("slotted offer runs");
        match a {
            AdmissionDecision::Admitted {
                id,
                predicted_quality,
            } => {
                assert!(b.is_scheduled(), "flow {i}: slotted disagreed: {b:?}");
                assert_eq!(
                    b.predicted_quality(),
                    Some(predicted_quality),
                    "flow {i}: predicted quality must agree bitwise"
                );
                admitted.push((id, b.id()));
            }
            AdmissionDecision::Rejected { .. } => {
                assert!(
                    !b.is_admitted(),
                    "flow {i}: a one-slot horizon has no later window to reserve: {b:?}"
                );
            }
        }
    }
    assert_eq!(instant.num_flows(), slotted.num_flows());
    assert_plans_bitwise(&instant, &slotted, &admitted, "after admission");
    // Utilization: the slotted fleet reports one row per slot.
    let slot0 = &slotted.utilization()[0];
    for (k, (a, b)) in instant.utilization().iter().zip(slot0).enumerate() {
        assert!((a - b).abs() <= TOL, "path {k}: utilization {a} vs {b}");
    }

    // Churn: depart the middle admitted flow from both and re-compare.
    let (ia, sa) = admitted.remove(1);
    instant.depart(ia).expect("instant depart runs");
    slotted.depart(sa).expect("slotted depart runs");
    assert_plans_bitwise(&instant, &slotted, &admitted, "after churn");
    assert_eq!(
        instant.aggregate_quality(),
        slotted.aggregate_quality(),
        "aggregate quality must agree bitwise after churn"
    );
}

fn assert_plans_bitwise(
    instant: &FleetPlanner,
    slotted: &SchedulePlanner,
    pairs: &[(FlowId, FlowId)],
    ctx: &str,
) {
    for &(ia, sa) in pairs {
        let a = instant.plan_of(ia).expect("instant plan");
        let b = slotted.plan_of(sa).expect("slotted plan");
        assert_eq!(a.strategy().x(), b.strategy().x(), "{ctx}: x vector");
        assert_eq!(a.quality(), b.quality(), "{ctx}: quality");
        assert_eq!(a.cost_rate(), b.cost_rate(), "{ctx}: cost rate");
        assert_eq!(a.send_rates(), b.send_rates(), "{ctx}: send rates");
    }
}

#[test]
fn one_slot_replay_pins_the_instant_behavior() {
    let trace = FleetTrace::new()
        .arrive(
            0.0,
            FlowRequest::new(40e6, 0.8)
                .expect("valid")
                .with_min_quality(0.8),
        )
        .expect("valid event")
        .arrive(1.0, FlowRequest::new(30e6, 0.6).expect("valid"))
        .expect("valid event")
        .arrive(2.0, FlowRequest::new(20e6, 1.0).expect("valid"))
        .expect("valid event");

    let mut instant = instant_fleet();
    let a = instant.replay(&trace).expect("instant replay runs");
    // One slot wide enough for the whole trace: every event maps to
    // slot 0, no advance ever fires, every window is instant — the
    // pre-slotted code path.
    let mut slotted = single_slot_fleet(10.0);
    let b = slotted.replay(&trace).expect("slotted replay runs");

    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(&b).enumerate() {
        assert_eq!(y.slot, 0, "event {i} lands in the single slot");
        assert!(y.advance.is_none(), "event {i} never advances");
        let inst = x.decision.as_ref().expect("arrival decision");
        let slot = y.decision.as_ref().expect("arrival decision");
        assert_eq!(
            inst.is_admitted(),
            slot.is_scheduled(),
            "event {i}: verdicts agree"
        );
        if let AdmissionDecision::Admitted {
            predicted_quality, ..
        } = inst
        {
            assert_eq!(
                slot.predicted_quality(),
                Some(*predicted_quality),
                "event {i}: quality agrees bitwise"
            );
        }
        assert_eq!(
            x.aggregate_quality, y.aggregate_quality,
            "event {i}: aggregate quality agrees bitwise"
        );
    }
}

#[test]
fn a_refused_now_flow_reserves_and_certifies_when_its_window_opens() {
    let mut fleet = SchedulePlanner::new(
        shared_paths(),
        TimeGrid::new(1.0, 6).expect("valid grid"),
        FleetConfig::default(),
    )
    .expect("valid fleet");

    // Congest slot 0: a floored incumbent eats most of the capacity now.
    let hog = fleet
        .offer(ScheduleRequest::new(
            FlowRequest::new(90e6, 0.8)
                .expect("valid")
                .with_min_quality(0.9),
            SlotWindow::instant(0),
        ))
        .expect("offer runs");
    assert!(hog.is_scheduled(), "the hog fits an empty fleet: {hog:?}");

    // The newcomer wants slot 0 too, with a floor the leftovers can't
    // meet — it must get the earliest later window instead (t+Δ, Δ ≥ 1).
    let newcomer = fleet
        .offer(ScheduleRequest::new(
            FlowRequest::new(60e6, 0.8)
                .expect("valid")
                .with_min_quality(0.9),
            SlotWindow::instant(0),
        ))
        .expect("offer runs");
    assert!(
        newcomer.is_reserved(),
        "slot 0 is full but slot 1 is free: {newcomer:?}"
    );
    assert!(newcomer.opens_in() >= 1);
    let granted = newcomer.window().expect("reserved window");
    assert!(granted.start() >= 1);
    assert!(
        newcomer.predicted_quality().expect("reserved quality") >= 0.9 - TOL,
        "a reservation certifies its floor at grant time"
    );

    // Advance to the reserved window: the hog completes, the newcomer's
    // reservation opens and still certifies.
    let advance = fleet.advance_to(granted.start()).expect("advance runs");
    assert_eq!(advance.completed, vec![hog.id()]);
    assert!(advance.dropped.is_empty(), "the reservation survives");
    assert_eq!(fleet.window_of(newcomer.id()), Some(granted));
    let plan = fleet.plan_of(newcomer.id()).expect("open reservation plan");
    assert!(
        plan.quality() >= 0.9 - TOL,
        "the opened window still meets the floor: {}",
        plan.quality()
    );
}

// ---------------------------------------------------------------------
// 4. Advance ≡ fresh rebuild (proptest)
// ---------------------------------------------------------------------

/// One windowed, floor-free arrival. Windows never straddle slot 2, so
/// advancing to 2 only completes or keeps flows (no truncation path —
/// that renormalizes demand and is exercised by the unit tests).
#[derive(Debug, Clone)]
struct Arrival {
    rate_mbps: f64,
    lifetime: f64,
    early: bool,
    start_off: u64,
    len: u64,
    buffer: f64,
}

impl Arrival {
    fn request(&self) -> ScheduleRequest {
        let flow = FlowRequest::new(self.rate_mbps * 1e6, self.lifetime).expect("valid request");
        let window = if self.early {
            let start = self.start_off.min(1);
            SlotWindow::new(start, (start + self.len).min(2)).expect("valid window")
        } else {
            let start = 2 + self.start_off.min(2);
            SlotWindow::new(start, (start + self.len).min(6)).expect("valid window")
        };
        let mut req = ScheduleRequest::new(flow, window);
        if self.buffer > 0.0 {
            req = req.with_buffer(self.buffer);
        }
        req
    }
}

fn arb_arrival() -> impl Strategy<Value = Arrival> {
    (
        2.0f64..20.0,
        0.3f64..1.2,
        any::<bool>(),
        0u64..3,
        1u64..3,
        any::<bool>(),
    )
        .prop_map(
            |(rate_mbps, lifetime, early, start_off, len, buffered)| Arrival {
                rate_mbps,
                lifetime,
                early,
                start_off,
                len,
                buffer: if buffered { 0.5 } else { 0.0 },
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn advancing_equals_a_fresh_build_of_the_truncated_horizon(
        arrivals in proptest::collection::vec(arb_arrival(), 1..8)
    ) {
        let grid = TimeGrid::new(1.0, 6).expect("valid grid");
        let mut live = SchedulePlanner::new(shared_paths(), grid, FleetConfig::default())
            .expect("valid fleet");
        let mut offered = Vec::new();
        for a in &arrivals {
            let req = a.request();
            let d = live.offer(req.clone()).expect("offer runs");
            // Floor-free + blackhole: always scheduled as asked.
            prop_assert!(d.is_scheduled(), "{d:?}");
            offered.push((d.id(), req));
        }

        // Advance under tombstones: early windows complete, late ones
        // survive untouched (no window straddles slot 2).
        let advance = live.advance_to(2).expect("advance runs");
        prop_assert!(advance.truncated.is_empty());
        prop_assert!(advance.rescheduled.is_empty());
        prop_assert!(advance.dropped.is_empty());

        // Fresh build of the truncated horizon: a new planner advanced
        // while empty, then the survivors re-offered in id order.
        let mut fresh = SchedulePlanner::new(shared_paths(), grid, FleetConfig::default())
            .expect("valid fleet");
        fresh.advance_to(2).expect("empty advance runs");
        for (id, req) in &offered {
            if live.window_of(*id).is_some() {
                let d = fresh.offer(req.clone()).expect("fresh offer runs");
                prop_assert!(d.is_scheduled(), "{d:?}");
            }
        }

        prop_assert_eq!(live.num_flows(), fresh.num_flows());
        let (a, b) = (live.objective_value(), fresh.objective_value());
        prop_assert!(
            (a - b).abs() <= TOL * a.abs().max(1.0),
            "advanced {} vs fresh {}", a, b
        );
        let (qa, qb) = (live.aggregate_quality(), fresh.aggregate_quality());
        prop_assert!((qa - qb).abs() <= TOL, "quality {} vs {}", qa, qb);
    }
}
