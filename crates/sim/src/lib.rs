//! Deterministic discrete-event network simulator for deadline-aware
//! multipath experiments.
//!
//! The paper evaluates its model with ns-3 (§VII-A): two nodes joined by
//! point-to-point channels, one per path, each configured with the three
//! knobs the model cares about — **bandwidth**, **delay**, **loss**. This
//! crate is that substrate in pure Rust:
//!
//! * [`TwoHostSim`] — a client and a server joined by `n` bidirectional
//!   path pairs; endpoints implement [`Agent`];
//! * [`Link`] — serialization (`bits/bandwidth`), drop-tail queueing
//!   (bounded bytes; overflow drops, queueing delay emerges naturally —
//!   the +50 ms effect the paper measures in Exp. 1), Bernoulli or
//!   Gilbert–Elliott bursty erasure ([`LossModel`]), and constant or
//!   random ([`dmc_stats::Delay`]) propagation with per-path FIFO
//!   ordering;
//! * [`scenario`] — scheduled link dynamics ([`Dynamics`]): mid-transfer
//!   path failure/recovery, piecewise time-varying bandwidth, and
//!   loss-process changes;
//! * [`FaultPlan`] — seeded chaos: payload corruption, frame
//!   duplication, bounded reordering, link flapping and correlated
//!   multi-link fault domains, bit-identical in replay
//!   ([`TwoHostSim::apply_faults`]);
//! * [`EventQueue`] — integer-nanosecond virtual time with FIFO
//!   tie-breaking, so runs are bit-for-bit reproducible for a given seed.
//!
//! # Example: measuring a path RTT
//!
//! ```
//! use bytes::Bytes;
//! use dmc_sim::{Agent, LinkConfig, Packet, SimApi, SimTime, TwoHostSim};
//! use dmc_stats::ConstantDelay;
//! use std::sync::Arc;
//!
//! struct Ping(Option<SimTime>);
//! impl Agent for Ping {
//!     fn on_start(&mut self, api: &mut SimApi<'_>) {
//!         api.send(0, Packet::new(1000, Bytes::new()));
//!     }
//!     fn on_packet(&mut self, _path: usize, _p: Packet, api: &mut SimApi<'_>) {
//!         self.0 = Some(api.now());
//!     }
//!     fn on_timer(&mut self, _key: u64, _api: &mut SimApi<'_>) {}
//! }
//! struct Echo;
//! impl Agent for Echo {
//!     fn on_start(&mut self, _api: &mut SimApi<'_>) {}
//!     fn on_packet(&mut self, path: usize, p: Packet, api: &mut SimApi<'_>) {
//!         api.send(path, p);
//!     }
//!     fn on_timer(&mut self, _key: u64, _api: &mut SimApi<'_>) {}
//! }
//!
//! let link = LinkConfig {
//!     bandwidth_bps: 1e6,
//!     propagation: Arc::new(ConstantDelay::new(0.1)),
//!     loss: 0.0.into(),
//!     queue_capacity_bytes: 1 << 20,
//! };
//! let mut sim = TwoHostSim::new(
//!     vec![link.clone()], vec![link], Ping(None), Echo, 0,
//! ).unwrap();
//! sim.run_to_completion();
//! assert_eq!(sim.client().0.unwrap().as_nanos(), 216_000_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod fault;
mod link;
mod packet;
pub mod scenario;
mod sim;
mod time;

pub use event::EventQueue;
pub use fault::{FaultPlan, FaultStats};
pub use link::{GilbertElliott, Link, LinkChange, LinkConfig, LinkStats, LossModel, SendOutcome};
pub use packet::Packet;
pub use scenario::{Dynamics, LinkEvent};
pub use sim::{Agent, Dir, HostId, SimApi, TwoHostSim};
pub use time::{SimDuration, SimTime};
