//! The scenario library: scheduled link dynamics the Monte-Carlo engine
//! sweeps — path failure/recovery, piecewise time-varying bandwidth, and
//! loss-process changes (e.g. a link turning bursty mid-transfer).
//!
//! The paper's evaluation keeps link characteristics static for a run;
//! related work on deadline scheduling (Tsanikidis & Ghaderi; Ahani et
//! al.) evaluates under correlated channels and capacity changes, which
//! these dynamics express at the simulator level. A [`Dynamics`] is a
//! validated, time-sorted schedule of [`LinkChange`]s; feed it to
//! [`TwoHostSim::apply_dynamics`](crate::TwoHostSim::apply_dynamics)
//! before running.
//!
//! ```
//! use dmc_sim::{Dir, Dynamics, GilbertElliott, LossModel};
//!
//! # fn main() -> Result<(), String> {
//! // Path 0 dies 10 s in and comes back at 25 s; meanwhile path 1's
//! // forward bandwidth halves at 15 s and its loss turns bursty.
//! let dynamics = Dynamics::new()
//!     .path_failure(0, 10.0, 25.0)?
//!     .bandwidth_step(Dir::Forward, 1, 15.0, 10e6)?
//!     .loss_change(
//!         Dir::Forward,
//!         1,
//!         15.0,
//!         LossModel::GilbertElliott(GilbertElliott::classic(0.02, 0.2)?),
//!     )?;
//! assert_eq!(dynamics.events().len(), 6); // failure+recovery are per-direction
//! assert!(!dynamics.is_empty());
//! # Ok(())
//! # }
//! ```

use crate::link::{LinkChange, LossModel};
use crate::sim::Dir;
use crate::time::SimTime;

/// One scheduled change to one directed link.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkEvent {
    /// When the change takes effect (virtual time).
    pub at: SimTime,
    /// Which direction of the path pair.
    pub dir: Dir,
    /// Path index (0-based).
    pub path: usize,
    /// The change itself.
    pub change: LinkChange,
}

/// A validated schedule of link dynamics, kept sorted by time.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Dynamics {
    events: Vec<LinkEvent>,
}

impl Dynamics {
    /// An empty schedule (static links — the paper's setup).
    pub fn new() -> Self {
        Dynamics::default()
    }

    /// Whether the schedule has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The events, sorted by time (FIFO within ties).
    pub fn events(&self) -> &[LinkEvent] {
        &self.events
    }

    fn push(mut self, at: SimTime, dir: Dir, path: usize, change: LinkChange) -> Self {
        let idx = self.events.partition_point(|e| e.at <= at);
        self.events.insert(
            idx,
            LinkEvent {
                at,
                dir,
                path,
                change,
            },
        );
        self
    }

    /// Adds one raw event at `at_s` seconds.
    ///
    /// # Errors
    ///
    /// Rejects non-finite/negative times and invalid change parameters.
    pub fn event(
        self,
        dir: Dir,
        path: usize,
        at_s: f64,
        change: LinkChange,
    ) -> Result<Self, String> {
        if !(at_s >= 0.0) || !at_s.is_finite() {
            return Err(format!("event time must be finite and ≥ 0, got {at_s}"));
        }
        match &change {
            LinkChange::SetBandwidth(bps) => {
                if !(*bps > 0.0) || !bps.is_finite() {
                    return Err(format!("bandwidth must be finite and > 0, got {bps}"));
                }
            }
            LinkChange::SetLoss(model) => model.validate()?,
            LinkChange::Fail | LinkChange::Recover => {}
        }
        Ok(self.push(SimTime::from_secs_f64(at_s), dir, path, change))
    }

    /// Fails *both directions* of path `path` at `down_at_s` and recovers
    /// them at `up_at_s` (seconds). This is the paper-style "a path
    /// disappears mid-transfer" scenario.
    ///
    /// # Errors
    ///
    /// Rejects invalid times or `up_at_s ≤ down_at_s`.
    pub fn path_failure(self, path: usize, down_at_s: f64, up_at_s: f64) -> Result<Self, String> {
        if !(up_at_s > down_at_s) {
            return Err(format!(
                "recovery ({up_at_s}s) must come after failure ({down_at_s}s)"
            ));
        }
        self.event(Dir::Forward, path, down_at_s, LinkChange::Fail)?
            .event(Dir::Backward, path, down_at_s, LinkChange::Fail)?
            .event(Dir::Forward, path, up_at_s, LinkChange::Recover)?
            .event(Dir::Backward, path, up_at_s, LinkChange::Recover)
    }

    /// Permanently fails both directions of path `path` at `down_at_s`.
    ///
    /// # Errors
    ///
    /// Rejects invalid times.
    pub fn path_failure_permanent(self, path: usize, down_at_s: f64) -> Result<Self, String> {
        self.event(Dir::Forward, path, down_at_s, LinkChange::Fail)?
            .event(Dir::Backward, path, down_at_s, LinkChange::Fail)
    }

    /// Sets the directed link's bandwidth to `bps` at `at_s` seconds.
    ///
    /// # Errors
    ///
    /// Rejects invalid times or non-positive bandwidth.
    pub fn bandwidth_step(
        self,
        dir: Dir,
        path: usize,
        at_s: f64,
        bps: f64,
    ) -> Result<Self, String> {
        self.event(dir, path, at_s, LinkChange::SetBandwidth(bps))
    }

    /// A piecewise-constant bandwidth profile: each `(at_s, bps)` point
    /// switches the directed link to `bps` at `at_s` seconds.
    ///
    /// # Errors
    ///
    /// Rejects invalid times or non-positive bandwidths.
    pub fn bandwidth_profile(
        mut self,
        dir: Dir,
        path: usize,
        points: &[(f64, f64)],
    ) -> Result<Self, String> {
        for &(at_s, bps) in points {
            self = self.bandwidth_step(dir, path, at_s, bps)?;
        }
        Ok(self)
    }

    /// Switches the directed link's erasure process at `at_s` seconds.
    ///
    /// # Errors
    ///
    /// Rejects invalid times or invalid loss parameters.
    pub fn loss_change(
        self,
        dir: Dir,
        path: usize,
        at_s: f64,
        model: LossModel,
    ) -> Result<Self, String> {
        self.event(dir, path, at_s, LinkChange::SetLoss(model))
    }

    /// Largest path index referenced (for topology validation).
    pub fn max_path(&self) -> Option<usize> {
        self.events.iter().map(|e| e.path).max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_stay_time_sorted() {
        let d = Dynamics::new()
            .bandwidth_step(Dir::Forward, 0, 5.0, 1e6)
            .unwrap()
            .path_failure(1, 1.0, 3.0)
            .unwrap()
            .bandwidth_step(Dir::Backward, 0, 2.0, 2e6)
            .unwrap();
        let times: Vec<u64> = d.events().iter().map(|e| e.at.as_nanos()).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted);
        assert_eq!(d.max_path(), Some(1));
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(Dynamics::new().path_failure(0, 5.0, 5.0).is_err());
        assert!(Dynamics::new().path_failure(0, 5.0, 2.0).is_err());
        assert!(Dynamics::new()
            .bandwidth_step(Dir::Forward, 0, -1.0, 1e6)
            .is_err());
        assert!(Dynamics::new()
            .bandwidth_step(Dir::Forward, 0, 1.0, 0.0)
            .is_err());
        assert!(Dynamics::new()
            .event(Dir::Forward, 0, f64::NAN, LinkChange::Fail)
            .is_err());
        assert!(Dynamics::new()
            .loss_change(Dir::Forward, 0, 1.0, LossModel::Bernoulli(2.0))
            .is_err());
    }

    #[test]
    fn profile_expands_to_steps() {
        let d = Dynamics::new()
            .bandwidth_profile(Dir::Forward, 0, &[(1.0, 5e6), (2.0, 2e6), (3.0, 8e6)])
            .unwrap();
        assert_eq!(d.events().len(), 3);
        assert!(matches!(
            d.events()[1].change,
            LinkChange::SetBandwidth(b) if b == 2e6
        ));
    }
}
