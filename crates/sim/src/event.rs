//! The event queue: a time-ordered heap with FIFO tie-breaking.

use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A pending event of type `E`.
#[derive(Debug)]
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event.
        // Ties break by insertion order (lower seq first) so simultaneous
        // events run FIFO — deterministic across runs.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event queue.
///
/// Popping advances the virtual clock; scheduling in the past is a
/// programming error and panics (events at exactly `now` are fine and run
/// after the current event).
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current virtual time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current time.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "scheduling into the past: {at} < now {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled {
            time: at,
            seq,
            event,
        });
    }

    /// Schedules `event` after `delay` from now.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Pops the earliest event and advances the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let s = self.heap.pop()?;
        debug_assert!(s.time >= self.now, "clock went backwards");
        self.now = s.time;
        Some((s.time, s.event))
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), "c");
        q.schedule(SimTime::from_nanos(10), "a");
        q.schedule(SimTime::from_nanos(20), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(42), ());
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(42)));
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(42));
        assert!(q.is_empty());
    }

    #[test]
    fn schedule_after_uses_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), "first");
        q.pop();
        q.schedule_after(SimDuration::from_nanos(5), "second");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_nanos(15));
    }

    #[test]
    fn scheduling_at_now_is_allowed() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), 1);
        q.pop();
        q.schedule(q.now(), 2);
        assert_eq!(q.pop().unwrap().1, 2);
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_in_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), 1);
        q.pop();
        q.schedule(SimTime::from_nanos(5), 2);
    }

    #[test]
    fn len_tracks_pending() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert_eq!(q.len(), 0);
        q.schedule(SimTime::from_nanos(1), ());
        q.schedule(SimTime::from_nanos(2), ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }
}
