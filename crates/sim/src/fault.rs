//! Deterministic fault injection: the [`FaultPlan`].
//!
//! A `FaultPlan` bundles two layers of adversity and one seed:
//!
//! * **link-level faults** — flapping links and *correlated* fault
//!   domains (one event takes several paths down at the same instant) —
//!   expressed as an ordinary [`Dynamics`] schedule, so they compose
//!   with any script the caller already has;
//! * **packet-level faults** — payload corruption (a seeded bit flip),
//!   frame duplication, and bounded reordering (an extra in-window
//!   delivery delay) — applied by the simulator as packets are
//!   committed to a link.
//!
//! All randomness is drawn from per-direction SplitMix64 streams derived
//! from the plan seed with the same `mix_seed` discipline the links use
//! (links take salts 1/2; fault streams take salts 3/4), so a chaos run
//! is a pure function of `(topology, agents, plan)`: replaying the same
//! seed reproduces every corrupted byte, duplicate and reorder delay
//! bit-for-bit, regardless of `DMC_THREADS` or host.
//!
//! Install with [`crate::TwoHostSim::apply_faults`].

use crate::packet::Packet;
use crate::scenario::Dynamics;
use crate::sim::mix_seed;
use crate::time::{SimDuration, SimTime};

/// Salt for the forward-direction packet-fault stream (links use 1/2).
pub(crate) const FAULT_SALT_FORWARD: u64 = 3;
/// Salt for the backward-direction packet-fault stream.
pub(crate) const FAULT_SALT_BACKWARD: u64 = 4;

/// A seeded, declarative fault-injection schedule. See the module docs.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    corrupt_prob: f64,
    duplicate_prob: f64,
    reorder_prob: f64,
    reorder_window: SimDuration,
    dynamics: Dynamics,
}

impl FaultPlan {
    /// A fault-free plan around `seed`; chain builders to add faults.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            corrupt_prob: 0.0,
            duplicate_prob: 0.0,
            reorder_prob: 0.0,
            reorder_window: SimDuration::ZERO,
            dynamics: Dynamics::new(),
        }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Each delivered frame independently has its payload corrupted (one
    /// seeded bit flip) with probability `prob`.
    ///
    /// # Errors
    ///
    /// Rejects probabilities outside `[0, 1]` or non-finite.
    pub fn with_corruption(mut self, prob: f64) -> Result<Self, String> {
        self.corrupt_prob = checked_prob("corruption", prob)?;
        Ok(self)
    }

    /// Each delivered frame is independently duplicated with probability
    /// `prob`; the copy arrives within the reordering window.
    ///
    /// # Errors
    ///
    /// Rejects probabilities outside `[0, 1]` or non-finite.
    pub fn with_duplication(mut self, prob: f64) -> Result<Self, String> {
        self.duplicate_prob = checked_prob("duplication", prob)?;
        Ok(self)
    }

    /// Each delivered frame is independently held back by an extra delay
    /// drawn uniformly from `[0, window]` with probability `prob` —
    /// bounded reordering: a frame can fall behind later traffic, but
    /// never by more than `window`.
    ///
    /// # Errors
    ///
    /// Rejects probabilities outside `[0, 1]` or non-finite.
    pub fn with_reordering(mut self, prob: f64, window: SimDuration) -> Result<Self, String> {
        self.reorder_prob = checked_prob("reordering", prob)?;
        self.reorder_window = window;
        Ok(self)
    }

    /// Link flapping: path `path` goes down at `first_down_s + k·period_s`
    /// for `downtime_s` each, for `k = 0..cycles` (both directions).
    ///
    /// # Errors
    ///
    /// Rejects `cycles == 0`, non-positive periods, and downtimes that
    /// are not shorter than the period (the link must come back up before
    /// the next flap).
    pub fn flap(
        mut self,
        path: usize,
        first_down_s: f64,
        period_s: f64,
        downtime_s: f64,
        cycles: usize,
    ) -> Result<Self, String> {
        if cycles == 0 {
            return Err("flap needs at least one cycle".into());
        }
        if !(period_s > 0.0) || !(downtime_s > 0.0) {
            return Err("flap period and downtime must be positive".into());
        }
        if downtime_s >= period_s {
            return Err(format!(
                "flap downtime {downtime_s}s must be shorter than the period {period_s}s"
            ));
        }
        for k in 0..cycles {
            let down = first_down_s + k as f64 * period_s;
            self.dynamics = self.dynamics.path_failure(path, down, down + downtime_s)?;
        }
        Ok(self)
    }

    /// A correlated fault domain: every path in `paths` fails at
    /// `down_at_s` and recovers at `up_at_s`, both directions, at
    /// identical instants — one shared-risk group taking several paths
    /// down at once.
    ///
    /// # Errors
    ///
    /// Rejects an empty domain or an up time not after the down time.
    pub fn fault_domain(
        mut self,
        paths: &[usize],
        down_at_s: f64,
        up_at_s: f64,
    ) -> Result<Self, String> {
        if paths.is_empty() {
            return Err("fault domain names no paths".into());
        }
        for &p in paths {
            self.dynamics = self.dynamics.path_failure(p, down_at_s, up_at_s)?;
        }
        Ok(self)
    }

    /// The link-level schedule (flaps + fault domains) as an ordinary
    /// [`Dynamics`], for composing with caller-supplied scripts.
    pub fn dynamics(&self) -> &Dynamics {
        &self.dynamics
    }

    /// Whether any packet-level fault has a nonzero probability.
    pub fn has_packet_faults(&self) -> bool {
        self.corrupt_prob > 0.0 || self.duplicate_prob > 0.0 || self.reorder_prob > 0.0
    }

    pub(crate) fn stream(&self, salt: u64) -> FaultStream {
        FaultStream {
            corrupt_prob: self.corrupt_prob,
            duplicate_prob: self.duplicate_prob,
            reorder_prob: self.reorder_prob,
            reorder_window: self.reorder_window,
            rng: SplitMix64(mix_seed(self.seed, salt, 0)),
            stats: FaultStats::default(),
        }
    }
}

fn checked_prob(what: &str, prob: f64) -> Result<f64, String> {
    if !prob.is_finite() || !(0.0..=1.0).contains(&prob) {
        return Err(format!("{what} probability {prob} outside [0, 1]"));
    }
    Ok(prob)
}

/// Counters of packet-level faults actually injected on one direction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Frames whose payload got a bit flipped.
    pub corrupted: u64,
    /// Frames delivered twice.
    pub duplicated: u64,
    /// Frames held back by an in-window reordering delay.
    pub reordered: u64,
}

/// How one packet should be delivered after fault injection.
pub(crate) struct Injection {
    /// When the (possibly corrupted) original arrives.
    pub deliver_at: SimTime,
    /// When the duplicate copy arrives, if one was injected.
    pub duplicate_at: Option<SimTime>,
}

/// Per-direction packet-fault state: the probabilities plus a dedicated
/// SplitMix64 stream consumed in event order (the simulator is
/// single-threaded, so "event order" is deterministic by construction).
#[derive(Debug)]
pub(crate) struct FaultStream {
    corrupt_prob: f64,
    duplicate_prob: f64,
    reorder_prob: f64,
    reorder_window: SimDuration,
    rng: SplitMix64,
    stats: FaultStats,
}

impl FaultStream {
    /// Decides this packet's fate: possibly corrupts its payload in
    /// place, and returns when the original (and any duplicate) should
    /// arrive. Draw order is fixed (corrupt, reorder, duplicate) so the
    /// stream stays aligned across runs.
    pub(crate) fn inject(&mut self, arrival: SimTime, packet: &mut Packet) -> Injection {
        if self.corrupt_prob > 0.0
            && !packet.payload().is_empty()
            && self.rng.unit() < self.corrupt_prob
        {
            let len = packet.payload().len() as u64;
            let idx = (self.rng.next_u64() % len) as usize;
            let bit = (self.rng.next_u64() % 8) as u32;
            let mut bytes = packet.payload().to_vec();
            bytes[idx] ^= 1u8 << bit;
            packet.replace_payload(bytes.into());
            self.stats.corrupted += 1;
        }
        let mut deliver_at = arrival;
        if self.reorder_prob > 0.0 && self.rng.unit() < self.reorder_prob {
            deliver_at += self.window_jitter();
            self.stats.reordered += 1;
        }
        let duplicate_at = if self.duplicate_prob > 0.0 && self.rng.unit() < self.duplicate_prob {
            self.stats.duplicated += 1;
            Some(arrival + self.window_jitter())
        } else {
            None
        };
        Injection {
            deliver_at,
            duplicate_at,
        }
    }

    fn window_jitter(&mut self) -> SimDuration {
        let w = self.reorder_window.as_nanos();
        if w == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_nanos(self.rng.next_u64() % (w + 1))
    }

    pub(crate) fn stats(&self) -> FaultStats {
        self.stats
    }
}

/// SplitMix64: the same generator the Monte-Carlo per-trial seed streams
/// use, here consumed as a sequence.
#[derive(Debug, Clone)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` from the top 53 bits.
    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_validate() {
        assert!(FaultPlan::new(1).with_corruption(1.5).is_err());
        assert!(FaultPlan::new(1).with_duplication(-0.1).is_err());
        assert!(FaultPlan::new(1)
            .with_reordering(f64::NAN, SimDuration::ZERO)
            .is_err());
        assert!(FaultPlan::new(1).flap(0, 1.0, 0.5, 0.5, 3).is_err());
        assert!(FaultPlan::new(1).flap(0, 1.0, 1.0, 0.2, 0).is_err());
        assert!(FaultPlan::new(1).fault_domain(&[], 1.0, 2.0).is_err());
        assert!(FaultPlan::new(1).fault_domain(&[0, 1], 2.0, 1.0).is_err());
    }

    #[test]
    fn flap_and_domain_generate_sorted_dynamics() {
        let plan = FaultPlan::new(7)
            .flap(0, 1.0, 2.0, 0.5, 3)
            .unwrap()
            .fault_domain(&[1, 2], 0.5, 4.0)
            .unwrap();
        let events = plan.dynamics().events();
        // 3 flap cycles × 4 events + 2 domain paths × 4 events.
        assert_eq!(events.len(), 3 * 4 + 2 * 4);
        assert!(events.windows(2).all(|w| w[0].at <= w[1].at));
        assert_eq!(plan.dynamics().max_path(), Some(2));
        // The domain takes both its paths down at the identical instant.
        let down_at: Vec<_> = events
            .iter()
            .filter(|e| e.at == SimTime::from_secs_f64(0.5))
            .map(|e| e.path)
            .collect();
        assert_eq!(down_at.len(), 4, "2 paths × 2 directions");
        assert!(down_at.contains(&1) && down_at.contains(&2));
    }

    #[test]
    fn streams_are_reproducible_and_direction_independent() {
        let plan = FaultPlan::new(0xC0FFEE)
            .with_corruption(0.5)
            .unwrap()
            .with_duplication(0.5)
            .unwrap()
            .with_reordering(0.5, SimDuration::from_millis(5))
            .unwrap();
        let mut a = plan.stream(FAULT_SALT_FORWARD);
        let mut b = plan.stream(FAULT_SALT_FORWARD);
        let mut c = plan.stream(FAULT_SALT_BACKWARD);
        let mut diverged = false;
        for i in 0..200u64 {
            let t = SimTime::from_nanos(i * 1_000);
            let mut pa = Packet::new(64, vec![0u8; 32].into());
            let mut pb = Packet::new(64, vec![0u8; 32].into());
            let mut pc = Packet::new(64, vec![0u8; 32].into());
            let ia = a.inject(t, &mut pa);
            let ib = b.inject(t, &mut pb);
            let ic = c.inject(t, &mut pc);
            assert_eq!(ia.deliver_at, ib.deliver_at);
            assert_eq!(ia.duplicate_at, ib.duplicate_at);
            assert_eq!(pa, pb);
            if ia.deliver_at != ic.deliver_at || pa != pc {
                diverged = true;
            }
        }
        assert_eq!(a.stats(), b.stats());
        assert!(diverged, "forward and backward streams are independent");
        let s = a.stats();
        assert!(s.corrupted > 0 && s.duplicated > 0 && s.reordered > 0);
    }

    #[test]
    fn reordering_is_bounded_by_the_window() {
        let window = SimDuration::from_millis(3);
        let plan = FaultPlan::new(9).with_reordering(1.0, window).unwrap();
        let mut s = plan.stream(FAULT_SALT_FORWARD);
        for i in 0..500u64 {
            let t = SimTime::from_nanos(i);
            let mut p = Packet::new(8, vec![1u8].into());
            let inj = s.inject(t, &mut p);
            assert!(inj.deliver_at.since(t).as_nanos() <= window.as_nanos());
        }
        assert_eq!(s.stats().reordered, 500);
    }
}
