//! Unidirectional point-to-point links.
//!
//! A link reproduces the three knobs the paper's ns-3 setup exposes per
//! path — bandwidth, propagation delay, loss — plus the drop-tail queue
//! whose side effects (§VII Exp. 1 measured up to 50 ms queueing delay,
//! §IX-A discusses overflow loss) the evaluation depends on:
//!
//! * **Serialization**: a packet of `s` bits occupies the transmitter for
//!   `s / bandwidth` seconds; packets queue FIFO behind it.
//! * **Queue**: bounded in bytes; arrivals that would overflow are
//!   dropped (this is how over-driving a path manifests, Fig. 3 top).
//! * **Loss**: a per-packet erasure process ([`LossModel`]) — either
//!   independent Bernoulli (the paper's binary erasure channel at
//!   transport granularity) or a Gilbert–Elliott two-state chain for
//!   correlated/bursty loss.
//! * **Propagation**: constant or random ([`Delay`]), sampled per packet.
//!   Per-path FIFO ordering is enforced (`§VIII-D`: per-path reordering is
//!   "relatively unlikely"; a point-to-point wire cannot reorder), so a
//!   sampled arrival never precedes the previous packet's arrival.
//! * **Dynamics**: a link can be failed, recovered, or retuned
//!   mid-simulation via [`LinkChange`] (see the [`scenario`](crate::scenario)
//!   module for the schedule builder).

use crate::packet::Packet;
use crate::time::{SimDuration, SimTime};
use dmc_stats::Delay;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// The Gilbert–Elliott two-state loss chain: a *good* and a *bad* state,
/// each with its own erasure probability, with per-packet transition
/// probabilities between them. Models the correlated/bursty losses of
/// interference-limited wireless links, which i.i.d. Bernoulli erasure
/// cannot express.
///
/// ```
/// use dmc_sim::GilbertElliott;
///
/// // Bursts of mean length 4 covering 1/6 of packets.
/// let ge = GilbertElliott::classic(0.05, 0.25).unwrap();
/// assert!((ge.stationary_loss() - 1.0 / 6.0).abs() < 1e-12);
/// assert!((ge.mean_burst_length() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GilbertElliott {
    /// Per-packet probability of moving good → bad.
    pub p_good_to_bad: f64,
    /// Per-packet probability of moving bad → good.
    pub p_bad_to_good: f64,
    /// Erasure probability while in the good state.
    pub loss_good: f64,
    /// Erasure probability while in the bad state.
    pub loss_bad: f64,
}

impl GilbertElliott {
    /// Creates a Gilbert–Elliott model.
    ///
    /// # Errors
    ///
    /// Returns a message when a probability is outside `[0, 1]`, or both
    /// transition probabilities are zero (the chain would never mix and
    /// the stationary loss rate would be undefined).
    pub fn new(
        p_good_to_bad: f64,
        p_bad_to_good: f64,
        loss_good: f64,
        loss_bad: f64,
    ) -> Result<Self, String> {
        for (name, p) in [
            ("p_good_to_bad", p_good_to_bad),
            ("p_bad_to_good", p_bad_to_good),
            ("loss_good", loss_good),
            ("loss_bad", loss_bad),
        ] {
            if !(0.0..=1.0).contains(&p) || p.is_nan() {
                return Err(format!("{name} must be in [0, 1], got {p}"));
            }
        }
        // dmc-lint: allow(float-exact) degenerate-chain detection: both transition probabilities exactly zero means a frozen state, handled specially
        if p_good_to_bad == 0.0 && p_bad_to_good == 0.0 {
            return Err("at least one transition probability must be positive".into());
        }
        Ok(GilbertElliott {
            p_good_to_bad,
            p_bad_to_good,
            loss_good,
            loss_bad,
        })
    }

    /// The classic Gilbert channel: lossless good state, fully erasing
    /// bad state.
    ///
    /// # Errors
    ///
    /// Same conditions as [`GilbertElliott::new`].
    pub fn classic(p_good_to_bad: f64, p_bad_to_good: f64) -> Result<Self, String> {
        GilbertElliott::new(p_good_to_bad, p_bad_to_good, 0.0, 1.0)
    }

    /// Stationary probability of being in the bad state.
    pub fn stationary_bad(&self) -> f64 {
        self.p_good_to_bad / (self.p_good_to_bad + self.p_bad_to_good)
    }

    /// Long-run loss rate: `π_G·loss_good + π_B·loss_bad` — the `τ_i`
    /// the LP model should be fed for this link.
    pub fn stationary_loss(&self) -> f64 {
        let pb = self.stationary_bad();
        (1.0 - pb) * self.loss_good + pb * self.loss_bad
    }

    /// Expected number of consecutive packets spent in the bad state
    /// (`1/p_bad_to_good`; ∞ if the bad state is absorbing).
    pub fn mean_burst_length(&self) -> f64 {
        1.0 / self.p_bad_to_good
    }
}

/// The per-packet erasure process of a link.
#[derive(Debug, Clone, PartialEq)]
pub enum LossModel {
    /// Independent erasure with the given probability (the paper's model).
    Bernoulli(f64),
    /// Correlated bursty erasure (two-state Markov chain).
    GilbertElliott(GilbertElliott),
}

impl LossModel {
    /// Validates the model's parameters.
    ///
    /// # Errors
    ///
    /// Returns a message when a probability is out of range.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            LossModel::Bernoulli(p) => {
                if !(0.0..=1.0).contains(p) || p.is_nan() {
                    return Err(format!("loss must be in [0, 1], got {p}"));
                }
                Ok(())
            }
            LossModel::GilbertElliott(ge) => GilbertElliott::new(
                ge.p_good_to_bad,
                ge.p_bad_to_good,
                ge.loss_good,
                ge.loss_bad,
            )
            .map(|_| ()),
        }
    }

    /// The long-run loss rate of the process — what the LP's `τ_i`
    /// should be set to.
    pub fn stationary_loss(&self) -> f64 {
        match self {
            LossModel::Bernoulli(p) => *p,
            LossModel::GilbertElliott(ge) => ge.stationary_loss(),
        }
    }
}

impl From<f64> for LossModel {
    /// A bare probability is Bernoulli loss (the historical field type).
    fn from(p: f64) -> Self {
        LossModel::Bernoulli(p)
    }
}

impl From<GilbertElliott> for LossModel {
    fn from(ge: GilbertElliott) -> Self {
        LossModel::GilbertElliott(ge)
    }
}

/// A mid-simulation change to one link — the scenario library's
/// primitives for path failure/recovery and time-varying characteristics.
#[derive(Debug, Clone, PartialEq)]
pub enum LinkChange {
    /// The link goes down: every subsequent send is dropped at the NIC
    /// until [`LinkChange::Recover`].
    Fail,
    /// The link comes back up.
    Recover,
    /// The transmission rate changes (piecewise time-varying bandwidth;
    /// the packet currently in service finishes at the old rate).
    SetBandwidth(f64),
    /// The erasure process changes.
    SetLoss(LossModel),
}

/// Static configuration of one unidirectional link.
#[derive(Debug, Clone)]
pub struct LinkConfig {
    /// Transmission rate in bits/second.
    pub bandwidth_bps: f64,
    /// Propagation-delay distribution (constant for the base model).
    pub propagation: Arc<dyn Delay>,
    /// Per-packet erasure process (`f64` converts to Bernoulli).
    pub loss: LossModel,
    /// Drop-tail queue capacity in bytes (not counting the packet in
    /// service). The paper's buffers are finite; 256 KiB is the default.
    pub queue_capacity_bytes: usize,
}

impl LinkConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message when bandwidth, loss, or capacity are out of
    /// range.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.bandwidth_bps > 0.0) || !self.bandwidth_bps.is_finite() {
            return Err(format!(
                "bandwidth must be finite and > 0, got {}",
                self.bandwidth_bps
            ));
        }
        self.loss.validate()?;
        if self.queue_capacity_bytes == 0 {
            return Err("queue capacity must be positive".into());
        }
        Ok(())
    }
}

/// Counters exposed per link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LinkStats {
    /// Packets accepted for transmission.
    pub sent: u64,
    /// Packets dropped on arrival because the queue was full.
    pub dropped_overflow: u64,
    /// Packets dropped because the link was down.
    pub dropped_down: u64,
    /// Packets erased in flight (loss-model erasures).
    pub lost: u64,
    /// Packets that will be delivered.
    pub delivered: u64,
    /// Bytes accepted for transmission.
    pub bytes_sent: u64,
}

/// Outcome of offering a packet to a link.
#[derive(Debug, Clone, PartialEq)]
pub enum SendOutcome {
    /// The queue was full; the packet is gone.
    DroppedQueueFull,
    /// The link is down (scheduled failure); the packet is gone.
    DroppedLinkDown,
    /// The packet was serialized.
    Transmitted {
        /// When the last bit leaves the transmitter (queue slot freed).
        departure: SimTime,
        /// Arrival at the far end, or `None` if erased in flight.
        arrival: Option<SimTime>,
    },
}

/// One unidirectional link with its dynamic state.
#[derive(Debug)]
pub struct Link {
    config: LinkConfig,
    /// When the transmitter becomes idle.
    busy_until: SimTime,
    /// Bytes waiting or in service.
    queued_bytes: usize,
    /// Arrival time of the previously delivered packet (FIFO floor).
    last_arrival: SimTime,
    /// Whether the link is up (scheduled failures flip this).
    up: bool,
    /// Gilbert–Elliott chain state (`true` = bad); unused for Bernoulli.
    loss_bad_state: bool,
    rng: StdRng,
    stats: LinkStats,
}

impl Link {
    /// Creates a link; the RNG is seeded deterministically. A
    /// Gilbert–Elliott chain starts from a stationary draw, so loss
    /// statistics are unbiased from the first packet.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`LinkConfig::validate`]).
    pub fn new(config: LinkConfig, seed: u64) -> Self {
        config.validate().expect("invalid link configuration");
        let mut rng = StdRng::seed_from_u64(seed);
        let loss_bad_state = match &config.loss {
            LossModel::Bernoulli(_) => false,
            LossModel::GilbertElliott(ge) => rng.random::<f64>() < ge.stationary_bad(),
        };
        Link {
            config,
            busy_until: SimTime::ZERO,
            queued_bytes: 0,
            last_arrival: SimTime::ZERO,
            up: true,
            loss_bad_state,
            rng,
            stats: LinkStats::default(),
        }
    }

    /// The static configuration.
    pub fn config(&self) -> &LinkConfig {
        &self.config
    }

    /// Counters so far.
    pub fn stats(&self) -> LinkStats {
        self.stats
    }

    /// Bytes currently queued or in service.
    pub fn queued_bytes(&self) -> usize {
        self.queued_bytes
    }

    /// Whether the link is currently up.
    pub fn is_up(&self) -> bool {
        self.up
    }

    /// Applies a scheduled change (failure, recovery, bandwidth or loss
    /// retune). Packets already serialized/in flight are unaffected;
    /// subsequent sends see the new state.
    ///
    /// # Panics
    ///
    /// Panics if the change carries invalid parameters (non-positive
    /// bandwidth, out-of-range loss) — schedules should be validated at
    /// construction (see [`crate::scenario::Dynamics`]).
    pub fn apply(&mut self, change: &LinkChange) {
        match change {
            LinkChange::Fail => self.up = false,
            LinkChange::Recover => self.up = true,
            LinkChange::SetBandwidth(bps) => {
                assert!(
                    *bps > 0.0 && bps.is_finite(),
                    "bandwidth must be finite and > 0, got {bps}"
                );
                self.config.bandwidth_bps = *bps;
            }
            LinkChange::SetLoss(model) => {
                model.validate().expect("invalid loss model");
                if let LossModel::GilbertElliott(ge) = model {
                    self.loss_bad_state = self.rng.random::<f64>() < ge.stationary_bad();
                }
                self.config.loss = model.clone();
            }
        }
    }

    /// Draws one erasure decision, advancing the loss process.
    fn draw_loss(&mut self) -> bool {
        match &self.config.loss {
            LossModel::Bernoulli(p) => self.rng.random::<f64>() < *p,
            LossModel::GilbertElliott(ge) => {
                let ge = *ge;
                let flip = if self.loss_bad_state {
                    ge.p_bad_to_good
                } else {
                    ge.p_good_to_bad
                };
                if self.rng.random::<f64>() < flip {
                    self.loss_bad_state = !self.loss_bad_state;
                }
                let p = if self.loss_bad_state {
                    ge.loss_bad
                } else {
                    ge.loss_good
                };
                self.rng.random::<f64>() < p
            }
        }
    }

    /// Offers `packet` to the link at time `now`.
    ///
    /// On `Transmitted`, the caller must credit the queue again at
    /// `departure` via [`Link::on_departure`], and deliver the packet at
    /// `arrival` if it is `Some`.
    pub fn send(&mut self, now: SimTime, packet: &mut Packet) -> SendOutcome {
        if !self.up {
            self.stats.dropped_down += 1;
            return SendOutcome::DroppedLinkDown;
        }
        let size = packet.size_bytes();
        if self.queued_bytes + size > self.config.queue_capacity_bytes {
            self.stats.dropped_overflow += 1;
            return SendOutcome::DroppedQueueFull;
        }
        self.queued_bytes += size;
        self.stats.sent += 1;
        self.stats.bytes_sent += size as u64;
        packet.stamp_sent(now);

        let tx_seconds = packet.size_bits() as f64 / self.config.bandwidth_bps;
        let start = self.busy_until.max(now);
        let departure = start + SimDuration::from_secs_f64(tx_seconds);
        self.busy_until = departure;

        if self.draw_loss() {
            self.stats.lost += 1;
            return SendOutcome::Transmitted {
                departure,
                arrival: None,
            };
        }
        let prop = self.config.propagation.sample(&mut self.rng);
        let arrival = departure + SimDuration::from_secs_f64(prop.max(0.0));
        // Constant-delay wires are FIFO by construction. Randomly-delayed
        // paths model the paper's Eq. 24 — *i.i.d.* per-packet end-to-end
        // delays — so later packets may overtake earlier ones (UDP does
        // not care). Clamping to FIFO here would turn dense traffic's
        // delay distribution into a running maximum of the samples,
        // inflating it far beyond the configured distribution.
        self.last_arrival = self.last_arrival.max(arrival);
        self.stats.delivered += 1;
        SendOutcome::Transmitted {
            departure,
            arrival: Some(arrival),
        }
    }

    /// Frees the queue space of a packet whose serialization finished.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if more bytes are credited than queued.
    pub fn on_departure(&mut self, size_bytes: usize) {
        debug_assert!(self.queued_bytes >= size_bytes, "queue underflow");
        self.queued_bytes = self.queued_bytes.saturating_sub(size_bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use dmc_stats::{ConstantDelay, ShiftedGamma};

    fn mk(bw: f64, delay: f64, loss: f64) -> Link {
        Link::new(
            LinkConfig {
                bandwidth_bps: bw,
                propagation: Arc::new(ConstantDelay::new(delay)),
                loss: loss.into(),
                queue_capacity_bytes: 1 << 18,
            },
            42,
        )
    }

    fn pkt(bytes: usize) -> Packet {
        Packet::new(bytes, Bytes::new())
    }

    #[test]
    fn serialization_plus_propagation() {
        // 1024 B at 1 Mbps = 8.192 ms serialization, +100 ms propagation.
        let mut link = mk(1e6, 0.100, 0.0);
        let mut p = pkt(1024);
        match link.send(SimTime::ZERO, &mut p) {
            SendOutcome::Transmitted {
                departure,
                arrival: Some(arrival),
            } => {
                assert_eq!(departure.as_nanos(), 8_192_000);
                assert_eq!(arrival.as_nanos(), 108_192_000);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn back_to_back_packets_queue() {
        let mut link = mk(1e6, 0.0, 0.0);
        let mut p1 = pkt(1024);
        let mut p2 = pkt(1024);
        let d1 = match link.send(SimTime::ZERO, &mut p1) {
            SendOutcome::Transmitted { departure, .. } => departure,
            _ => panic!(),
        };
        // Second packet sent at t=0 too: serialized after the first.
        let d2 = match link.send(SimTime::ZERO, &mut p2) {
            SendOutcome::Transmitted { departure, .. } => departure,
            _ => panic!(),
        };
        assert_eq!(d2.as_nanos(), 2 * d1.as_nanos());
    }

    #[test]
    fn overflow_drops() {
        let mut link = Link::new(
            LinkConfig {
                bandwidth_bps: 1e6,
                propagation: Arc::new(ConstantDelay::new(0.0)),
                loss: 0.0.into(),
                queue_capacity_bytes: 2048,
            },
            1,
        );
        assert!(matches!(
            link.send(SimTime::ZERO, &mut pkt(1024)),
            SendOutcome::Transmitted { .. }
        ));
        assert!(matches!(
            link.send(SimTime::ZERO, &mut pkt(1024)),
            SendOutcome::Transmitted { .. }
        ));
        assert_eq!(
            link.send(SimTime::ZERO, &mut pkt(1024)),
            SendOutcome::DroppedQueueFull
        );
        assert_eq!(link.stats().dropped_overflow, 1);
        // Departure frees space.
        link.on_departure(1024);
        assert!(matches!(
            link.send(SimTime::from_secs_f64(0.01), &mut pkt(1024)),
            SendOutcome::Transmitted { .. }
        ));
    }

    #[test]
    fn loss_rate_is_statistical() {
        let mut link = mk(1e9, 0.0, 0.2);
        let n = 50_000;
        let mut lost = 0;
        for _ in 0..n {
            match link.send(link.busy_until, &mut pkt(100)) {
                SendOutcome::Transmitted { arrival: None, .. } => lost += 1,
                SendOutcome::Transmitted { .. } => {}
                other => panic!("unexpected outcome {other:?}"),
            }
            link.on_departure(100);
        }
        let rate = lost as f64 / n as f64;
        assert!((rate - 0.2).abs() < 0.01, "loss rate {rate}");
        assert_eq!(link.stats().lost, lost);
    }

    #[test]
    fn random_propagation_is_iid_not_running_max() {
        // Eq. 24 models per-packet delays as i.i.d.; dense traffic on a
        // jittery path must therefore (a) reorder sometimes and (b) keep
        // the *mean* delay at the distribution's mean, not at a running
        // maximum.
        let jitter = ShiftedGamma::new(2.0, 0.010, 0.050).unwrap();
        let mean = jitter.mean();
        let mut link = Link::new(
            LinkConfig {
                bandwidth_bps: 1e9,
                propagation: Arc::new(jitter),
                loss: 0.0.into(),
                queue_capacity_bytes: 1 << 20,
            },
            7,
        );
        let mut prev = SimTime::ZERO;
        let mut reordered = 0u32;
        let mut total_delay = 0.0;
        let n = 10_000u64;
        for i in 0..n {
            let now = SimTime::from_nanos(i * 1000);
            match link.send(now, &mut pkt(100)) {
                SendOutcome::Transmitted {
                    departure,
                    arrival: Some(a),
                } => {
                    if a < prev {
                        reordered += 1;
                    }
                    prev = prev.max(a);
                    total_delay += a.since(departure).as_secs_f64();
                }
                _ => panic!(),
            }
            link.on_departure(100);
        }
        assert!(reordered > 100, "i.i.d. jitter must reorder: {reordered}");
        let observed_mean = total_delay / n as f64;
        assert!(
            (observed_mean - mean).abs() < 1e-3,
            "mean {observed_mean} vs spec {mean}"
        );
    }

    #[test]
    fn determinism_with_same_seed() {
        let run = |seed: u64| {
            let mut link = Link::new(
                LinkConfig {
                    bandwidth_bps: 1e7,
                    propagation: Arc::new(ShiftedGamma::new(5.0, 0.002, 0.1).unwrap()),
                    loss: 0.1.into(),
                    queue_capacity_bytes: 1 << 20,
                },
                seed,
            );
            let mut arrivals = Vec::new();
            for i in 0..1000u64 {
                if let SendOutcome::Transmitted {
                    arrival: Some(a), ..
                } = link.send(SimTime::from_nanos(i * 100_000), &mut pkt(512))
                {
                    arrivals.push(a.as_nanos());
                }
                link.on_departure(512);
            }
            arrivals
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    fn invalid_configs_rejected() {
        let cfg = LinkConfig {
            bandwidth_bps: 0.0,
            propagation: Arc::new(ConstantDelay::new(0.0)),
            loss: 0.0.into(),
            queue_capacity_bytes: 1,
        };
        assert!(cfg.validate().is_err());
        let cfg = LinkConfig {
            bandwidth_bps: 1e6,
            propagation: Arc::new(ConstantDelay::new(0.0)),
            loss: 1.5.into(),
            queue_capacity_bytes: 1,
        };
        assert!(cfg.validate().is_err());
        let cfg = LinkConfig {
            bandwidth_bps: 1e6,
            propagation: Arc::new(ConstantDelay::new(0.0)),
            loss: 0.5.into(),
            queue_capacity_bytes: 0,
        };
        assert!(cfg.validate().is_err());
        // Loss-model parameter validation flows through LinkConfig too.
        assert!(GilbertElliott::new(1.2, 0.1, 0.0, 1.0).is_err());
        assert!(GilbertElliott::new(0.0, 0.0, 0.0, 1.0).is_err());
        let cfg = LinkConfig {
            bandwidth_bps: 1e6,
            propagation: Arc::new(ConstantDelay::new(0.0)),
            loss: LossModel::Bernoulli(f64::NAN),
            queue_capacity_bytes: 1,
        };
        assert!(cfg.validate().is_err());
    }

    fn mk_ge(ge: GilbertElliott, seed: u64) -> Link {
        Link::new(
            LinkConfig {
                bandwidth_bps: 1e9,
                propagation: Arc::new(ConstantDelay::new(0.0)),
                loss: ge.into(),
                queue_capacity_bytes: 1 << 20,
            },
            seed,
        )
    }

    #[test]
    fn gilbert_elliott_losses_are_bursty() {
        // Same stationary rate as Bernoulli(1/6), but losses must clump:
        // the mean run length of consecutive losses approaches the chain's
        // 1/p_bad_to_good = 4 instead of Bernoulli's 1/(1−p) = 1.2.
        let ge = GilbertElliott::classic(0.05, 0.25).unwrap();
        let mut link = mk_ge(ge, 9);
        let n = 40_000u64;
        let mut outcomes = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let lost = matches!(
                link.send(link.busy_until, &mut pkt(100)),
                SendOutcome::Transmitted { arrival: None, .. }
            );
            outcomes.push(lost);
            link.on_departure(100);
        }
        let mut bursts = 0u64;
        let mut lost_total = 0u64;
        for (i, &l) in outcomes.iter().enumerate() {
            if l {
                lost_total += 1;
                if i == 0 || !outcomes[i - 1] {
                    bursts += 1;
                }
            }
        }
        let mean_burst = lost_total as f64 / bursts as f64;
        assert!(
            (mean_burst - ge.mean_burst_length()).abs() < 0.5,
            "mean burst {mean_burst} vs chain {}",
            ge.mean_burst_length()
        );
        let rate = lost_total as f64 / n as f64;
        assert!(
            (rate - ge.stationary_loss()).abs() < 0.02,
            "rate {rate} vs stationary {}",
            ge.stationary_loss()
        );
    }

    #[test]
    fn gilbert_elliott_is_deterministic_per_seed() {
        let run = |seed| {
            let ge = GilbertElliott::new(0.1, 0.3, 0.01, 0.8).unwrap();
            let mut link = mk_ge(ge, seed);
            (0..500)
                .map(|_| {
                    let lost = matches!(
                        link.send(link.busy_until, &mut pkt(64)),
                        SendOutcome::Transmitted { arrival: None, .. }
                    );
                    link.on_departure(64);
                    lost
                })
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn failed_link_drops_until_recovery() {
        let mut link = mk(1e6, 0.010, 0.0);
        assert!(link.is_up());
        link.apply(&LinkChange::Fail);
        assert!(!link.is_up());
        assert_eq!(
            link.send(SimTime::ZERO, &mut pkt(100)),
            SendOutcome::DroppedLinkDown
        );
        assert_eq!(link.stats().dropped_down, 1);
        assert_eq!(link.stats().sent, 0);
        link.apply(&LinkChange::Recover);
        assert!(matches!(
            link.send(SimTime::ZERO, &mut pkt(100)),
            SendOutcome::Transmitted { .. }
        ));
    }

    #[test]
    fn bandwidth_change_applies_to_subsequent_packets() {
        let mut link = mk(1e6, 0.0, 0.0);
        let d1 = match link.send(SimTime::ZERO, &mut pkt(1000)) {
            SendOutcome::Transmitted { departure, .. } => departure,
            other => panic!("{other:?}"),
        };
        assert_eq!(d1.as_nanos(), 8_000_000); // 8000 bits at 1 Mbps
        link.on_departure(1000);
        link.apply(&LinkChange::SetBandwidth(2e6));
        let d2 = match link.send(d1, &mut pkt(1000)) {
            SendOutcome::Transmitted { departure, .. } => departure,
            other => panic!("{other:?}"),
        };
        assert_eq!(d2.as_nanos() - d1.as_nanos(), 4_000_000); // twice as fast
    }

    #[test]
    fn loss_model_change_takes_effect() {
        let mut link = mk(1e9, 0.0, 0.0);
        link.apply(&LinkChange::SetLoss(LossModel::Bernoulli(1.0)));
        assert!(matches!(
            link.send(SimTime::ZERO, &mut pkt(100)),
            SendOutcome::Transmitted { arrival: None, .. }
        ));
        link.on_departure(100);
        link.apply(&LinkChange::SetLoss(LossModel::Bernoulli(0.0)));
        assert!(matches!(
            link.send(link.busy_until, &mut pkt(100)),
            SendOutcome::Transmitted {
                arrival: Some(_),
                ..
            }
        ));
    }

    #[test]
    fn stationary_loss_formulas() {
        let ge = GilbertElliott::new(0.02, 0.18, 0.01, 0.60).unwrap();
        let pb = 0.02 / 0.20;
        assert!((ge.stationary_bad() - pb).abs() < 1e-12);
        let want = (1.0 - pb) * 0.01 + pb * 0.60;
        assert!((ge.stationary_loss() - want).abs() < 1e-12);
        assert_eq!(LossModel::from(0.3).stationary_loss(), 0.3);
        assert!((LossModel::from(ge).stationary_loss() - want).abs() < 1e-12);
    }
}
