//! Unidirectional point-to-point links.
//!
//! A link reproduces the three knobs the paper's ns-3 setup exposes per
//! path — bandwidth, propagation delay, loss — plus the drop-tail queue
//! whose side effects (§VII Exp. 1 measured up to 50 ms queueing delay,
//! §IX-A discusses overflow loss) the evaluation depends on:
//!
//! * **Serialization**: a packet of `s` bits occupies the transmitter for
//!   `s / bandwidth` seconds; packets queue FIFO behind it.
//! * **Queue**: bounded in bytes; arrivals that would overflow are
//!   dropped (this is how over-driving a path manifests, Fig. 3 top).
//! * **Loss**: independent Bernoulli erasure per packet (the paper's
//!   binary erasure channel at transport granularity).
//! * **Propagation**: constant or random ([`Delay`]), sampled per packet.
//!   Per-path FIFO ordering is enforced (`§VIII-D`: per-path reordering is
//!   "relatively unlikely"; a point-to-point wire cannot reorder), so a
//!   sampled arrival never precedes the previous packet's arrival.

use crate::packet::Packet;
use crate::time::{SimDuration, SimTime};
use dmc_stats::Delay;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Static configuration of one unidirectional link.
#[derive(Debug, Clone)]
pub struct LinkConfig {
    /// Transmission rate in bits/second.
    pub bandwidth_bps: f64,
    /// Propagation-delay distribution (constant for the base model).
    pub propagation: Arc<dyn Delay>,
    /// Bernoulli erasure probability per packet.
    pub loss: f64,
    /// Drop-tail queue capacity in bytes (not counting the packet in
    /// service). The paper's buffers are finite; 256 KiB is the default.
    pub queue_capacity_bytes: usize,
}

impl LinkConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message when bandwidth, loss, or capacity are out of
    /// range.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.bandwidth_bps > 0.0) || !self.bandwidth_bps.is_finite() {
            return Err(format!(
                "bandwidth must be finite and > 0, got {}",
                self.bandwidth_bps
            ));
        }
        if !(0.0..=1.0).contains(&self.loss) || self.loss.is_nan() {
            return Err(format!("loss must be in [0, 1], got {}", self.loss));
        }
        if self.queue_capacity_bytes == 0 {
            return Err("queue capacity must be positive".into());
        }
        Ok(())
    }
}

/// Counters exposed per link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LinkStats {
    /// Packets accepted for transmission.
    pub sent: u64,
    /// Packets dropped on arrival because the queue was full.
    pub dropped_overflow: u64,
    /// Packets erased in flight (Bernoulli loss).
    pub lost: u64,
    /// Packets that will be delivered.
    pub delivered: u64,
    /// Bytes accepted for transmission.
    pub bytes_sent: u64,
}

/// Outcome of offering a packet to a link.
#[derive(Debug, Clone, PartialEq)]
pub enum SendOutcome {
    /// The queue was full; the packet is gone.
    DroppedQueueFull,
    /// The packet was serialized.
    Transmitted {
        /// When the last bit leaves the transmitter (queue slot freed).
        departure: SimTime,
        /// Arrival at the far end, or `None` if erased in flight.
        arrival: Option<SimTime>,
    },
}

/// One unidirectional link with its dynamic state.
#[derive(Debug)]
pub struct Link {
    config: LinkConfig,
    /// When the transmitter becomes idle.
    busy_until: SimTime,
    /// Bytes waiting or in service.
    queued_bytes: usize,
    /// Arrival time of the previously delivered packet (FIFO floor).
    last_arrival: SimTime,
    rng: StdRng,
    stats: LinkStats,
}

impl Link {
    /// Creates a link; the RNG is seeded deterministically.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`LinkConfig::validate`]).
    pub fn new(config: LinkConfig, seed: u64) -> Self {
        config.validate().expect("invalid link configuration");
        Link {
            config,
            busy_until: SimTime::ZERO,
            queued_bytes: 0,
            last_arrival: SimTime::ZERO,
            rng: StdRng::seed_from_u64(seed),
            stats: LinkStats::default(),
        }
    }

    /// The static configuration.
    pub fn config(&self) -> &LinkConfig {
        &self.config
    }

    /// Counters so far.
    pub fn stats(&self) -> LinkStats {
        self.stats
    }

    /// Bytes currently queued or in service.
    pub fn queued_bytes(&self) -> usize {
        self.queued_bytes
    }

    /// Offers `packet` to the link at time `now`.
    ///
    /// On `Transmitted`, the caller must credit the queue again at
    /// `departure` via [`Link::on_departure`], and deliver the packet at
    /// `arrival` if it is `Some`.
    pub fn send(&mut self, now: SimTime, packet: &mut Packet) -> SendOutcome {
        let size = packet.size_bytes();
        if self.queued_bytes + size > self.config.queue_capacity_bytes {
            self.stats.dropped_overflow += 1;
            return SendOutcome::DroppedQueueFull;
        }
        self.queued_bytes += size;
        self.stats.sent += 1;
        self.stats.bytes_sent += size as u64;
        packet.stamp_sent(now);

        let tx_seconds = packet.size_bits() as f64 / self.config.bandwidth_bps;
        let start = self.busy_until.max(now);
        let departure = start + SimDuration::from_secs_f64(tx_seconds);
        self.busy_until = departure;

        if self.rng.random::<f64>() < self.config.loss {
            self.stats.lost += 1;
            return SendOutcome::Transmitted {
                departure,
                arrival: None,
            };
        }
        let prop = self.config.propagation.sample(&mut self.rng);
        let arrival = departure + SimDuration::from_secs_f64(prop.max(0.0));
        // Constant-delay wires are FIFO by construction. Randomly-delayed
        // paths model the paper's Eq. 24 — *i.i.d.* per-packet end-to-end
        // delays — so later packets may overtake earlier ones (UDP does
        // not care). Clamping to FIFO here would turn dense traffic's
        // delay distribution into a running maximum of the samples,
        // inflating it far beyond the configured distribution.
        self.last_arrival = self.last_arrival.max(arrival);
        self.stats.delivered += 1;
        SendOutcome::Transmitted {
            departure,
            arrival: Some(arrival),
        }
    }

    /// Frees the queue space of a packet whose serialization finished.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if more bytes are credited than queued.
    pub fn on_departure(&mut self, size_bytes: usize) {
        debug_assert!(self.queued_bytes >= size_bytes, "queue underflow");
        self.queued_bytes = self.queued_bytes.saturating_sub(size_bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use dmc_stats::{ConstantDelay, ShiftedGamma};

    fn mk(bw: f64, delay: f64, loss: f64) -> Link {
        Link::new(
            LinkConfig {
                bandwidth_bps: bw,
                propagation: Arc::new(ConstantDelay::new(delay)),
                loss,
                queue_capacity_bytes: 1 << 18,
            },
            42,
        )
    }

    fn pkt(bytes: usize) -> Packet {
        Packet::new(bytes, Bytes::new())
    }

    #[test]
    fn serialization_plus_propagation() {
        // 1024 B at 1 Mbps = 8.192 ms serialization, +100 ms propagation.
        let mut link = mk(1e6, 0.100, 0.0);
        let mut p = pkt(1024);
        match link.send(SimTime::ZERO, &mut p) {
            SendOutcome::Transmitted {
                departure,
                arrival: Some(arrival),
            } => {
                assert_eq!(departure.as_nanos(), 8_192_000);
                assert_eq!(arrival.as_nanos(), 108_192_000);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn back_to_back_packets_queue() {
        let mut link = mk(1e6, 0.0, 0.0);
        let mut p1 = pkt(1024);
        let mut p2 = pkt(1024);
        let d1 = match link.send(SimTime::ZERO, &mut p1) {
            SendOutcome::Transmitted { departure, .. } => departure,
            _ => panic!(),
        };
        // Second packet sent at t=0 too: serialized after the first.
        let d2 = match link.send(SimTime::ZERO, &mut p2) {
            SendOutcome::Transmitted { departure, .. } => departure,
            _ => panic!(),
        };
        assert_eq!(d2.as_nanos(), 2 * d1.as_nanos());
    }

    #[test]
    fn overflow_drops() {
        let mut link = Link::new(
            LinkConfig {
                bandwidth_bps: 1e6,
                propagation: Arc::new(ConstantDelay::new(0.0)),
                loss: 0.0,
                queue_capacity_bytes: 2048,
            },
            1,
        );
        assert!(matches!(
            link.send(SimTime::ZERO, &mut pkt(1024)),
            SendOutcome::Transmitted { .. }
        ));
        assert!(matches!(
            link.send(SimTime::ZERO, &mut pkt(1024)),
            SendOutcome::Transmitted { .. }
        ));
        assert_eq!(
            link.send(SimTime::ZERO, &mut pkt(1024)),
            SendOutcome::DroppedQueueFull
        );
        assert_eq!(link.stats().dropped_overflow, 1);
        // Departure frees space.
        link.on_departure(1024);
        assert!(matches!(
            link.send(SimTime::from_secs_f64(0.01), &mut pkt(1024)),
            SendOutcome::Transmitted { .. }
        ));
    }

    #[test]
    fn loss_rate_is_statistical() {
        let mut link = mk(1e9, 0.0, 0.2);
        let n = 50_000;
        let mut lost = 0;
        for _ in 0..n {
            match link.send(link.busy_until, &mut pkt(100)) {
                SendOutcome::Transmitted { arrival: None, .. } => lost += 1,
                SendOutcome::Transmitted { .. } => {}
                SendOutcome::DroppedQueueFull => panic!("queue overflow"),
            }
            link.on_departure(100);
        }
        let rate = lost as f64 / n as f64;
        assert!((rate - 0.2).abs() < 0.01, "loss rate {rate}");
        assert_eq!(link.stats().lost, lost);
    }

    #[test]
    fn random_propagation_is_iid_not_running_max() {
        // Eq. 24 models per-packet delays as i.i.d.; dense traffic on a
        // jittery path must therefore (a) reorder sometimes and (b) keep
        // the *mean* delay at the distribution's mean, not at a running
        // maximum.
        let jitter = ShiftedGamma::new(2.0, 0.010, 0.050).unwrap();
        let mean = jitter.mean();
        let mut link = Link::new(
            LinkConfig {
                bandwidth_bps: 1e9,
                propagation: Arc::new(jitter),
                loss: 0.0,
                queue_capacity_bytes: 1 << 20,
            },
            7,
        );
        let mut prev = SimTime::ZERO;
        let mut reordered = 0u32;
        let mut total_delay = 0.0;
        let n = 10_000u64;
        for i in 0..n {
            let now = SimTime::from_nanos(i * 1000);
            match link.send(now, &mut pkt(100)) {
                SendOutcome::Transmitted {
                    departure,
                    arrival: Some(a),
                } => {
                    if a < prev {
                        reordered += 1;
                    }
                    prev = prev.max(a);
                    total_delay += a.since(departure).as_secs_f64();
                }
                _ => panic!(),
            }
            link.on_departure(100);
        }
        assert!(reordered > 100, "i.i.d. jitter must reorder: {reordered}");
        let observed_mean = total_delay / n as f64;
        assert!(
            (observed_mean - mean).abs() < 1e-3,
            "mean {observed_mean} vs spec {mean}"
        );
    }

    #[test]
    fn determinism_with_same_seed() {
        let run = |seed: u64| {
            let mut link = Link::new(
                LinkConfig {
                    bandwidth_bps: 1e7,
                    propagation: Arc::new(ShiftedGamma::new(5.0, 0.002, 0.1).unwrap()),
                    loss: 0.1,
                    queue_capacity_bytes: 1 << 20,
                },
                seed,
            );
            let mut arrivals = Vec::new();
            for i in 0..1000u64 {
                if let SendOutcome::Transmitted {
                    arrival: Some(a), ..
                } = link.send(SimTime::from_nanos(i * 100_000), &mut pkt(512))
                {
                    arrivals.push(a.as_nanos());
                }
                link.on_departure(512);
            }
            arrivals
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    fn invalid_configs_rejected() {
        let cfg = LinkConfig {
            bandwidth_bps: 0.0,
            propagation: Arc::new(ConstantDelay::new(0.0)),
            loss: 0.0,
            queue_capacity_bytes: 1,
        };
        assert!(cfg.validate().is_err());
        let cfg = LinkConfig {
            bandwidth_bps: 1e6,
            propagation: Arc::new(ConstantDelay::new(0.0)),
            loss: 1.5,
            queue_capacity_bytes: 1,
        };
        assert!(cfg.validate().is_err());
        let cfg = LinkConfig {
            bandwidth_bps: 1e6,
            propagation: Arc::new(ConstantDelay::new(0.0)),
            loss: 0.5,
            queue_capacity_bytes: 0,
        };
        assert!(cfg.validate().is_err());
    }
}
