//! Packets: what links carry.
//!
//! The simulator treats payloads as opaque bytes — the protocol crate
//! serializes its headers into them, exactly like a real wire. Only the
//! size matters for link timing.

use crate::time::SimTime;
use bytes::Bytes;

/// A packet in flight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Total on-wire size in bytes (headers included). Determines
    /// serialization time and queue occupancy.
    size_bytes: usize,
    /// Opaque payload (protocol headers + application data).
    payload: Bytes,
    /// When the packet was handed to the link (stamped by the simulator).
    sent_at: SimTime,
}

impl Packet {
    /// Creates a packet of `size_bytes` carrying `payload`.
    ///
    /// `size_bytes` may exceed `payload.len()` to model padding or
    /// application data that is not explicitly materialized (the paper's
    /// 1024-byte messages carry a 24-byte header; we only materialize the
    /// header).
    ///
    /// # Panics
    ///
    /// Panics if `size_bytes` is zero or smaller than the payload.
    pub fn new(size_bytes: usize, payload: Bytes) -> Self {
        assert!(size_bytes > 0, "packets must have positive size");
        assert!(
            size_bytes >= payload.len(),
            "size {size_bytes} smaller than payload {}",
            payload.len()
        );
        Packet {
            size_bytes,
            payload,
            sent_at: SimTime::ZERO,
        }
    }

    /// On-wire size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.size_bytes
    }

    /// On-wire size in bits (what the link's serializer consumes).
    pub fn size_bits(&self) -> u64 {
        self.size_bytes as u64 * 8
    }

    /// The opaque payload.
    pub fn payload(&self) -> &Bytes {
        &self.payload
    }

    /// When the packet entered its current link.
    pub fn sent_at(&self) -> SimTime {
        self.sent_at
    }

    pub(crate) fn stamp_sent(&mut self, at: SimTime) {
        self.sent_at = at;
    }

    /// Swaps the payload in place (fault injection), preserving the
    /// on-wire size and link timestamp. The new payload must still fit.
    pub(crate) fn replace_payload(&mut self, payload: Bytes) {
        assert!(
            self.size_bytes >= payload.len(),
            "replacement payload {} exceeds wire size {}",
            payload.len(),
            self.size_bytes
        );
        self.payload = payload;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        let p = Packet::new(1024, Bytes::from_static(b"hdr"));
        assert_eq!(p.size_bytes(), 1024);
        assert_eq!(p.size_bits(), 8192);
        assert_eq!(p.payload().as_ref(), b"hdr");
    }

    #[test]
    #[should_panic(expected = "positive size")]
    fn zero_size_panics() {
        Packet::new(0, Bytes::new());
    }

    #[test]
    #[should_panic(expected = "smaller than payload")]
    fn undersized_panics() {
        Packet::new(2, Bytes::from_static(b"abcdef"));
    }
}
