//! Virtual time: integer nanoseconds since simulation start.
//!
//! Integer time makes event ordering exact and runs perfectly
//! reproducible; conversion helpers keep the model side (which works in
//! `f64` seconds) ergonomic.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant in simulated time (nanoseconds since start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time (nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant from integer nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates an instant from seconds, rounding to the nearest
    /// nanosecond.
    ///
    /// # Panics
    ///
    /// Panics on negative, NaN or out-of-range input.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime(secs_to_nanos(secs))
    }

    /// Nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier` (saturating at zero).
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from integer nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from seconds, rounding to the nearest
    /// nanosecond.
    ///
    /// # Panics
    ///
    /// Panics on negative, NaN or out-of-range input.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration(secs_to_nanos(secs))
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
}

fn secs_to_nanos(secs: f64) -> u64 {
    assert!(
        secs >= 0.0 && !secs.is_nan(),
        "time must be non-negative, got {secs}"
    );
    let ns = secs * 1e9;
    assert!(ns <= u64::MAX as f64, "time {secs}s overflows the clock");
    ns.round() as u64
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_secs_f64() * 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let t = SimTime::from_secs_f64(0.450);
        assert_eq!(t.as_nanos(), 450_000_000);
        assert!((t.as_secs_f64() - 0.450).abs() < 1e-12);
        let d = SimDuration::from_millis(150);
        assert_eq!(d.as_nanos(), 150_000_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_nanos(100) + SimDuration::from_nanos(50);
        assert_eq!(t.as_nanos(), 150);
        assert_eq!(t.since(SimTime::from_nanos(100)).as_nanos(), 50);
        // Saturation instead of underflow.
        assert_eq!(SimTime::from_nanos(10).since(t).as_nanos(), 0);
        let mut u = SimTime::ZERO;
        u += SimDuration::from_nanos(7);
        assert_eq!(u.as_nanos(), 7);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_nanos(1) < SimTime::from_nanos(2));
        assert!(SimDuration::from_millis(1) < SimDuration::from_millis(2));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_time_panics() {
        SimTime::from_secs_f64(-1.0);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", SimDuration::from_millis(150)), "150.000ms");
    }
}
