//! Two-host simulation: a client and a server joined by `n` bidirectional
//! path pairs — the paper's ns-3 topology (§VII-A: "multiple UDP sockets
//! between two network nodes … each socket corresponds to a different
//! path").

use crate::event::EventQueue;
use crate::fault::{FaultPlan, FaultStats, FaultStream, FAULT_SALT_BACKWARD, FAULT_SALT_FORWARD};
use crate::link::{Link, LinkChange, LinkConfig, LinkStats, SendOutcome};
use crate::packet::Packet;
use crate::scenario::Dynamics;
use crate::time::SimTime;

/// Which endpoint an event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HostId {
    /// The sender application (generates data).
    Client,
    /// The receiver application (checks deadlines, acknowledges).
    Server,
}

/// Link direction: `Forward` carries client→server traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dir {
    /// Client → server.
    Forward,
    /// Server → client.
    Backward,
}

/// Events the simulation dispatches.
#[derive(Debug)]
enum NetEvent {
    /// A packet finished serializing; free its queue space.
    Departure { dir: Dir, path: usize, size: usize },
    /// A packet reached the far end of a link.
    Arrival {
        dir: Dir,
        path: usize,
        packet: Packet,
    },
    /// A protocol timer fired.
    Timer { host: HostId, key: u64 },
    /// A scheduled link change (failure/recovery/retune) takes effect.
    LinkChange {
        dir: Dir,
        path: usize,
        change: LinkChange,
    },
}

/// What an endpoint implementation can do during a callback.
///
/// Handed to [`Agent`] methods; sending consumes bandwidth on this host's
/// outgoing links and timers come back via [`Agent::on_timer`].
#[derive(Debug)]
pub struct SimApi<'a> {
    now: SimTime,
    host: HostId,
    outgoing: &'a mut [Link],
    queue: &'a mut EventQueue<NetEvent>,
    faults: Option<&'a mut FaultStream>,
}

impl SimApi<'_> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of paths available.
    pub fn num_paths(&self) -> usize {
        self.outgoing.len()
    }

    /// Sends `packet` on path `path`. Returns `false` if the link queue
    /// was full and the packet was dropped at the NIC.
    ///
    /// # Panics
    ///
    /// Panics if `path` is out of range.
    pub fn send(&mut self, path: usize, mut packet: Packet) -> bool {
        let dir = match self.host {
            HostId::Client => Dir::Forward,
            HostId::Server => Dir::Backward,
        };
        let size = packet.size_bytes();
        match self.outgoing[path].send(self.now, &mut packet) {
            SendOutcome::DroppedQueueFull | SendOutcome::DroppedLinkDown => false,
            SendOutcome::Transmitted { departure, arrival } => {
                self.queue
                    .schedule(departure, NetEvent::Departure { dir, path, size });
                if let Some(at) = arrival {
                    match self.faults.as_deref_mut() {
                        Some(stream) => {
                            let mut packet = packet;
                            let injection = stream.inject(at, &mut packet);
                            if let Some(dup_at) = injection.duplicate_at {
                                self.queue.schedule(
                                    dup_at,
                                    NetEvent::Arrival {
                                        dir,
                                        path,
                                        packet: packet.clone(),
                                    },
                                );
                            }
                            self.queue.schedule(
                                injection.deliver_at,
                                NetEvent::Arrival { dir, path, packet },
                            );
                        }
                        None => {
                            self.queue
                                .schedule(at, NetEvent::Arrival { dir, path, packet });
                        }
                    }
                }
                true
            }
        }
    }

    /// Arms a timer that fires at absolute time `at` with `key`
    /// (delivered to this host's [`Agent::on_timer`]). Timers cannot be
    /// cancelled — implement lazy cancellation by ignoring stale keys.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn set_timer(&mut self, at: SimTime, key: u64) {
        self.queue.schedule(
            at,
            NetEvent::Timer {
                host: self.host,
                key,
            },
        );
    }
}

/// An endpoint implementation (protocol + application logic).
pub trait Agent {
    /// Called once before the first event; schedule initial work here.
    fn on_start(&mut self, api: &mut SimApi<'_>);

    /// A packet arrived on `path`.
    fn on_packet(&mut self, path: usize, packet: Packet, api: &mut SimApi<'_>);

    /// A timer armed via [`SimApi::set_timer`] fired.
    fn on_timer(&mut self, key: u64, api: &mut SimApi<'_>);
}

/// The assembled two-host simulation.
#[derive(Debug)]
pub struct TwoHostSim<C, S> {
    queue: EventQueue<NetEvent>,
    forward: Vec<Link>,
    backward: Vec<Link>,
    client: C,
    server: S,
    started: bool,
    events_processed: u64,
    faults: Option<PacketFaults>,
}

/// Per-direction packet-fault streams (installed by
/// [`TwoHostSim::apply_faults`]).
#[derive(Debug)]
struct PacketFaults {
    forward: FaultStream,
    backward: FaultStream,
}

impl<C: Agent, S: Agent> TwoHostSim<C, S> {
    /// Builds the topology: `forward[i]`/`backward[i]` are the two
    /// directions of path `i`. Links are seeded deterministically from
    /// `seed`.
    ///
    /// # Errors
    ///
    /// Returns a message if the direction vectors have different lengths,
    /// are empty, or a link config is invalid.
    pub fn new(
        forward: Vec<LinkConfig>,
        backward: Vec<LinkConfig>,
        client: C,
        server: S,
        seed: u64,
    ) -> Result<Self, String> {
        if forward.is_empty() {
            return Err("need at least one path".into());
        }
        if forward.len() != backward.len() {
            return Err(format!(
                "direction mismatch: {} forward vs {} backward links",
                forward.len(),
                backward.len()
            ));
        }
        for cfg in forward.iter().chain(&backward) {
            cfg.validate()?;
        }
        let mk = |configs: Vec<LinkConfig>, salt: u64| -> Vec<Link> {
            configs
                .into_iter()
                .enumerate()
                .map(|(i, cfg)| Link::new(cfg, mix_seed(seed, salt, i as u64)))
                .collect()
        };
        Ok(TwoHostSim {
            queue: EventQueue::new(),
            forward: mk(forward, 1),
            backward: mk(backward, 2),
            client,
            server,
            started: false,
            events_processed: 0,
            faults: None,
        })
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Number of events dispatched so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// The client endpoint (for extracting results).
    pub fn client(&self) -> &C {
        &self.client
    }

    /// The server endpoint (for extracting results).
    pub fn server(&self) -> &S {
        &self.server
    }

    /// Consumes the simulation, returning both endpoints (for extracting
    /// owned results after the run).
    pub fn into_agents(self) -> (C, S) {
        (self.client, self.server)
    }

    /// Stats of one link.
    ///
    /// # Panics
    ///
    /// Panics if `path` is out of range.
    pub fn link_stats(&self, dir: Dir, path: usize) -> LinkStats {
        match dir {
            Dir::Forward => self.forward[path].stats(),
            Dir::Backward => self.backward[path].stats(),
        }
    }

    /// Whether the directed link is currently up.
    ///
    /// # Panics
    ///
    /// Panics if `path` is out of range.
    pub fn link_is_up(&self, dir: Dir, path: usize) -> bool {
        match dir {
            Dir::Forward => self.forward[path].is_up(),
            Dir::Backward => self.backward[path].is_up(),
        }
    }

    /// Schedules a [`Dynamics`] script (path failures, bandwidth steps,
    /// loss changes). Call before running; events earlier than the
    /// current virtual time are rejected.
    ///
    /// # Errors
    ///
    /// Returns a message if an event references a path outside the
    /// topology or lies in the simulated past.
    pub fn apply_dynamics(&mut self, dynamics: &Dynamics) -> Result<(), String> {
        if let Some(max) = dynamics.max_path() {
            if max >= self.forward.len() {
                return Err(format!(
                    "dynamics reference path {max}, topology has {} paths",
                    self.forward.len()
                ));
            }
        }
        for e in dynamics.events() {
            if e.at < self.queue.now() {
                return Err(format!(
                    "dynamics event at {} lies in the past (now {})",
                    e.at,
                    self.queue.now()
                ));
            }
            self.queue.schedule(
                e.at,
                NetEvent::LinkChange {
                    dir: e.dir,
                    path: e.path,
                    change: e.change.clone(),
                },
            );
        }
        Ok(())
    }

    /// Installs a [`FaultPlan`]: schedules its link-level dynamics (flaps
    /// and correlated fault domains) and arms the per-direction
    /// packet-fault streams (corruption, duplication, bounded
    /// reordering). Call before running; composes with
    /// [`Self::apply_dynamics`].
    ///
    /// # Errors
    ///
    /// Returns a message if the plan's link events reference a path
    /// outside the topology or lie in the simulated past.
    pub fn apply_faults(&mut self, plan: &FaultPlan) -> Result<(), String> {
        self.apply_dynamics(plan.dynamics())?;
        if plan.has_packet_faults() {
            self.faults = Some(PacketFaults {
                forward: plan.stream(FAULT_SALT_FORWARD),
                backward: plan.stream(FAULT_SALT_BACKWARD),
            });
        }
        Ok(())
    }

    /// Packet-fault counters for one direction (zeros when no
    /// [`FaultPlan`] is installed).
    pub fn fault_stats(&self, dir: Dir) -> FaultStats {
        match &self.faults {
            Some(f) => match dir {
                Dir::Forward => f.forward.stats(),
                Dir::Backward => f.backward.stats(),
            },
            None => FaultStats::default(),
        }
    }

    /// Publishes the run's simulator-side telemetry into a registry:
    /// the per-direction packet-fault counters under `sim.fwd.*` /
    /// `sim.bwd.*`, the dispatched-event total as `sim.events`, and the
    /// event total folded into the registry's logical clock (via
    /// [`dmc_obs::Obs::advance_to`], so re-publishing is clock-idempotent).
    ///
    /// MIGRATION: this is the registry-facing face of
    /// [`TwoHostSim::fault_stats`]; the per-direction accessor remains
    /// the source of truth for a single simulation. Counters are
    /// cumulative — call this once per simulation per registry.
    pub fn publish_obs(&self, obs: &dmc_obs::Obs) {
        if !obs.is_enabled() {
            return;
        }
        let fwd = self.fault_stats(Dir::Forward);
        obs.counter("sim.fwd.corrupted").add(fwd.corrupted);
        obs.counter("sim.fwd.duplicated").add(fwd.duplicated);
        obs.counter("sim.fwd.reordered").add(fwd.reordered);
        let bwd = self.fault_stats(Dir::Backward);
        obs.counter("sim.bwd.corrupted").add(bwd.corrupted);
        obs.counter("sim.bwd.duplicated").add(bwd.duplicated);
        obs.counter("sim.bwd.reordered").add(bwd.reordered);
        obs.counter("sim.events").add(self.events_processed);
        obs.advance_to(self.events_processed);
    }

    fn start_if_needed(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        let mut api = SimApi {
            now: self.queue.now(),
            host: HostId::Client,
            outgoing: &mut self.forward,
            queue: &mut self.queue,
            faults: self.faults.as_mut().map(|f| &mut f.forward),
        };
        self.client.on_start(&mut api);
        let mut api = SimApi {
            now: self.queue.now(),
            host: HostId::Server,
            outgoing: &mut self.backward,
            queue: &mut self.queue,
            faults: self.faults.as_mut().map(|f| &mut f.backward),
        };
        self.server.on_start(&mut api);
    }

    /// Runs until the event queue drains or `end` is reached (events at
    /// exactly `end` still run). Returns the number of events processed
    /// by this call.
    pub fn run_until(&mut self, end: SimTime) -> u64 {
        self.start_if_needed();
        let before = self.events_processed;
        while let Some(next) = self.queue.peek_time() {
            if next > end {
                break;
            }
            let (now, event) = self
                .queue
                .pop()
                .expect("queue verified non-empty by the peek above");
            self.events_processed += 1;
            match event {
                NetEvent::Departure { dir, path, size } => {
                    let link = match dir {
                        Dir::Forward => &mut self.forward[path],
                        Dir::Backward => &mut self.backward[path],
                    };
                    link.on_departure(size);
                }
                NetEvent::Arrival { dir, path, packet } => match dir {
                    // Forward traffic arrives at the server.
                    Dir::Forward => {
                        let mut api = SimApi {
                            now,
                            host: HostId::Server,
                            outgoing: &mut self.backward,
                            queue: &mut self.queue,
                            faults: self.faults.as_mut().map(|f| &mut f.backward),
                        };
                        self.server.on_packet(path, packet, &mut api);
                    }
                    Dir::Backward => {
                        let mut api = SimApi {
                            now,
                            host: HostId::Client,
                            outgoing: &mut self.forward,
                            queue: &mut self.queue,
                            faults: self.faults.as_mut().map(|f| &mut f.forward),
                        };
                        self.client.on_packet(path, packet, &mut api);
                    }
                },
                NetEvent::LinkChange { dir, path, change } => {
                    let link = match dir {
                        Dir::Forward => &mut self.forward[path],
                        Dir::Backward => &mut self.backward[path],
                    };
                    link.apply(&change);
                }
                NetEvent::Timer { host, key } => match host {
                    HostId::Client => {
                        let mut api = SimApi {
                            now,
                            host: HostId::Client,
                            outgoing: &mut self.forward,
                            queue: &mut self.queue,
                            faults: self.faults.as_mut().map(|f| &mut f.forward),
                        };
                        self.client.on_timer(key, &mut api);
                    }
                    HostId::Server => {
                        let mut api = SimApi {
                            now,
                            host: HostId::Server,
                            outgoing: &mut self.backward,
                            queue: &mut self.queue,
                            faults: self.faults.as_mut().map(|f| &mut f.backward),
                        };
                        self.server.on_timer(key, &mut api);
                    }
                },
            }
        }
        self.events_processed - before
    }

    /// Runs until the event queue is empty.
    pub fn run_to_completion(&mut self) -> u64 {
        self.run_until(SimTime::from_nanos(u64::MAX))
    }
}

/// SplitMix64-style seed derivation so each link gets an independent,
/// reproducible stream.
pub(crate) fn mix_seed(seed: u64, salt: u64, index: u64) -> u64 {
    let mut z = seed
        .wrapping_add(salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(index.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use dmc_stats::ConstantDelay;
    use std::sync::Arc;

    fn link(bw: f64, delay: f64, loss: f64) -> LinkConfig {
        LinkConfig {
            bandwidth_bps: bw,
            propagation: Arc::new(ConstantDelay::new(delay)),
            loss: loss.into(),
            queue_capacity_bytes: 1 << 20,
        }
    }

    /// Client: sends one packet at start, records the echo's arrival.
    #[derive(Default)]
    struct PingClient {
        echo_at: Option<SimTime>,
    }
    impl Agent for PingClient {
        fn on_start(&mut self, api: &mut SimApi<'_>) {
            assert!(api.send(0, Packet::new(1000, Bytes::new())));
        }
        fn on_packet(&mut self, _path: usize, _p: Packet, api: &mut SimApi<'_>) {
            self.echo_at = Some(api.now());
        }
        fn on_timer(&mut self, _key: u64, _api: &mut SimApi<'_>) {}
    }

    /// Server: echoes everything back on the same path.
    struct EchoServer;
    impl Agent for EchoServer {
        fn on_start(&mut self, _api: &mut SimApi<'_>) {}
        fn on_packet(&mut self, path: usize, p: Packet, api: &mut SimApi<'_>) {
            api.send(path, p);
        }
        fn on_timer(&mut self, _key: u64, _api: &mut SimApi<'_>) {}
    }

    #[test]
    fn ping_pong_rtt_is_exact() {
        // 1000 B at 1 Mbps = 8 ms serialization each way, 100 ms
        // propagation each way → echo at 216 ms.
        let mut sim = TwoHostSim::new(
            vec![link(1e6, 0.1, 0.0)],
            vec![link(1e6, 0.1, 0.0)],
            PingClient::default(),
            EchoServer,
            0,
        )
        .unwrap();
        sim.run_to_completion();
        let echo = sim.client().echo_at.expect("echo received");
        assert_eq!(echo.as_nanos(), 216_000_000);
        assert_eq!(sim.link_stats(Dir::Forward, 0).delivered, 1);
        assert_eq!(sim.link_stats(Dir::Backward, 0).delivered, 1);
    }

    /// Client that uses a periodic timer to send packets.
    struct TickerClient {
        sent: u64,
        limit: u64,
    }
    impl Agent for TickerClient {
        fn on_start(&mut self, api: &mut SimApi<'_>) {
            api.set_timer(SimTime::from_millis_helper(10), 1);
        }
        fn on_packet(&mut self, _path: usize, _p: Packet, _api: &mut SimApi<'_>) {}
        fn on_timer(&mut self, key: u64, api: &mut SimApi<'_>) {
            assert_eq!(key, 1);
            self.sent += 1;
            api.send(0, Packet::new(100, Bytes::new()));
            if self.sent < self.limit {
                api.set_timer(api.now() + crate::time::SimDuration::from_millis(10), 1);
            }
        }
    }
    impl SimTime {
        fn from_millis_helper(ms: u64) -> SimTime {
            SimTime::from_nanos(ms * 1_000_000)
        }
    }

    /// Server that counts arrivals.
    #[derive(Default)]
    struct CountingServer {
        received: u64,
    }
    impl Agent for CountingServer {
        fn on_start(&mut self, _api: &mut SimApi<'_>) {}
        fn on_packet(&mut self, _path: usize, _p: Packet, _api: &mut SimApi<'_>) {
            self.received += 1;
        }
        fn on_timer(&mut self, _key: u64, _api: &mut SimApi<'_>) {}
    }

    #[test]
    fn timers_drive_periodic_sending() {
        let mut sim = TwoHostSim::new(
            vec![link(1e7, 0.01, 0.0)],
            vec![link(1e7, 0.01, 0.0)],
            TickerClient { sent: 0, limit: 50 },
            CountingServer::default(),
            0,
        )
        .unwrap();
        sim.run_to_completion();
        assert_eq!(sim.client().sent, 50);
        assert_eq!(sim.server().received, 50);
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let mut sim = TwoHostSim::new(
            vec![link(1e7, 0.01, 0.0)],
            vec![link(1e7, 0.01, 0.0)],
            TickerClient {
                sent: 0,
                limit: 1000,
            },
            CountingServer::default(),
            0,
        )
        .unwrap();
        // Ticks at 10, 20, …; horizon 105 ms → 10 ticks.
        sim.run_until(SimTime::from_secs_f64(0.105));
        assert_eq!(sim.client().sent, 10);
    }

    #[test]
    fn construction_validation() {
        assert!(TwoHostSim::new(vec![], vec![], PingClient::default(), EchoServer, 0).is_err());
        assert!(TwoHostSim::new(
            vec![link(1e6, 0.1, 0.0)],
            vec![],
            PingClient::default(),
            EchoServer,
            0
        )
        .is_err());
    }

    #[test]
    fn dynamics_fail_and_recover_mid_run() {
        // Ticker sends every 10 ms for 1 s; the single path is down
        // between 300 ms and 600 ms, so ~30 of the 100 packets vanish at
        // the NIC and the rest arrive.
        let dynamics = Dynamics::new().path_failure(0, 0.300, 0.600).unwrap();
        let mut sim = TwoHostSim::new(
            vec![link(1e7, 0.001, 0.0)],
            vec![link(1e7, 0.001, 0.0)],
            TickerClient {
                sent: 0,
                limit: 100,
            },
            CountingServer::default(),
            0,
        )
        .unwrap();
        sim.apply_dynamics(&dynamics).unwrap();
        assert!(sim.link_is_up(Dir::Forward, 0));
        sim.run_to_completion();
        assert!(sim.link_is_up(Dir::Forward, 0), "recovered by the end");
        let received = sim.server().received;
        assert!(
            (65..=75).contains(&received),
            "received {received}, expected ~70 (30 ticks fall in the outage)"
        );
        assert_eq!(sim.link_stats(Dir::Forward, 0).dropped_down, 100 - received);
    }

    #[test]
    fn dynamics_validation_against_topology() {
        let dynamics = Dynamics::new().path_failure(3, 0.1, 0.2).unwrap();
        let mut sim = TwoHostSim::new(
            vec![link(1e7, 0.001, 0.0)],
            vec![link(1e7, 0.001, 0.0)],
            PingClient::default(),
            EchoServer,
            0,
        )
        .unwrap();
        assert!(sim.apply_dynamics(&dynamics).is_err());
        assert!(sim.apply_dynamics(&Dynamics::new()).is_ok());
    }

    #[test]
    fn fault_plan_duplication_doubles_deliveries() {
        let plan = crate::fault::FaultPlan::new(5)
            .with_duplication(1.0)
            .unwrap();
        let mut sim = TwoHostSim::new(
            vec![link(1e7, 0.01, 0.0)],
            vec![link(1e7, 0.01, 0.0)],
            TickerClient { sent: 0, limit: 40 },
            CountingServer::default(),
            0,
        )
        .unwrap();
        sim.apply_faults(&plan).unwrap();
        sim.run_to_completion();
        assert_eq!(sim.client().sent, 40);
        assert_eq!(sim.server().received, 80, "every frame delivered twice");
        assert_eq!(sim.fault_stats(Dir::Forward).duplicated, 40);
        assert_eq!(sim.fault_stats(Dir::Backward).duplicated, 0);
    }

    /// Client that sends payload-carrying packets; server collects them.
    struct PayloadClient {
        sent: u64,
        limit: u64,
    }
    impl Agent for PayloadClient {
        fn on_start(&mut self, api: &mut SimApi<'_>) {
            api.set_timer(SimTime::from_millis_helper(10), 1);
        }
        fn on_packet(&mut self, _path: usize, _p: Packet, _api: &mut SimApi<'_>) {}
        fn on_timer(&mut self, _key: u64, api: &mut SimApi<'_>) {
            self.sent += 1;
            api.send(0, Packet::new(100, Bytes::from(vec![0xAAu8; 16])));
            if self.sent < self.limit {
                api.set_timer(api.now() + crate::time::SimDuration::from_millis(10), 1);
            }
        }
    }
    #[derive(Default)]
    struct CollectingServer {
        payloads: Vec<Vec<u8>>,
    }
    impl Agent for CollectingServer {
        fn on_start(&mut self, _api: &mut SimApi<'_>) {}
        fn on_packet(&mut self, _path: usize, p: Packet, _api: &mut SimApi<'_>) {
            self.payloads.push(p.payload().to_vec());
        }
        fn on_timer(&mut self, _key: u64, _api: &mut SimApi<'_>) {}
    }

    #[test]
    fn fault_plan_corruption_flips_exactly_one_bit_reproducibly() {
        let run = || {
            let plan = crate::fault::FaultPlan::new(0xFA17)
                .with_corruption(1.0)
                .unwrap();
            let mut sim = TwoHostSim::new(
                vec![link(1e7, 0.01, 0.0)],
                vec![link(1e7, 0.01, 0.0)],
                PayloadClient { sent: 0, limit: 30 },
                CollectingServer::default(),
                0,
            )
            .unwrap();
            sim.apply_faults(&plan).unwrap();
            sim.run_to_completion();
            assert_eq!(sim.fault_stats(Dir::Forward).corrupted, 30);
            sim.server().payloads.clone()
        };
        let a = run();
        assert_eq!(a.len(), 30);
        for p in &a {
            let flipped: u32 = p.iter().map(|b| (b ^ 0xAAu8).count_ones()).sum();
            assert_eq!(flipped, 1, "exactly one bit flipped per frame");
        }
        assert_eq!(a, run(), "same seed, same corrupted bytes");
    }

    #[test]
    fn fault_plan_reordering_stays_within_window() {
        // With a 5 ms window and 10 ms inter-send spacing, frames can be
        // delayed but never leapfrogged by more than one slot; deliveries
        // stay deterministic.
        let run = || {
            let plan = crate::fault::FaultPlan::new(0x0DD)
                .with_reordering(0.8, crate::time::SimDuration::from_millis(5))
                .unwrap();
            let mut sim = TwoHostSim::new(
                vec![link(1e7, 0.01, 0.0)],
                vec![link(1e7, 0.01, 0.0)],
                TickerClient {
                    sent: 0,
                    limit: 100,
                },
                CountingServer::default(),
                0,
            )
            .unwrap();
            sim.apply_faults(&plan).unwrap();
            sim.run_to_completion();
            (sim.server().received, sim.fault_stats(Dir::Forward))
        };
        let (received, stats) = run();
        assert_eq!(received, 100, "reordering delays but never drops");
        assert!(stats.reordered > 50, "~80 of 100 reordered, got {stats:?}");
        assert_eq!((received, stats), run());
    }

    #[test]
    fn lossy_path_loses_packets_deterministically() {
        let run = |seed| {
            let mut sim = TwoHostSim::new(
                vec![link(1e7, 0.01, 0.5)],
                vec![link(1e7, 0.01, 0.0)],
                TickerClient {
                    sent: 0,
                    limit: 200,
                },
                CountingServer::default(),
                seed,
            )
            .unwrap();
            sim.run_to_completion();
            sim.server().received
        };
        let a = run(11);
        assert_eq!(a, run(11), "same seed, same outcome");
        // Roughly half arrive.
        assert!(a > 60 && a < 140, "received {a} of 200 at 50% loss");
    }
}
