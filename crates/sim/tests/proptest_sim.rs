//! Property-based tests for the simulator substrate.

use bytes::Bytes;
use dmc_sim::{EventQueue, Link, LinkConfig, Packet, SendOutcome, SimTime};
use dmc_stats::{ConstantDelay, Delay, ShiftedGamma};
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Events always pop in non-decreasing time order, FIFO within ties.
    #[test]
    fn event_queue_is_a_stable_priority_queue(times in proptest::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), (t, i));
        }
        let mut prev: Option<(u64, usize)> = None;
        while let Some((at, (t, i))) = q.pop() {
            prop_assert_eq!(at.as_nanos(), t);
            if let Some((pt, pi)) = prev {
                prop_assert!(t > pt || (t == pt && i > pi), "not stable: ({pt},{pi}) then ({t},{i})");
            }
            prev = Some((t, i));
        }
    }

    /// Arrival time = max(now, busy) + size/bandwidth + propagation, for
    /// any lossless constant-delay link, and departures never precede
    /// sends.
    #[test]
    fn link_timing_is_exact(
        bw_mbps in 1.0f64..1000.0,
        delay_ms in 0.0f64..500.0,
        sizes in proptest::collection::vec(64usize..2000, 1..50),
    ) {
        let mut link = Link::new(
            LinkConfig {
                bandwidth_bps: bw_mbps * 1e6,
                propagation: Arc::new(ConstantDelay::new(delay_ms / 1e3)),
                loss: 0.0.into(),
                queue_capacity_bytes: usize::MAX / 2,
            },
            0,
        );
        let mut busy_ns = 0u64;
        for (k, &size) in sizes.iter().enumerate() {
            let now = SimTime::from_nanos(k as u64 * 1000);
            let mut pkt = Packet::new(size, Bytes::new());
            match link.send(now, &mut pkt) {
                SendOutcome::Transmitted { departure, arrival: Some(arrival) } => {
                    let tx_ns = (size as f64 * 8.0 / (bw_mbps * 1e6) * 1e9).round() as u64;
                    let start = busy_ns.max(now.as_nanos());
                    let want_dep = start + tx_ns;
                    prop_assert!(departure.as_nanos().abs_diff(want_dep) <= 2,
                        "departure {} want {want_dep}", departure.as_nanos());
                    let prop_ns = (delay_ms / 1e3 * 1e9).round() as u64;
                    prop_assert!(arrival.as_nanos().abs_diff(want_dep + prop_ns) <= 3);
                    busy_ns = departure.as_nanos();
                    link.on_departure(size);
                }
                other => prop_assert!(false, "unexpected outcome {other:?}"),
            }
        }
    }

    /// On a jittery link delays are i.i.d. (arrivals ≥ departure, mean at
    /// the spec) and the measured loss rate concentrates around τ.
    #[test]
    fn lossy_jittery_link_invariants(seed in any::<u64>(), loss in 0.0f64..0.9) {
        let spec = ShiftedGamma::new(3.0, 0.004, 0.020).expect("valid");
        let spec_mean = spec.mean();
        let mut link = Link::new(
            LinkConfig {
                bandwidth_bps: 1e9,
                propagation: Arc::new(spec),
                loss: loss.into(),
                queue_capacity_bytes: usize::MAX / 2,
            },
            seed,
        );
        let n = 4_000u64;
        let mut lost = 0u64;
        let mut delay_sum = 0.0;
        let mut delivered = 0u64;
        for k in 0..n {
            let now = SimTime::from_nanos(k * 10_000);
            let mut pkt = Packet::new(200, Bytes::new());
            match link.send(now, &mut pkt) {
                SendOutcome::Transmitted { departure, arrival: Some(a) } => {
                    prop_assert!(a >= departure, "arrival before departure");
                    delay_sum += a.since(departure).as_secs_f64();
                    delivered += 1;
                }
                SendOutcome::Transmitted { arrival: None, .. } => lost += 1,
                other => prop_assert!(false, "unexpected outcome {other:?}"),
            }
            link.on_departure(200);
        }
        let rate = lost as f64 / n as f64;
        // 4σ binomial band.
        let sigma = (loss * (1.0 - loss) / n as f64).sqrt();
        prop_assert!((rate - loss).abs() <= 4.0 * sigma + 1e-3,
            "measured {rate} vs τ={loss}");
        if delivered > 500 {
            let mean = delay_sum / delivered as f64;
            prop_assert!((mean - spec_mean).abs() < 2e-3,
                "mean delay {mean} vs spec {spec_mean}");
        }
    }

    /// Queue occupancy accounting: sends minus departures, never negative,
    /// and overflow drops exactly when occupancy would exceed capacity.
    #[test]
    fn queue_accounting(ops in proptest::collection::vec(any::<bool>(), 1..300)) {
        let cap = 10 * 100;
        let mut link = Link::new(
            LinkConfig {
                bandwidth_bps: 1e6,
                propagation: Arc::new(ConstantDelay::new(0.0)),
                loss: 0.0.into(),
                queue_capacity_bytes: cap,
            },
            1,
        );
        let mut outstanding: Vec<usize> = Vec::new();
        let mut t = 0u64;
        for &send in &ops {
            t += 1;
            if send {
                let mut pkt = Packet::new(100, Bytes::new());
                let before = link.queued_bytes();
                match link.send(SimTime::from_nanos(t * 1_000_000), &mut pkt) {
                    SendOutcome::Transmitted { .. } => {
                        prop_assert!(before + 100 <= cap);
                        outstanding.push(100);
                    }
                    SendOutcome::DroppedQueueFull => {
                        prop_assert!(before + 100 > cap, "dropped with room: {before}");
                    }
                    other => prop_assert!(false, "unexpected outcome {other:?}"),
                }
            } else if let Some(size) = outstanding.pop() {
                link.on_departure(size);
            }
            prop_assert_eq!(link.queued_bytes(), outstanding.iter().sum::<usize>());
        }
    }
}
