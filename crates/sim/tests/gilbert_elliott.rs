//! Sim-vs-theory validation of the Gilbert–Elliott loss chain: the
//! simulated stationary loss rate must match the analytic stationary
//! probability within 3σ, where σ accounts for the chain's
//! autocorrelation (a naive i.i.d. binomial band would be too tight for
//! a bursty process and flag false failures).

use bytes::Bytes;
use dmc_sim::{GilbertElliott, Link, LinkConfig, LossModel, Packet, SendOutcome, SimTime};
use dmc_stats::ConstantDelay;
use std::sync::Arc;

/// Asymptotic standard deviation of the empirical loss rate over `n`
/// packets of the classic Gilbert chain (loss ⇔ bad state): the loss
/// indicator is a two-state Markov chain with lag-1 correlation
/// `r = 1 − p_gb − p_bg`, so `Var[mean] ≈ p(1−p)/n · (1+r)/(1−r)`.
fn chain_sigma(ge: &GilbertElliott, n: u64) -> f64 {
    let p = ge.stationary_loss();
    let r = 1.0 - ge.p_good_to_bad - ge.p_bad_to_good;
    (p * (1.0 - p) / n as f64 * (1.0 + r) / (1.0 - r)).sqrt()
}

fn measured_loss_rate(ge: GilbertElliott, n: u64, seed: u64) -> f64 {
    let mut link = Link::new(
        LinkConfig {
            bandwidth_bps: 1e9,
            propagation: Arc::new(ConstantDelay::new(0.0)),
            loss: LossModel::GilbertElliott(ge),
            queue_capacity_bytes: 1 << 20,
        },
        seed,
    );
    let mut lost = 0u64;
    for i in 0..n {
        let now = SimTime::from_nanos(i * 1_000);
        match link.send(now, &mut Packet::new(100, Bytes::new())) {
            SendOutcome::Transmitted { arrival: None, .. } => lost += 1,
            SendOutcome::Transmitted { .. } => {}
            other => panic!("unexpected outcome {other:?}"),
        }
        link.on_departure(100);
    }
    lost as f64 / n as f64
}

#[test]
fn stationary_loss_within_three_sigma_of_theory() {
    // ≥10k packets per chain; several operating points, classic Gilbert
    // (loss indicator = chain state, so the analytic σ is exact).
    let n = 20_000u64;
    for (seed, (p_gb, p_bg)) in [
        (11u64, (0.05, 0.25)), // bursty: mean burst 4, π_B = 1/6
        (12, (0.01, 0.09)),    // long bursts: mean burst ~11, π_B = 0.1
        (13, (0.30, 0.30)),    // fast-mixing: π_B = 1/2
    ] {
        let ge = GilbertElliott::classic(p_gb, p_bg).unwrap();
        let rate = measured_loss_rate(ge, n, seed);
        let p = ge.stationary_loss();
        let sigma = chain_sigma(&ge, n);
        assert!(
            (rate - p).abs() <= 3.0 * sigma,
            "p_gb={p_gb} p_bg={p_bg}: measured {rate:.4} vs stationary {p:.4} \
             (|Δ| = {:.4} > 3σ = {:.4})",
            (rate - p).abs(),
            3.0 * sigma
        );
    }
}

#[test]
fn general_ge_matches_mixed_stationary_loss() {
    // Non-degenerate state loss rates: stationary loss is the mixture
    // π_G·loss_good + π_B·loss_bad. The extra Bernoulli layer only
    // shrinks the variance, so the chain σ remains a valid (conservative)
    // band.
    let n = 30_000u64;
    let ge = GilbertElliott::new(0.04, 0.16, 0.02, 0.70).unwrap();
    let rate = measured_loss_rate(ge, n, 21);
    let p = ge.stationary_loss();
    let sigma = chain_sigma(&ge, n);
    assert!(
        (rate - p).abs() <= 3.0 * sigma,
        "measured {rate:.4} vs stationary {p:.4} (3σ = {:.4})",
        3.0 * sigma
    );
}

#[test]
fn bernoulli_same_rate_has_shorter_bursts_than_ge() {
    // The point of the model: identical stationary rate, different
    // correlation structure. Compare mean loss-burst lengths.
    let n = 30_000u64;
    let ge = GilbertElliott::classic(0.05, 0.25).unwrap();

    let burst_mean = |outcomes: &[bool]| {
        let (mut bursts, mut losses) = (0u64, 0u64);
        for (i, &l) in outcomes.iter().enumerate() {
            if l {
                losses += 1;
                if i == 0 || !outcomes[i - 1] {
                    bursts += 1;
                }
            }
        }
        losses as f64 / bursts.max(1) as f64
    };

    let run = |model: LossModel, seed: u64| -> Vec<bool> {
        let mut link = Link::new(
            LinkConfig {
                bandwidth_bps: 1e9,
                propagation: Arc::new(ConstantDelay::new(0.0)),
                loss: model,
                queue_capacity_bytes: 1 << 20,
            },
            seed,
        );
        (0..n)
            .map(|i| {
                let now = SimTime::from_nanos(i * 1_000);
                let lost = matches!(
                    link.send(now, &mut Packet::new(100, Bytes::new())),
                    SendOutcome::Transmitted { arrival: None, .. }
                );
                link.on_departure(100);
                lost
            })
            .collect()
    };

    let ge_bursts = burst_mean(&run(LossModel::GilbertElliott(ge), 31));
    let bern_bursts = burst_mean(&run(LossModel::Bernoulli(ge.stationary_loss()), 31));
    assert!(
        ge_bursts > 2.0 * bern_bursts,
        "GE bursts {ge_bursts:.2} should dwarf Bernoulli bursts {bern_bursts:.2}"
    );
}
