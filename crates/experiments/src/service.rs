//! Fleet-service driver: a seeded tenant script — batched offers,
//! cohort departures, outage/recovery cycles, a sprinkling of malformed
//! and corrupted frames — driven through the **wire front end** of the
//! sharded [`FleetService`] (every submission travels as an encoded
//! [`dmc_proto::wire`] frame and every answer comes back as a
//! [`DecisionFrame`]), with the merged event stream folded into the
//! service's FNV-1a decision hash.
//!
//! The script is a pure function of its seed, and the service's tick is
//! deterministic at any worker count, so the same `(seed, flows,
//! shards)` triple must produce the same decision hash at
//! `DMC_THREADS=1` and `DMC_THREADS=4` — the CI smoke pins exactly that.

use dmc_core::ScenarioPath;
use dmc_fleet::{FleetConfig, FleetService, ServiceConfig, ServiceEvent};
use dmc_proto::wire::{DecisionFrame, DepartFrame, LinkChangeFrame, OfferFrame, Verdict};
use dmc_sim::LinkChange;
use std::collections::VecDeque;

use crate::montecarlo::trial_seed;

/// Default shard count (`--shards`/`SHARDS` override it). Each shard is
/// one capacity region of two paths, so the wire path mask (128 bits)
/// caps the service at [`MAX_SHARDS`] shards.
pub const SHARDS_DEFAULT: usize = 8;

/// Wire-addressable ceiling: two paths per region, 128 mask bits.
pub const MAX_SHARDS: usize = 64;

/// Offers per tick in the scripted load.
const OFFERS_PER_TICK: u64 = 8;

/// The sharded fleet: `shards` capacity regions of a fat lossy path plus
/// a thin clean one (a Table-III-like pair per region, with
/// deterministic per-region variation), and the path groups declaring
/// the partition.
pub fn region_paths(shards: usize) -> (Vec<ScenarioPath>, Vec<Vec<usize>>) {
    let mut paths = Vec::new();
    let mut groups = Vec::new();
    for r in 0..shards {
        let v = r as f64;
        let fat = ScenarioPath::constant(60e6 + 5e6 * (v % 4.0), 0.350 + 0.020 * (v % 5.0), 0.15)
            .expect("literal path parameters are valid");
        let thin = ScenarioPath::constant(15e6 + 2e6 * (v % 3.0), 0.120, 0.0)
            .expect("literal path parameters are valid");
        let base = paths.len();
        paths.push(fat);
        paths.push(thin);
        groups.push(vec![base, base + 1]);
    }
    (paths, groups)
}

/// What a scripted run did and decided, aggregated from the event
/// stream (all counts deterministic for a fixed `(seed, flows, shards)`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceOutcome {
    /// Shards (= capacity regions) the service ran with.
    pub shards: usize,
    /// Worker threads of the parallel tick phase.
    pub workers: usize,
    /// Submissions the service consumed (offers + departs + link changes).
    pub submissions: u64,
    /// Ticks driven.
    pub ticks: u64,
    /// Offers admitted / rejected / answered `Invalid`.
    pub admitted: u64,
    /// Rejected offers.
    pub rejected: u64,
    /// Malformed offers answered with [`Verdict::Invalid`].
    pub invalid: u64,
    /// Of the admitted, how many were region-spanning splits.
    pub spanning_admitted: u64,
    /// Departures acknowledged with `found: true`.
    pub departed: u64,
    /// Capacity events (shed/revive/reject sweeps and link confirmations).
    pub capacity_events: u64,
    /// Corrupted frames the wire layer dropped (checksum refused).
    pub frames_dropped: u64,
    /// Decision frames received back.
    pub decision_frames: u64,
    /// The service's running FNV-1a hash over the merged event stream.
    pub decision_hash: u64,
}

struct Script {
    seed: u64,
    k: u64,
}

impl Script {
    fn next_u64(&mut self) -> u64 {
        self.k += 1;
        trial_seed(self.seed, self.k)
    }

    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn in_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.unit()
    }
}

/// Replays the seeded script of `flows` offers against a fresh
/// `shards`-region service with `workers` tick threads (0 = resolve via
/// `DMC_THREADS`), entirely over wire frames.
pub fn run_service_script(seed: u64, flows: u64, shards: usize, workers: usize) -> ServiceOutcome {
    run_service_script_obs(seed, flows, shards, workers, &dmc_obs::Obs::disabled()).0
}

/// [`run_service_script`] with the service's telemetry wired to `obs`;
/// additionally returns the service's merged
/// [`obs_snapshot`](FleetService::obs_snapshot) (parent registry plus
/// every shard fork, deterministic at any worker count).
pub fn run_service_script_obs(
    seed: u64,
    flows: u64,
    shards: usize,
    workers: usize,
    obs: &dmc_obs::Obs,
) -> (ServiceOutcome, dmc_obs::Snapshot) {
    let shards = shards.clamp(1, MAX_SHARDS);
    let (paths, groups) = region_paths(shards);
    let num_paths = paths.len();
    let mut service = FleetService::new(
        paths,
        &groups,
        ServiceConfig {
            workers,
            fleet: FleetConfig {
                obs: obs.clone(),
                ..FleetConfig::default()
            },
            grid: None,
        },
    )
    .expect("literal service parameters are valid");

    let mut script = Script { seed, k: 0 };
    let mut out = ServiceOutcome {
        shards,
        workers: service.workers(),
        submissions: 0,
        ticks: 0,
        admitted: 0,
        rejected: 0,
        invalid: 0,
        spanning_admitted: 0,
        departed: 0,
        capacity_events: 0,
        frames_dropped: 0,
        decision_frames: 0,
        decision_hash: 0,
    };
    // Admitted cohorts by age; flows retire two ticks after admission.
    let mut live: VecDeque<Vec<u64>> = VecDeque::new();
    let mut spanning_seqs: Vec<u64> = Vec::new();
    let mut offered: u64 = 0;
    let mut failed_path: Option<usize> = None;

    while offered < flows || live.iter().any(|cohort| !cohort.is_empty()) {
        // Offers for this tick.
        let batch = OFFERS_PER_TICK.min(flows.saturating_sub(offered));
        for _ in 0..batch {
            let tag = offered;
            offered += 1;
            let roll = script.next_u64();
            let region = (roll % shards as u64) as usize;
            let spanning = shards > 1 && roll % 16 == 7;
            let subset: Vec<usize> = if spanning {
                let other = (region + 1) % shards;
                let mut s = groups[region].clone();
                s.extend(&groups[other]);
                s.sort_unstable();
                s
            } else {
                groups[region].clone()
            };
            let mut frame = OfferFrame {
                seq: tag,
                data_rate: script.in_range(3e6, 12e6),
                lifetime: script.in_range(0.5, 1.2),
                min_quality: script.in_range(0.0, 0.7),
                cost_budget: f64::INFINITY,
                priority: 1.0 + script.in_range(0.0, 3.0),
                transmissions: 2,
                path_mask: OfferFrame::mask_for(&subset)
                    .expect("region paths stay within the 128-bit mask"),
            };
            // Every 32nd offer is deliberately malformed (negative
            // rate) to exercise the Invalid verdict path…
            if roll % 32 == 19 {
                frame.data_rate = -frame.data_rate;
            }
            let encoded = frame.encode();
            // …and every 64th frame arrives corrupted and must be
            // dropped by the checksum, consuming nothing.
            if roll % 64 == 33 {
                let mut corrupt = encoded.to_vec();
                corrupt[12] ^= 0x08;
                assert!(
                    service.handle_frame(&corrupt).is_none(),
                    "corrupted frame must be refused"
                );
                out.frames_dropped += 1;
                continue;
            }
            let seq = service
                .handle_frame(&encoded)
                .expect("well-formed offer frame is consumed");
            if spanning {
                spanning_seqs.push(seq);
            }
        }

        // Retire the cohort admitted two ticks ago.
        if live.len() >= 2 {
            if let Some(cohort) = live.pop_front() {
                for flow in cohort {
                    let frame = DepartFrame { seq: flow, flow };
                    service
                        .handle_frame(&frame.encode())
                        .expect("well-formed depart frame is consumed");
                }
            }
        }

        // Outage/recovery cycle: fail a rotating path for one tick.
        if let Some(path) = failed_path.take() {
            let frame = LinkChangeFrame::from_change(0, path as u16, &LinkChange::Recover);
            service
                .handle_frame(&frame.encode())
                .expect("well-formed link frame is consumed");
        } else if out.ticks % 5 == 3 {
            let path = ((out.ticks * 7) as usize) % num_paths;
            let frame = LinkChangeFrame::from_change(0, path as u16, &LinkChange::Fail);
            service
                .handle_frame(&frame.encode())
                .expect("well-formed link frame is consumed");
            failed_path = Some(path);
        }

        let (frames, events) = service.tick_frames().expect("scripted tick succeeds");
        out.ticks += 1;
        out.decision_frames += frames.len() as u64;
        let mut cohort = Vec::new();
        for frame in &frames {
            let decision = DecisionFrame::decode(frame).expect("service emits valid frames");
            match decision.verdict {
                Verdict::Admitted => {
                    out.admitted += 1;
                    if spanning_seqs.contains(&decision.flow) {
                        out.spanning_admitted += 1;
                    }
                    cohort.push(decision.flow);
                }
                Verdict::Rejected => out.rejected += 1,
                Verdict::Invalid => out.invalid += 1,
            }
        }
        live.push_back(cohort);
        for event in &events {
            match event {
                ServiceEvent::Capacity { .. } => out.capacity_events += 1,
                ServiceEvent::Departed { found: true, .. } => out.departed += 1,
                _ => {}
            }
        }
        // Flows shed then definitively rejected never see a depart; the
        // cohorts above only hold wire-confirmed admissions, so the
        // loop terminates once offers stop.
        if offered >= flows && live.iter().all(|cohort| cohort.is_empty()) {
            break;
        }
    }

    out.submissions = service.submissions();
    out.decision_hash = service.decision_hash();
    let snapshot = service.obs_snapshot();
    (out, snapshot)
}

/// Runs the same script at 1 and 4 workers and returns the common
/// decision hash, or an error describing the divergence.
pub fn determinism_check(seed: u64, flows: u64, shards: usize) -> Result<u64, String> {
    let sequential = run_service_script(seed, flows, shards, 1);
    let parallel = run_service_script(seed, flows, shards, 4);
    if sequential.decision_hash != parallel.decision_hash {
        return Err(format!(
            "decision hashes diverge across worker counts: {:#x} (1 worker) vs {:#x} (4 workers)",
            sequential.decision_hash, parallel.decision_hash
        ));
    }
    Ok(sequential.decision_hash)
}

/// Renders one outcome as the driver's report block.
pub fn render(out: &ServiceOutcome) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "- {} shard(s) × 2 paths, {} worker(s): {} submission(s) over {} tick(s), \
         {} decision frame(s)\n",
        out.shards, out.workers, out.submissions, out.ticks, out.decision_frames
    ));
    s.push_str(&format!(
        "- admitted {} ({} spanning), rejected {}, invalid {}, departed {}\n",
        out.admitted, out.spanning_admitted, out.rejected, out.invalid, out.departed
    ));
    s.push_str(&format!(
        "- {} capacity event(s), {} corrupted frame(s) dropped\n",
        out.capacity_events, out.frames_dropped
    ));
    s.push_str(&format!("- decision hash {:#018x}\n", out.decision_hash));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn script_is_deterministic_and_worker_invariant() {
        let a = run_service_script(0xFEED, 48, 4, 1);
        let b = run_service_script(0xFEED, 48, 4, 4);
        assert_eq!(a.decision_hash, b.decision_hash);
        assert_eq!(
            a,
            ServiceOutcome {
                workers: a.workers,
                ..b.clone()
            },
            "whole outcome must be worker-invariant"
        );
        assert!(a.admitted > 0, "script admits flows: {a:?}");
        assert!(a.invalid > 0, "script exercises invalid offers");
        assert!(a.frames_dropped > 0, "script exercises corrupted frames");
        assert!(a.capacity_events > 0, "script exercises link changes");
        // Different seed, different stream.
        let c = run_service_script(0xBEEF, 48, 4, 1);
        assert_ne!(a.decision_hash, c.decision_hash);
    }
}
