//! Experiment 2: the random-delay extension end-to-end — Eq. 34 timeouts,
//! expected quality, and the gamma-delay simulation (paper: 93,332 of
//! 100,000 messages in time; expected 93.3 %).

use crate::montecarlo::{run_plan_trials, MonteCarloConfig};
use crate::runner::{RunConfig, RunOutcome, TrueNetwork};
use crate::scenarios;
use dmc_core::{Objective, Planner};
use dmc_stats::TrialStats;

/// Everything Experiment 2 reports.
#[derive(Debug, Clone)]
pub struct Experiment2Result {
    /// `t(1,2)` in seconds (paper: 615 ms).
    pub t12: Option<f64>,
    /// `t(2,1)` in seconds (paper: 252 ms).
    pub t21: Option<f64>,
    /// `t(2,2)` in seconds (paper: 323 ms, on a wide plateau).
    pub t22: Option<f64>,
    /// `t(1,1)` — the paper says undefined (must be `None`).
    pub t11: Option<f64>,
    /// Model-expected quality (paper: 93.3 %).
    pub expected_quality: f64,
    /// Trial 0's simulation outcome (counter detail).
    pub outcome: RunOutcome,
    /// Measured quality across all trials.
    pub quality_trials: TrialStats,
}

/// Runs the full experiment through the Monte-Carlo engine: λ = 90 Mbps,
/// δ = 750 ms, Table V network, `mc.trials` independently seeded
/// simulations. The true links are over-provisioned ×1.5 (the paper
/// over-provisions to isolate the delay distribution from queueing).
///
/// # Errors
///
/// Forwards solver/simulation failures as strings.
pub fn run_mc(cfg: &RunConfig, mc: &MonteCarloConfig) -> Result<Experiment2Result, String> {
    let scenario = scenarios::table5_scenario(90e6, 0.750);
    let plan = Planner::new()
        .plan(&scenario, Objective::MaxQuality)
        .map_err(|e| e.to_string())?;
    let true_net = TrueNetwork::from_random(&scenarios::table5(90e6, 0.750)).over_provisioned(1.5);
    let report = run_plan_trials(&plan, &true_net, cfg, mc)?;
    Ok(Experiment2Result {
        t12: plan.timeout(0, 1),
        t21: plan.timeout(1, 0),
        t22: plan.timeout(1, 1),
        t11: plan.timeout(0, 0),
        expected_quality: plan.quality(),
        outcome: report.first,
        quality_trials: report.quality,
    })
}

/// [`run_mc`] with one trial seeded from `cfg.seed` (the paper's
/// single-run protocol).
///
/// # Errors
///
/// Forwards solver/simulation failures as strings.
pub fn run(cfg: &RunConfig) -> Result<Experiment2Result, String> {
    run_mc(cfg, &MonteCarloConfig::single(cfg.seed))
}

/// Renders the result in the paper's terms.
pub fn render(r: &Experiment2Result) -> String {
    let ms = |t: Option<f64>| {
        t.map(|v| format!("{:.0} ms", v * 1e3))
            .unwrap_or_else(|| "undefined".into())
    };
    let mut out = String::new();
    out.push_str("Experiment 2 (Table V, λ=90 Mbps, δ=750 ms)\n");
    out.push_str(&format!("  t(1,2) = {:>9}   (paper: 615 ms)\n", ms(r.t12)));
    out.push_str(&format!("  t(2,1) = {:>9}   (paper: 252 ms)\n", ms(r.t21)));
    out.push_str(&format!(
        "  t(2,2) = {:>9}   (paper: 323 ms, wide plateau)\n",
        ms(r.t22)
    ));
    out.push_str(&format!(
        "  t(1,1) = {:>9}   (paper: undefined)\n",
        ms(r.t11)
    ));
    out.push_str(&format!(
        "  expected quality  = {:.2}%  (paper: 93.3%)\n",
        r.expected_quality * 100.0
    ));
    out.push_str(&format!(
        "  simulated quality = {:.2}%  ({} of {} in time; paper: 93,332 of 100,000)\n",
        r.outcome.quality * 100.0,
        r.outcome.receiver.unique_in_time,
        r.outcome.sender.generated,
    ));
    if r.quality_trials.count() > 1 {
        out.push_str(&format!(
            "  across trials     = {}\n",
            r.quality_trials.summary(0.95)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment2_reproduces_paper() {
        let mut cfg = RunConfig::default();
        cfg.messages = 20_000; // fast CI variant; the bin runs 100k
        let r = run(&cfg).unwrap();
        assert!(r.t11.is_none(), "t(1,1) must be undefined");
        let t12 = r.t12.expect("t(1,2)");
        assert!((0.585..=0.645).contains(&t12), "t12 = {t12}");
        let t21 = r.t21.expect("t(2,1)");
        assert!((0.230..=0.270).contains(&t21), "t21 = {t21}");
        assert!(
            (r.expected_quality - 0.9333).abs() < 0.005,
            "expected {}",
            r.expected_quality
        );
        assert!(
            (r.outcome.quality - 0.9333).abs() < 0.01,
            "simulated {}",
            r.outcome.quality
        );
    }
}
