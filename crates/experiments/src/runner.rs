//! Wires the protocol into the simulator and measures communication
//! quality — the paper's experimental loop (§VII-A).
//!
//! Every entry point routes through the `Scenario` → [`Planner`] →
//! [`Plan`] pipeline and builds its sender from the plan; the legacy
//! [`run_strategy`] remains for callers that assembled the pieces by
//! hand.

use dmc_core::{
    ModelConfig, NetworkSpec, Objective, Plan, Planner, PlannerConfig, RandomDelayConfig,
    RandomNetworkSpec, Scenario, Strategy,
};
use dmc_proto::{
    DmcReceiver, DmcSender, ReceiverConfig, ReceiverStats, SenderConfig, SenderStats, TimeoutPlan,
};
use dmc_sim::{
    Dir, Dynamics, FaultPlan, FaultStats, LinkConfig, LossModel, SimDuration, TwoHostSim,
};
use dmc_stats::{ConstantDelay, Delay};
use std::sync::Arc;

/// The *actual* network the simulation runs on (as opposed to the model
/// the sender solved — they differ in the sensitivity experiments).
#[derive(Debug, Clone)]
pub struct TrueNetwork {
    links: Vec<TrueLink>,
}

/// One true path: what the simulator links are configured with.
#[derive(Debug, Clone)]
pub struct TrueLink {
    /// Link rate, bits/second.
    pub bandwidth: f64,
    /// Propagation-delay distribution.
    pub delay: Arc<dyn Delay>,
    /// Packet erasure process (Bernoulli or Gilbert–Elliott).
    pub loss: LossModel,
}

impl TrueNetwork {
    /// True links from explicit per-link configurations — e.g. the fleet
    /// experiment running each admitted flow on its *allocated slice* of
    /// the shared paths rather than on their full bandwidth.
    pub fn from_links(links: Vec<TrueLink>) -> Self {
        TrueNetwork { links }
    }

    /// True links from a deterministic scenario (constant delays).
    pub fn deterministic(net: &NetworkSpec) -> Self {
        TrueNetwork {
            links: net
                .paths()
                .iter()
                .map(|p| TrueLink {
                    bandwidth: p.bandwidth(),
                    delay: Arc::new(ConstantDelay::new(p.delay())),
                    loss: p.loss().into(),
                })
                .collect(),
        }
    }

    /// True links from a unified [`Scenario`] (either regime: the delay
    /// distributions are shared with the simulator links).
    pub fn from_scenario(scenario: &Scenario) -> Self {
        TrueNetwork {
            links: scenario
                .paths()
                .iter()
                .map(|p| TrueLink {
                    bandwidth: p.bandwidth(),
                    delay: Arc::clone(p.delay()),
                    loss: p.loss().into(),
                })
                .collect(),
        }
    }

    /// True links from a random-delay scenario.
    pub fn from_random(net: &RandomNetworkSpec) -> Self {
        TrueNetwork {
            links: net
                .paths()
                .iter()
                .map(|p| TrueLink {
                    bandwidth: p.bandwidth(),
                    delay: Arc::clone(p.delay()),
                    loss: p.loss().into(),
                })
                .collect(),
        }
    }

    /// Scales every link's bandwidth by `factor` — the paper's Exp. 2
    /// over-provisioning ("we over-provisioned both paths … but only used
    /// the allowed amount specified in the model"), which prevents the
    /// sender's 100 %-utilization optimum from building an unbounded
    /// queue.
    ///
    /// # Panics
    ///
    /// Panics unless `factor ≥ 1`.
    #[must_use]
    pub fn over_provisioned(mut self, factor: f64) -> Self {
        assert!(factor >= 1.0, "over-provisioning factor must be ≥ 1");
        for l in &mut self.links {
            l.bandwidth *= factor;
        }
        self
    }

    /// Replaces one path's erasure process — e.g. swap a Bernoulli
    /// truth for a Gilbert–Elliott chain with the same stationary rate
    /// while the model keeps planning against `τ_i`.
    ///
    /// # Panics
    ///
    /// Panics if `path` is out of range or the model is invalid.
    #[must_use]
    pub fn with_loss_model(mut self, path: usize, model: LossModel) -> Self {
        model.validate().expect("invalid loss model");
        self.links[path].loss = model;
        self
    }

    /// Number of paths.
    pub fn num_paths(&self) -> usize {
        self.links.len()
    }

    /// The links.
    pub fn links(&self) -> &[TrueLink] {
        &self.links
    }
}

/// Knobs of one simulation run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Messages to generate (paper: 100,000).
    pub messages: u64,
    /// Simulation seed.
    pub seed: u64,
    /// Extra slack on retransmission timeouts (paper Exp. 1: 100 ms).
    pub rto_extra: SimDuration,
    /// On-wire message size (paper: 1024 B).
    pub message_bytes: usize,
    /// Link queue capacity in bytes.
    pub queue_capacity: usize,
    /// Fast-retransmit dup threshold (§VIII-D), `None` = off.
    pub fast_retransmit: Option<u32>,
    /// Scheduled link dynamics (path failures, bandwidth steps, loss
    /// changes); empty = the paper's static links.
    pub dynamics: Dynamics,
    /// Seeded fault injection (payload corruption, duplication, bounded
    /// reordering, flaps, correlated fault domains); `None` = a clean
    /// run. The plan's link schedule composes with `dynamics`.
    pub faults: Option<FaultPlan>,
    /// Telemetry registry. When enabled, every run publishes its
    /// endpoint counters (`proto.tx.*` / `proto.rx.*`), the simulator's
    /// fault and event counters (`sim.*`), and a `runner.runs` counter;
    /// the registry's logical clock advances to the dispatched-event
    /// total. Disabled (the default) costs nothing.
    pub obs: dmc_obs::Obs,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            messages: 100_000,
            seed: 0xDEAD_BEEF,
            rto_extra: SimDuration::from_millis(100),
            message_bytes: 1024,
            // 100 × 1024-byte packets: ns-3's default drop-tail queue, the
            // substrate the paper ran on. This bounds queueing delay to
            // ~10 ms (80 Mbps) / ~41 ms (20 Mbps) — the "up to 50 ms"
            // deviation the paper reports — and produces the
            // overflow-loss behaviour Fig. 3 (top, right half) relies on.
            queue_capacity: 100 * 1024,
            fast_retransmit: None,
            dynamics: Dynamics::new(),
            faults: None,
            obs: dmc_obs::Obs::disabled(),
        }
    }
}

/// Result of one simulation run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Measured quality: unique in-time deliveries / generated.
    pub quality: f64,
    /// The model's predicted quality for the strategy that ran.
    pub predicted_quality: f64,
    /// Sender counters.
    pub sender: SenderStats,
    /// Receiver counters.
    pub receiver: ReceiverStats,
    /// Packet faults injected on the data direction (all zero when
    /// [`RunConfig::faults`] is `None`).
    pub faults_injected: FaultStats,
}

/// Runs a solved [`Plan`] on a true network: the sender, its timeouts,
/// the data rate, the receiver deadline and the ack path all come from
/// the plan — nothing is hand-wired.
///
/// Timeout slack follows the paper's practice: deterministic plans add
/// `cfg.rto_extra` (Exp. 1's 100 ms jitter margin); random-delay plans
/// add none, because Eq. 34 already accounts for the delay distribution.
///
/// # Errors
///
/// Returns a message when the plan's path count does not match the true
/// network or topology construction fails.
pub fn run_plan(
    plan: &Plan,
    true_net: &TrueNetwork,
    cfg: &RunConfig,
) -> Result<RunOutcome, String> {
    let extra = if plan.scenario().is_deterministic() {
        cfg.rto_extra
    } else {
        SimDuration::ZERO
    };
    run_strategy(
        plan.strategy().clone(),
        TimeoutPlan::from_plan(plan, extra),
        true_net,
        plan.scenario().data_rate(),
        plan.scenario().lifetime(),
        plan.ack_path(),
        cfg,
    )
}

/// Maps the legacy [`ModelConfig`] solver knobs onto a [`Planner`].
fn planner_from_model_config(model_cfg: &ModelConfig) -> Planner {
    Planner::with_config(PlannerConfig {
        blackhole: model_cfg.blackhole,
        solver: model_cfg.solver.clone(),
        ..PlannerConfig::default()
    })
}

/// Runs an already-solved strategy on a true network.
///
/// `lambda` is the generation rate, `lifetime` the receiver's deadline,
/// `ack_path` the reverse path acknowledgments use.
///
/// Legacy shim: prefer [`run_plan`], which extracts all of these from a
/// [`Plan`].
///
/// # Errors
///
/// Returns a message when the topology construction fails (mismatched
/// path counts, invalid link parameters).
#[allow(clippy::too_many_arguments)]
pub fn run_strategy(
    strategy: Strategy,
    timeouts: TimeoutPlan,
    true_net: &TrueNetwork,
    lambda: f64,
    lifetime: f64,
    ack_path: usize,
    cfg: &RunConfig,
) -> Result<RunOutcome, String> {
    if strategy.table().num_paths() != true_net.num_paths() {
        return Err(format!(
            "strategy has {} paths, true network {}",
            strategy.table().num_paths(),
            true_net.num_paths()
        ));
    }
    let predicted_quality = strategy.quality();
    let mk_links = || -> Vec<LinkConfig> {
        true_net
            .links
            .iter()
            .map(|l| LinkConfig {
                bandwidth_bps: l.bandwidth,
                propagation: Arc::clone(&l.delay),
                loss: l.loss.clone(),
                queue_capacity_bytes: cfg.queue_capacity,
            })
            .collect()
    };
    let mut sender_cfg = SenderConfig::new(strategy, timeouts, lambda, cfg.messages);
    sender_cfg.message_wire_bytes = cfg.message_bytes;
    sender_cfg.fast_retransmit = cfg.fast_retransmit;
    let sender = DmcSender::new(sender_cfg);
    let receiver = DmcReceiver::new(ReceiverConfig::new(
        SimDuration::from_secs_f64(lifetime),
        ack_path,
    ));
    let mut sim = TwoHostSim::new(mk_links(), mk_links(), sender, receiver, cfg.seed)?;
    sim.apply_dynamics(&cfg.dynamics)?;
    if let Some(plan) = &cfg.faults {
        sim.apply_faults(plan)?;
    }
    sim.run_to_completion();
    if cfg.obs.is_enabled() {
        cfg.obs.counter("runner.runs").inc();
        sim.client().stats().publish_obs(&cfg.obs);
        sim.server().stats().publish_obs(&cfg.obs);
        sim.publish_obs(&cfg.obs);
    }
    let faults_injected = sim.fault_stats(Dir::Forward);
    let sender = sim.client().stats();
    let receiver = sim.server().stats();
    let quality = if sender.generated == 0 {
        0.0
    } else {
        receiver.unique_in_time as f64 / sender.generated as f64
    };
    Ok(RunOutcome {
        quality,
        predicted_quality,
        sender,
        receiver,
        faults_injected,
    })
}

/// Solves the deterministic model for `model_net` (what the sender
/// *believes*) and runs it on `true_net`. Retransmission timeouts are
/// derived from the same believed delays.
///
/// # Errors
///
/// Forwards model/solver and topology errors as strings.
pub fn run_deterministic(
    model_net: &NetworkSpec,
    true_net: &TrueNetwork,
    model_cfg: &ModelConfig,
    cfg: &RunConfig,
) -> Result<RunOutcome, String> {
    let mut planner = planner_from_model_config(model_cfg);
    run_deterministic_with(
        &mut planner,
        model_net,
        model_cfg.transmissions,
        true_net,
        cfg,
    )
}

/// [`run_deterministic`] through a caller-owned [`Planner`].
///
/// Sweeps that solve many same-shaped models (Figure 2/3 curves, Table IV
/// rows with simulation) should hold one planner across all points: its
/// LP workspace is reused and each point warm-starts from the previous
/// point's optimal basis.
///
/// # Errors
///
/// Forwards model/solver and topology errors as strings.
pub fn run_deterministic_with(
    planner: &mut Planner,
    model_net: &NetworkSpec,
    transmissions: usize,
    true_net: &TrueNetwork,
    cfg: &RunConfig,
) -> Result<RunOutcome, String> {
    let scenario = Scenario::from_network(model_net).with_transmissions(transmissions);
    let plan = planner
        .plan(&scenario, Objective::MaxQuality)
        .map_err(|e| e.to_string())?;
    run_plan(&plan, true_net, cfg)
}

/// The paper's Experiment 1/3 procedure, which splits the sender's
/// knowledge in two:
///
/// * the **LP model** uses *conservatively inflated* delays
///   (`measured + margin`) so boundary combinations don't miss the
///   deadline by a few milliseconds of queueing ("we conservatively set
///   delays to 450 and 150 ms in our model");
/// * the **retransmission timeouts** use the *measured* delays
///   (`t_i = d_i + d_min + extra`, the paper's 100 ms rule) — inflating
///   them too would push retransmissions past the deadline.
///
/// `measured` is the sender's belief of the raw characteristics (in the
/// sensitivity experiments it carries the injected estimation error).
///
/// # Errors
///
/// Forwards model/solver and topology errors as strings.
pub fn run_measured(
    measured: &NetworkSpec,
    margin_s: f64,
    true_net: &TrueNetwork,
    model_cfg: &ModelConfig,
    cfg: &RunConfig,
) -> Result<RunOutcome, String> {
    let mut planner = planner_from_model_config(model_cfg);
    run_measured_with(
        &mut planner,
        measured,
        margin_s,
        model_cfg.transmissions,
        true_net,
        cfg,
    )
}

/// [`run_measured`] through a caller-owned [`Planner`] (see
/// [`run_deterministic_with`] for why sweeps want this: workspace reuse
/// plus warm-started LP solves across the sweep points).
///
/// # Errors
///
/// Forwards model/solver and topology errors as strings.
pub fn run_measured_with(
    planner: &mut Planner,
    measured: &NetworkSpec,
    margin_s: f64,
    transmissions: usize,
    true_net: &TrueNetwork,
    cfg: &RunConfig,
) -> Result<RunOutcome, String> {
    let scenario = Scenario::from_network(measured).with_transmissions(transmissions);
    let plan = planner
        .plan_with_margin(&scenario, margin_s, Objective::MaxQuality)
        .map_err(|e| e.to_string())?;
    run_plan(&plan, true_net, cfg)
}

/// Solves the random-delay model and runs it on the matching gamma-delay
/// links (Experiment 2). Timeouts come from Eq. 34 with no extra slack —
/// the optimization already accounts for the delay distribution.
///
/// # Errors
///
/// Forwards model/solver and topology errors as strings.
pub fn run_random_delay(
    net: &RandomNetworkSpec,
    rd_cfg: &RandomDelayConfig,
    over_provision: f64,
    cfg: &RunConfig,
) -> Result<RunOutcome, String> {
    let scenario = Scenario::from_random(net).with_transmissions(rd_cfg.transmissions);
    let mut planner = Planner::with_config(PlannerConfig {
        blackhole: rd_cfg.blackhole,
        grid_step: rd_cfg.grid_step,
        plateau: rd_cfg.plateau,
        ..PlannerConfig::default()
    });
    let plan = planner
        .plan(&scenario, Objective::MaxQuality)
        .map_err(|e| e.to_string())?;
    let true_net = TrueNetwork::from_random(net).over_provisioned(over_provision);
    run_plan(&plan, &true_net, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios;
    use dmc_core::optimal_strategy;

    #[test]
    fn plan_pipeline_matches_legacy_strategy_wiring() {
        // run_plan and the legacy run_strategy hand-wiring must produce
        // identical simulations (same strategy, timeouts, seed).
        let model = scenarios::table3_model(60e6, 0.8);
        let truth = TrueNetwork::deterministic(&model);
        let mut cfg = RunConfig::default();
        cfg.messages = 2_000;

        let legacy = {
            let strategy = optimal_strategy(&model, &ModelConfig::default()).unwrap();
            let timeouts = TimeoutPlan::deterministic(&model, strategy.table(), cfg.rto_extra);
            run_strategy(
                strategy,
                timeouts,
                &truth,
                model.data_rate(),
                model.lifetime(),
                model.min_delay_path(),
                &cfg,
            )
            .unwrap()
        };
        let planned = {
            let plan = Planner::new()
                .plan(&Scenario::from_network(&model), Objective::MaxQuality)
                .unwrap();
            run_plan(&plan, &truth, &cfg).unwrap()
        };
        assert_eq!(planned.sender, legacy.sender);
        assert_eq!(planned.receiver, legacy.receiver);
        assert_eq!(planned.quality, legacy.quality);
        assert_eq!(planned.predicted_quality, legacy.predicted_quality);
    }

    #[test]
    fn experiment1_point_tracks_theory() {
        // λ = 60 Mbps, δ = 800 ms: theory says Q = 1.0 (Table IV).
        let measured = scenarios::table3_true(60e6, 0.8);
        let truth = TrueNetwork::deterministic(&measured);
        let mut cfg = RunConfig::default();
        cfg.messages = 5_000;
        let out = run_measured(
            &measured,
            scenarios::QUEUE_MARGIN_S,
            &truth,
            &ModelConfig::default(),
            &cfg,
        )
        .unwrap();
        assert!((out.predicted_quality - 1.0).abs() < 1e-9);
        assert!(out.quality > 0.99, "sim quality {}", out.quality);
    }

    #[test]
    fn overloaded_point_matches_lower_theory() {
        // λ = 120 Mbps: theory says 70 % (Table IV); the blackhole absorbs
        // the rest at the source.
        let measured = scenarios::table3_true(120e6, 0.8);
        let truth = TrueNetwork::deterministic(&measured);
        let mut cfg = RunConfig::default();
        cfg.messages = 5_000;
        let out = run_measured(
            &measured,
            scenarios::QUEUE_MARGIN_S,
            &truth,
            &ModelConfig::default(),
            &cfg,
        )
        .unwrap();
        assert!((out.predicted_quality - 0.70).abs() < 1e-9);
        assert!(
            (out.quality - 0.70).abs() < 0.02,
            "sim quality {}",
            out.quality
        );
        assert!(out.sender.blackholed > 0);
    }

    #[test]
    fn gilbert_elliott_truth_under_bernoulli_model() {
        // Same stationary loss rate (20 %) on path 0, but bursty: mean
        // burst length 5. The plan (solved against Bernoulli τ = 0.2)
        // still runs; the paper's quality only needs the *rate*, so the
        // measured quality stays in the same regime — but bursts overrun
        // the per-message retransmit budget more often, so it must not
        // exceed the i.i.d. result by more than noise.
        use dmc_sim::GilbertElliott;
        let measured = scenarios::table3_true(60e6, 0.8);
        let truth = TrueNetwork::deterministic(&measured);
        let ge = GilbertElliott::classic(0.05, 0.2).unwrap();
        assert!((ge.stationary_loss() - 0.2).abs() < 1e-12);
        let bursty_truth = truth.clone().with_loss_model(0, ge.into());
        let mut cfg = RunConfig::default();
        cfg.messages = 8_000;
        let run = |truth: &TrueNetwork| {
            run_measured(
                &measured,
                scenarios::QUEUE_MARGIN_S,
                truth,
                &ModelConfig::default(),
                &cfg,
            )
            .unwrap()
            .quality
        };
        let q_iid = run(&truth);
        let q_bursty = run(&bursty_truth);
        assert!(q_iid > 0.99, "i.i.d. baseline {q_iid}");
        assert!(
            q_bursty > 0.9 && q_bursty <= q_iid + 0.005,
            "bursty {q_bursty} vs i.i.d. {q_iid}"
        );
    }

    #[test]
    fn strategy_path_count_must_match() {
        let model = scenarios::table3_model(60e6, 0.8);
        let strategy = optimal_strategy(&model, &ModelConfig::default()).unwrap();
        let timeouts =
            TimeoutPlan::deterministic(&model, strategy.table(), SimDuration::from_millis(100));
        let single = TrueNetwork::deterministic(&model.restricted_to_path(0));
        assert!(run_strategy(
            strategy,
            timeouts,
            &single,
            60e6,
            0.8,
            0,
            &RunConfig::default()
        )
        .is_err());
    }
}
