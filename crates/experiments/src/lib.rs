//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation (§VII).
//!
//! | Artifact | Module | Binary |
//! |---|---|---|
//! | Table IV (optimal solutions vs. λ and δ) | [`table4`] | `cargo run -p dmc-experiments --bin table4 --release` |
//! | Figure 2 (theory vs. simulation vs. single paths) | [`figure2`] | `… --bin figure2` |
//! | Experiment 2 (random delays, Eq.-34 timeouts) | [`experiment2`] | `… --bin experiment2` |
//! | Figure 3 (sensitivity to estimation errors) | [`figure3`] | `… --bin figure3` |
//! | Figure 4 (LP solve times) | [`figure4`] | `… --bin figure4` (and `cargo bench -p dmc-bench`) |
//! | Fleet: multi-flow admission & joint allocation (beyond the paper) | [`fleet`] | `… --bin fleet` |
//! | Fleet service: sharded admission over wire frames (beyond the paper) | [`service`] | `… --bin fleet_service` |
//!
//! Simulation binaries run through the parallel Monte-Carlo engine
//! ([`montecarlo`]) and share one flag vocabulary:
//!
//! * `--messages N` (or env `MESSAGES`) — messages per simulation
//!   (default: the paper's 100,000);
//! * `--trials N` (or env `TRIALS`) — independent trials per point,
//!   reported as mean ± 95 % Student-t CI (default 1: the paper's
//!   single-run protocol);
//! * `--threads N` (or env `DMC_THREADS`) — worker threads; `1` is the
//!   sequential oracle, `0`/unset uses all cores (`DMC_THREADS=0` is
//!   clamped to the sequential oracle, and an unparseable value warns
//!   once and counts as unset). Results are bit-identical at any thread
//!   count;
//! * `--seed S` (or env `SEED`) — base of the per-trial seed stream;
//! * `--runs N` (or env `RUNS`) — timing repetitions (`figure4` only).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod experiment2;
pub mod figure2;
pub mod figure3;
pub mod figure4;
pub mod fleet;
pub mod montecarlo;
pub mod report;
pub mod runner;
pub mod scenarios;
pub mod schedule;
pub mod service;
pub mod table4;

/// Reads the `MESSAGES` environment override for simulation length
/// (legacy shim: [`parse_args`] subsumes it and adds the CLI flags).
pub fn messages_from_env(default: u64) -> u64 {
    env_parse("MESSAGES", default)
}

/// Shared command-line/environment knobs of the experiment binaries.
#[derive(Debug, Clone)]
pub struct RunArgs {
    /// Messages per simulation (`--messages`/`MESSAGES`).
    pub messages: u64,
    /// Independent trials per point (`--trials`/`TRIALS`).
    pub trials: u64,
    /// Worker threads, 0 = all cores (`--threads`/`DMC_THREADS`).
    pub threads: usize,
    /// Base seed of the trial seed stream (`--seed`/`SEED`).
    pub seed: u64,
    /// Timing repetitions for the solve-time binary (`--runs`/`RUNS`).
    pub runs: u64,
    /// Flows offered per trial in the fleet driver (`--flows`/`FLOWS`;
    /// the incremental sparse joint solver keeps sweeps with hundreds of
    /// concurrent flows tractable).
    pub flows: u64,
    /// Capacity regions in the fleet-service driver
    /// (`--shards`/`SHARDS`; each shard is a two-path region, ≤ 64).
    pub shards: usize,
    /// Telemetry export path (`--metrics`/`METRICS`); `None` disables
    /// telemetry entirely. A `.prom` extension selects the Prometheus
    /// text exposition, anything else the deterministic JSON-lines form.
    pub metrics: Option<std::path::PathBuf>,
}

impl RunArgs {
    /// The Monte-Carlo configuration these arguments describe.
    pub fn montecarlo(&self) -> montecarlo::MonteCarloConfig {
        montecarlo::MonteCarloConfig {
            trials: self.trials,
            threads: self.threads,
            base_seed: self.seed,
        }
    }

    /// The driver's telemetry registry: enabled exactly when `--metrics`
    /// (or `METRICS`) requested an export, disabled (zero-cost) otherwise.
    pub fn obs(&self) -> dmc_obs::Obs {
        if self.metrics.is_some() {
            dmc_obs::Obs::enabled()
        } else {
            dmc_obs::Obs::disabled()
        }
    }

    /// Writes `snap` to the `--metrics` path (no-op without one):
    /// Prometheus text when the path ends in `.prom`, deterministic
    /// JSON-lines otherwise. Returns the path written to.
    ///
    /// # Errors
    ///
    /// Forwards the I/O error message.
    pub fn write_metrics(
        &self,
        snap: &dmc_obs::Snapshot,
    ) -> Result<Option<std::path::PathBuf>, String> {
        let Some(path) = &self.metrics else {
            return Ok(None);
        };
        let body = if path.extension().is_some_and(|e| e == "prom") {
            snap.to_prometheus()
        } else {
            snap.to_jsonl()
        };
        std::fs::write(path, body).map_err(|e| format!("writing {}: {e}", path.display()))?;
        Ok(Some(path.clone()))
    }
}

/// Driver epilogue: renders the registry's snapshot as a markdown table
/// on stdout and exports it to the `--metrics` path. No-op when the
/// registry is disabled (no `--metrics` given). Exits with status 1 if
/// the export file cannot be written — a requested artifact silently
/// missing would defeat the point of asking for it.
pub fn finish_metrics(args: &RunArgs, obs: &dmc_obs::Obs) {
    if !obs.is_enabled() {
        return;
    }
    finish_metrics_snapshot(args, &obs.snapshot());
}

/// [`finish_metrics`] for drivers that already hold a merged
/// [`Snapshot`](dmc_obs::Snapshot) (e.g. the fleet-service driver, whose
/// per-shard forks are absorbed by `FleetService::obs_snapshot`, so the
/// parent registry alone would under-report). No-op when the snapshot is
/// empty and no `--metrics` export was requested.
pub fn finish_metrics_snapshot(args: &RunArgs, snap: &dmc_obs::Snapshot) {
    let table = report::snapshot_table(snap);
    if !table.is_empty() {
        println!("\n# Telemetry (dmc-obs)\n");
        println!("{table}");
    }
    match args.write_metrics(snap) {
        Ok(Some(path)) => eprintln!("metrics written to {}", path.display()),
        Ok(None) => {}
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

fn env_parse<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Parses the shared `--messages/--trials/--threads/--seed/--runs` flags
/// (each falling back to its environment variable, then to the given
/// message default). Unknown flags abort with a usage message; `--help`
/// prints it and exits.
pub fn parse_args(default_messages: u64) -> RunArgs {
    let mut args = RunArgs {
        messages: env_parse("MESSAGES", default_messages),
        trials: env_parse("TRIALS", 1),
        threads: env_parse("DMC_THREADS", 0),
        seed: env_parse("SEED", 0xDEAD_BEEF),
        runs: env_parse("RUNS", 100),
        flows: env_parse("FLOWS", fleet::FLOWS_PER_TRIAL),
        shards: env_parse("SHARDS", service::SHARDS_DEFAULT),
        metrics: std::env::var("METRICS").ok().map(std::path::PathBuf::from),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        if flag == "--help" || flag == "-h" {
            eprintln!(
                "flags: --messages N  --trials N  --threads N (1 = sequential oracle, \
                 0 = all cores; DMC_THREADS=0 clamps to 1)  --seed S  --runs N  \
                 --flows N (fleet drivers)  --shards N (fleet_service driver, ≤ 64)  \
                 --metrics PATH (telemetry export: .prom = Prometheus text, else JSONL)\n\
                 env fallbacks: MESSAGES, TRIALS, DMC_THREADS, SEED, RUNS, FLOWS, SHARDS, METRICS"
            );
            std::process::exit(0);
        }
        let Some(value) = argv.get(i + 1) else {
            eprintln!("missing value for {flag} (see --help)");
            std::process::exit(2);
        };
        let parsed = match flag {
            "--messages" => value.parse().map(|v| args.messages = v).is_ok(),
            "--trials" => value.parse().map(|v| args.trials = v).is_ok(),
            "--threads" => value.parse().map(|v| args.threads = v).is_ok(),
            "--seed" => value.parse().map(|v| args.seed = v).is_ok(),
            "--runs" => value.parse().map(|v| args.runs = v).is_ok(),
            "--flows" => value.parse().map(|v| args.flows = v).is_ok(),
            "--shards" => value.parse().map(|v| args.shards = v).is_ok(),
            "--metrics" => {
                args.metrics = Some(std::path::PathBuf::from(value));
                true
            }
            _ => {
                eprintln!("unknown flag {flag} (see --help)");
                std::process::exit(2);
            }
        };
        if !parsed {
            eprintln!("invalid value {value:?} for {flag}");
            std::process::exit(2);
        }
        i += 2;
    }
    if args.trials == 0 {
        eprintln!("--trials must be ≥ 1");
        std::process::exit(2);
    }
    args
}
