//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation (§VII).
//!
//! | Artifact | Module | Binary |
//! |---|---|---|
//! | Table IV (optimal solutions vs. λ and δ) | [`table4`] | `cargo run -p dmc-experiments --bin table4 --release` |
//! | Figure 2 (theory vs. simulation vs. single paths) | [`figure2`] | `… --bin figure2` |
//! | Experiment 2 (random delays, Eq.-34 timeouts) | [`experiment2`] | `… --bin experiment2` |
//! | Figure 3 (sensitivity to estimation errors) | [`figure3`] | `… --bin figure3` |
//! | Figure 4 (LP solve times) | [`figure4`] | `… --bin figure4` (and `cargo bench -p dmc-bench`) |
//!
//! The binaries honor a `MESSAGES` environment variable to trade accuracy
//! for speed (default: the paper's 100,000 messages per simulation).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiment2;
pub mod figure2;
pub mod figure3;
pub mod figure4;
pub mod report;
pub mod runner;
pub mod scenarios;
pub mod table4;

/// Reads the `MESSAGES` environment override for simulation length.
pub fn messages_from_env(default: u64) -> u64 {
    std::env::var("MESSAGES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}
