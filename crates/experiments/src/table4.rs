//! Table IV: optimal LP solutions for the Table III network.
//!
//! Both halves run their sweep through **one** [`Planner`], so the LP
//! workspace is reused across every row instead of re-allocating per
//! solve.

use crate::report;
use crate::scenarios;
use dmc_core::{Objective, Planner, PlannerConfig, SolverOptions, Strategy};

/// A fresh planner whose LP solves record into `obs` (disabled = the
/// plain default planner).
fn planner_with_obs(obs: &dmc_obs::Obs) -> Planner {
    Planner::with_config(PlannerConfig {
        solver: SolverOptions {
            obs: obs.clone(),
            ..SolverOptions::default()
        },
        ..PlannerConfig::default()
    })
}

/// One row of Table IV.
#[derive(Debug, Clone)]
pub struct Table4Row {
    /// The swept parameter (λ in bits/s for the top half, δ in seconds
    /// for the bottom half).
    pub param: f64,
    /// The solved strategy.
    pub strategy: Strategy,
}

impl Table4Row {
    /// Optimal quality `Q`.
    pub fn quality(&self) -> f64 {
        self.strategy.quality()
    }
}

/// Paper values for the top half (λ in Mbps → Q).
pub const PAPER_TOP: &[(f64, f64)] = &[
    (10.0, 1.0),
    (20.0, 1.0),
    (40.0, 1.0),
    (60.0, 1.0),
    (80.0, 1.0),
    (100.0, 0.84),
    (120.0, 0.70),
    (140.0, 0.60),
];

/// Paper values for the bottom half (δ in ms → Q).
pub const PAPER_BOTTOM: &[(f64, f64)] = &[
    (150.0, 0.2222222222222222),
    (400.0, 0.2222222222222222),
    (450.0, 0.8444444444444444),
    (700.0, 0.8444444444444444),
    (750.0, 0.9333333333333333),
    (1000.0, 0.9333333333333333),
    (1050.0, 0.9333333333333333),
];

/// Computes the top half: δ = 800 ms, λ swept (Mbps).
///
/// # Panics
///
/// Panics if the LP solver fails on these (always-feasible) scenarios.
pub fn top(lambdas_mbps: &[f64]) -> Vec<Table4Row> {
    top_obs(lambdas_mbps, &dmc_obs::Obs::disabled())
}

/// [`top`] with the planner's LP solves recorded into `obs`
/// (`lp.solves`, `lp.pivots`, warm-start counters, per-backend spans).
///
/// # Panics
///
/// Panics if the LP solver fails on these (always-feasible) scenarios.
pub fn top_obs(lambdas_mbps: &[f64], obs: &dmc_obs::Obs) -> Vec<Table4Row> {
    let mut planner = planner_with_obs(obs);
    let base = scenarios::table3_model_scenario(90e6, 0.800);
    lambdas_mbps
        .iter()
        .map(|&l| Table4Row {
            param: l * 1e6,
            strategy: planner
                .plan(&base.with_data_rate(l * 1e6), Objective::MaxQuality)
                .expect("table-4 scenarios are feasible by construction")
                .into_strategy(),
        })
        .collect()
}

/// Computes the bottom half: λ = 90 Mbps, δ swept (ms).
///
/// # Panics
///
/// Panics if the LP solver fails on these (always-feasible) scenarios.
pub fn bottom(deltas_ms: &[f64]) -> Vec<Table4Row> {
    bottom_obs(deltas_ms, &dmc_obs::Obs::disabled())
}

/// [`bottom`] with the planner's LP solves recorded into `obs` (see
/// [`top_obs`]).
///
/// # Panics
///
/// Panics if the LP solver fails on these (always-feasible) scenarios.
pub fn bottom_obs(deltas_ms: &[f64], obs: &dmc_obs::Obs) -> Vec<Table4Row> {
    let mut planner = planner_with_obs(obs);
    let base = scenarios::table3_model_scenario(90e6, 0.800);
    deltas_ms
        .iter()
        .map(|&d| Table4Row {
            param: d / 1e3,
            strategy: planner
                .plan(&base.with_lifetime(d / 1e3), Objective::MaxQuality)
                .expect("table-4 scenarios are feasible by construction")
                .into_strategy(),
        })
        .collect()
}

/// Renders a half as a markdown table (rows show the nonzero solution
/// entries, like the paper).
pub fn render(rows: &[Table4Row], param_name: &str, param_scale: f64) -> String {
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let solution: Vec<String> = r
                .strategy
                .nonzero()
                .iter()
                .map(|(label, _, v)| format!("{label}={}", report::frac(*v)))
                .collect();
            vec![
                format!("{:.0}", r.param * param_scale),
                solution.join("  "),
                report::pct(r.quality()),
            ]
        })
        .collect();
    report::markdown_table(&[param_name, "solution", "quality Q"], &table_rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_half_matches_paper() {
        let lambdas: Vec<f64> = PAPER_TOP.iter().map(|(l, _)| *l).collect();
        for (row, &(l, want)) in top(&lambdas).iter().zip(PAPER_TOP) {
            assert!(
                (row.quality() - want).abs() < 1e-9,
                "λ={l} Mbps: Q={}, paper {want}",
                row.quality()
            );
        }
    }

    #[test]
    fn bottom_half_matches_paper() {
        let deltas: Vec<f64> = PAPER_BOTTOM.iter().map(|(d, _)| *d).collect();
        for (row, &(d, want)) in bottom(&deltas).iter().zip(PAPER_BOTTOM) {
            assert!(
                (row.quality() - want).abs() < 1e-9,
                "δ={d} ms: Q={}, paper {want}",
                row.quality()
            );
        }
    }

    #[test]
    fn render_contains_quality_column() {
        let rows = top(&[40.0]);
        let text = render(&rows, "rate (Mbps)", 1e-6);
        assert!(text.contains("100.0%"), "{text}");
    }
}
