//! The parallel Monte-Carlo experiment engine: shards independent
//! simulation trials across a scoped worker pool with deterministic
//! per-trial seed streams.
//!
//! Design invariants:
//!
//! * **Seed purity** — every trial's RNG seed is a pure function of
//!   `(base_seed, trial_index)` ([`trial_seed`], SplitMix64-derived), so
//!   a trial's outcome never depends on which worker ran it or in what
//!   order.
//! * **Deterministic aggregation** — workers return per-trial results;
//!   the engine reassembles them *in trial-index order* and folds the
//!   per-trial observations into [`dmc_stats::TrialStats`] sequentially.
//!   The fold therefore executes the identical floating-point operations
//!   at every thread count, making the aggregate **bit-identical**
//!   between `--threads 1` (the sequential oracle) and any parallel run
//!   (`tests/montecarlo_determinism.rs` pins this).
//!
//! ```
//! use dmc_experiments::montecarlo::{run_trials_parallel, trial_seed, MonteCarloConfig};
//!
//! let mc = MonteCarloConfig { trials: 8, threads: 2, base_seed: 42 };
//! let parallel = run_trials_parallel(&mc, |trial, seed| (trial, seed));
//! // Bit-identical to the sequential fold at any thread count:
//! let sequential: Vec<_> = (0..8).map(|t| (t, trial_seed(42, t))).collect();
//! assert_eq!(parallel, sequential);
//! ```

use crate::runner::{run_plan, RunConfig, RunOutcome, TrueNetwork};
use dmc_core::Plan;
use dmc_proto::{ReceiverStats, SenderStats};
use dmc_stats::TrialStats;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Derives trial `trial`'s RNG seed from the experiment's base seed.
///
/// Trial 0 uses the base seed **verbatim**, so a single-trial run
/// reproduces the historical single-run outputs for the same `SEED`
/// (the legacy `run`/`rate_sweep`/`curve` wrappers are byte-compatible
/// with their pre-engine behavior). Later trials get SplitMix64-style
/// finalized seeds, well spread even for consecutive indices and
/// correlated base seeds.
pub fn trial_seed(base_seed: u64, trial: u64) -> u64 {
    if trial == 0 {
        return base_seed;
    }
    let mut z = base_seed ^ trial.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// How many trials to run, across how many workers, from which seed.
#[derive(Debug, Clone)]
pub struct MonteCarloConfig {
    /// Number of independent trials.
    pub trials: u64,
    /// Worker threads; `0` resolves to `DMC_THREADS` (if set) or the
    /// machine's available parallelism. `1` is the sequential oracle.
    pub threads: usize,
    /// Base seed of the per-trial seed stream.
    pub base_seed: u64,
}

impl Default for MonteCarloConfig {
    fn default() -> Self {
        MonteCarloConfig {
            trials: 32,
            threads: 0,
            base_seed: 0xDEAD_BEEF,
        }
    }
}

impl MonteCarloConfig {
    /// One trial on one thread with `seed` as the stream base — the
    /// drop-in shape for legacy single-run entry points.
    pub fn single(seed: u64) -> Self {
        MonteCarloConfig {
            trials: 1,
            threads: 1,
            base_seed: seed,
        }
    }

    /// The worker count after resolving `0`, shared with the fleet
    /// service: the `DMC_THREADS` environment variable clamped to ≥ 1
    /// (`DMC_THREADS=0` means the sequential oracle, not a zero-width
    /// pool), an unparseable value warned about once and treated as
    /// unset, else the machine's available parallelism (at least 1).
    pub fn resolved_threads(&self) -> usize {
        dmc_fleet::service::resolved_workers(self.threads)
    }
}

/// Runs `mc.trials` independent trials of `trial_fn(trial, seed)` and
/// returns the results **in trial-index order**.
///
/// `trial_fn` must be a pure function of its arguments (plus shared
/// immutable captures); under that contract the returned vector is
/// identical for every thread count. Work is distributed by an atomic
/// counter, so stragglers do not idle the pool.
pub fn run_trials_parallel<R, F>(mc: &MonteCarloConfig, trial_fn: F) -> Vec<R>
where
    R: Send,
    F: Fn(u64, u64) -> R + Sync,
{
    let n = mc.trials;
    let threads = mc.resolved_threads().min(n.max(1) as usize);
    if threads <= 1 {
        // The sequential oracle: a plain loop, no pool.
        return (0..n)
            .map(|t| trial_fn(t, trial_seed(mc.base_seed, t)))
            .collect();
    }
    let next = AtomicU64::new(0);
    let done: Mutex<Vec<(u64, R)>> = Mutex::new(Vec::with_capacity(n as usize));
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                let mut local: Vec<(u64, R)> = Vec::new();
                loop {
                    let t = next.fetch_add(1, Ordering::Relaxed);
                    if t >= n {
                        break;
                    }
                    local.push((t, trial_fn(t, trial_seed(mc.base_seed, t))));
                }
                done.lock().expect("no worker panicked").extend(local);
            });
        }
    });
    let mut all = done.into_inner().expect("workers joined");
    all.sort_unstable_by_key(|(t, _)| *t);
    all.into_iter().map(|(_, r)| r).collect()
}

/// Aggregate of a Monte-Carlo sweep over one plan (see
/// [`run_plan_trials`]).
#[derive(Debug, Clone)]
pub struct MonteCarloReport {
    /// Measured quality across trials, with Student-t CI support.
    pub quality: TrialStats,
    /// The model's predicted quality for the plan that ran.
    pub predicted_quality: f64,
    /// Summed sender counters over all trials.
    pub sender: SenderStats,
    /// Summed receiver counters over all trials.
    pub receiver: ReceiverStats,
    /// Trial 0's full outcome (for detail rendering).
    pub first: RunOutcome,
}

fn add_sender(a: &mut SenderStats, b: &SenderStats) {
    a.generated += b.generated;
    a.blackholed += b.blackholed;
    a.transmissions += b.transmissions;
    a.retransmissions += b.retransmissions;
    a.nic_dropped += b.nic_dropped;
    a.acked += b.acked;
    a.expired += b.expired;
    a.fast_retransmits += b.fast_retransmits;
}

fn add_receiver(a: &mut ReceiverStats, b: &ReceiverStats) {
    a.transmissions_received += b.transmissions_received;
    a.unique_in_time += b.unique_in_time;
    a.unique_late += b.unique_late;
    a.duplicates += b.duplicates;
    a.malformed += b.malformed;
    a.acks_sent += b.acks_sent;
    a.acks_nic_dropped += b.acks_nic_dropped;
    a.failure_notices_sent += b.failure_notices_sent;
    a.recovery_notices_sent += b.recovery_notices_sent;
}

/// Runs `mc.trials` independent simulations of one solved [`Plan`] on
/// `true_net` — trial `t` uses `cfg` with its seed replaced by
/// [`trial_seed`]`(mc.base_seed, t)` — and folds the measured qualities
/// into a [`TrialStats`] *in trial order* (bit-identical across thread
/// counts).
///
/// When `cfg.obs` is enabled, every trial records into a private
/// [`fork`](dmc_obs::Obs::fork) of it and the forks are absorbed back
/// into `cfg.obs` in trial order — the merged snapshot is bit-identical
/// at any thread count, like the quality fold.
///
/// # Errors
///
/// Forwards the first failing trial's error (by trial order).
pub fn run_plan_trials(
    plan: &Plan,
    true_net: &TrueNetwork,
    cfg: &RunConfig,
    mc: &MonteCarloConfig,
) -> Result<MonteCarloReport, String> {
    if mc.trials == 0 {
        return Err("at least one trial is required".into());
    }
    // Each trial publishes into a private fork of the caller's registry;
    // the forks are absorbed back *in trial order* below, so the merged
    // telemetry (clock included) is bit-identical at any thread count.
    let outcomes = run_trials_parallel(mc, |_trial, seed| {
        let mut trial_cfg = cfg.clone();
        trial_cfg.seed = seed;
        trial_cfg.obs = cfg.obs.fork();
        let outcome = run_plan(plan, true_net, &trial_cfg);
        (outcome, trial_cfg.obs.snapshot())
    });
    let mut quality = TrialStats::new();
    let mut sender = SenderStats::default();
    let mut receiver = ReceiverStats::default();
    let mut first = None;
    for (outcome, trial_obs) in outcomes {
        cfg.obs.absorb(&trial_obs);
        let outcome = outcome?;
        quality.push(outcome.quality);
        add_sender(&mut sender, &outcome.sender);
        add_receiver(&mut receiver, &outcome.receiver);
        if first.is_none() {
            first = Some(outcome);
        }
    }
    let first = first.expect("config validation guarantees trials >= 1");
    Ok(MonteCarloReport {
        quality,
        predicted_quality: first.predicted_quality,
        sender,
        receiver,
        first,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios;
    use dmc_core::{Objective, Planner, Scenario};

    #[test]
    fn seed_stream_is_pure_and_spread() {
        assert_eq!(trial_seed(7, 0), trial_seed(7, 0));
        assert_ne!(trial_seed(7, 0), trial_seed(7, 1));
        assert_ne!(trial_seed(7, 0), trial_seed(8, 0));
        // No collisions over a realistic sweep.
        let mut seen = std::collections::HashSet::new();
        for t in 0..10_000u64 {
            assert!(seen.insert(trial_seed(0xDEAD_BEEF, t)));
        }
    }

    #[test]
    fn parallel_result_order_is_trial_order() {
        let mc = MonteCarloConfig {
            trials: 100,
            threads: 8,
            base_seed: 3,
        };
        let results = run_trials_parallel(&mc, |t, s| (t, s));
        for (i, &(t, s)) in results.iter().enumerate() {
            assert_eq!(t, i as u64);
            assert_eq!(s, trial_seed(3, t));
        }
    }

    #[test]
    fn zero_threads_resolves_positive() {
        let mc = MonteCarloConfig {
            trials: 1,
            threads: 0,
            base_seed: 0,
        };
        assert!(mc.resolved_threads() >= 1);
    }

    #[test]
    fn dmc_threads_zero_is_the_sequential_oracle() {
        // Regression: `DMC_THREADS=0` parsed "successfully" and used to
        // fall through to available parallelism; it must clamp to one
        // worker (the sequential oracle), and the trial results must be
        // identical either way.
        std::env::set_var("DMC_THREADS", "0");
        let mc = MonteCarloConfig {
            trials: 6,
            threads: 0,
            base_seed: 0x5EED,
        };
        assert_eq!(mc.resolved_threads(), 1);
        let clamped: Vec<u64> = run_trials_parallel(&mc, |t, seed| t ^ seed);
        std::env::remove_var("DMC_THREADS");
        let sequential: Vec<u64> = run_trials_parallel(
            &MonteCarloConfig {
                threads: 1,
                ..mc.clone()
            },
            |t, seed| t ^ seed,
        );
        assert_eq!(clamped, sequential);
    }

    #[test]
    fn plan_trials_tighten_with_more_trials() {
        // The Figure-2 flagship point: multiple short trials produce a CI
        // containing the theory value, and more trials shrink it.
        // Experiment-1 split: LP sees measured + margin, timeouts see the
        // measured delays (inflating both would push retransmissions past
        // the deadline and sink the simulated quality).
        let mut planner = Planner::new();
        let scenario = Scenario::from_network(&scenarios::table3_true(90e6, 0.8));
        let plan = planner
            .plan_with_margin(&scenario, scenarios::QUEUE_MARGIN_S, Objective::MaxQuality)
            .unwrap();
        let truth = TrueNetwork::deterministic(&scenarios::table3_true(90e6, 0.8));
        let mut cfg = RunConfig::default();
        cfg.messages = 1_500;
        let run = |trials| {
            run_plan_trials(
                &plan,
                &truth,
                &cfg,
                &MonteCarloConfig {
                    trials,
                    threads: 2,
                    base_seed: 99,
                },
            )
            .unwrap()
        };
        let small = run(4);
        let large = run(12);
        assert_eq!(small.quality.count(), 4);
        assert_eq!(large.quality.count(), 12);
        assert_eq!(large.sender.generated, 12 * 1_500);
        let (lo, hi) = large.quality.confidence_interval(0.95);
        assert!(
            lo <= large.predicted_quality + 0.02 && large.predicted_quality - 0.05 <= hi,
            "CI [{lo:.4}, {hi:.4}] vs theory {:.4}",
            large.predicted_quality
        );
        // Same per-trial spread ⇒ more trials give a narrower interval.
        assert!(large.quality.half_width(0.95) < small.quality.half_width(0.95) + 1e-12);
    }
}
