//! The paper's evaluation scenarios (Tables III and V, Figure 1), in
//! both the unified [`Scenario`] form (preferred) and the legacy
//! spec types.

use dmc_core::{NetworkSpec, PathSpec, RandomNetworkSpec, RandomPath, Scenario};
use dmc_stats::ShiftedGamma;
use std::sync::Arc;

/// Queueing margin the paper adds to the model delays in Experiment 1
/// (400→450 ms, 100→150 ms): "we conservatively set delays to 450 and
/// 150 ms in our model".
pub const QUEUE_MARGIN_S: f64 = 0.050;

/// Table III path characteristics as the *true* network (raw propagation
/// delays 400/100 ms).
///
/// # Panics
///
/// Panics only if the hard-coded constants were edited into invalidity.
pub fn table3_true(lambda_bps: f64, lifetime_s: f64) -> NetworkSpec {
    NetworkSpec::builder()
        .path(PathSpec::new(80e6, 0.400, 0.2).expect("literal scenario parameters are valid"))
        .path(PathSpec::new(20e6, 0.100, 0.0).expect("literal scenario parameters are valid"))
        .data_rate(lambda_bps)
        .lifetime(lifetime_s)
        .build()
        .expect("valid scenario")
}

/// Table III as the sender's *model* (with the +50 ms conservative
/// margin applied, exactly as the paper solves Table IV).
///
/// # Panics
///
/// Panics only if the hard-coded constants were edited into invalidity.
pub fn table3_model(lambda_bps: f64, lifetime_s: f64) -> NetworkSpec {
    NetworkSpec::builder()
        .path(
            PathSpec::new(80e6, 0.400 + QUEUE_MARGIN_S, 0.2)
                .expect("literal scenario parameters are valid"),
        )
        .path(
            PathSpec::new(20e6, 0.100 + QUEUE_MARGIN_S, 0.0)
                .expect("literal scenario parameters are valid"),
        )
        .data_rate(lambda_bps)
        .lifetime(lifetime_s)
        .build()
        .expect("valid scenario")
}

/// Table V: the random-delay scenario of Experiment 2 (shifted-gamma
/// delays; λ = 90 Mbps, δ = 750 ms unless overridden).
///
/// # Panics
///
/// Panics only if the hard-coded constants were edited into invalidity.
pub fn table5(lambda_bps: f64, lifetime_s: f64) -> RandomNetworkSpec {
    let p1 = RandomPath::new(
        80e6,
        Arc::new(
            ShiftedGamma::new(10.0, 0.004, 0.400).expect("literal scenario parameters are valid"),
        ),
        0.2,
        0.0,
    )
    .expect("literal scenario parameters are valid");
    let p2 = RandomPath::new(
        20e6,
        Arc::new(
            ShiftedGamma::new(5.0, 0.002, 0.100).expect("literal scenario parameters are valid"),
        ),
        0.0,
        0.0,
    )
    .expect("literal scenario parameters are valid");
    RandomNetworkSpec::new(vec![p1, p2], lambda_bps, lifetime_s)
        .expect("literal scenario parameters are valid")
}

/// Figure 1's motivating scenario: 10 Mbps/600 ms/10 % + 1 Mbps/200 ms/0 %,
/// λ = 10 Mbps, δ = 1 s.
///
/// # Panics
///
/// Panics only if the hard-coded constants were edited into invalidity.
pub fn figure1() -> NetworkSpec {
    NetworkSpec::builder()
        .path(PathSpec::new(10e6, 0.600, 0.10).expect("literal scenario parameters are valid"))
        .path(PathSpec::new(1e6, 0.200, 0.0).expect("literal scenario parameters are valid"))
        .data_rate(10e6)
        .lifetime(1.0)
        .build()
        .expect("valid scenario")
}

/// Table III as a unified [`Scenario`] with the *true* (raw) delays —
/// feed to [`Planner::plan_with_margin`](dmc_core::Planner::plan_with_margin)
/// with [`QUEUE_MARGIN_S`] to reproduce the paper's Experiment-1 split.
///
/// # Panics
///
/// Panics only if the hard-coded constants were edited into invalidity.
pub fn table3_scenario(lambda_bps: f64, lifetime_s: f64) -> Scenario {
    Scenario::from_network(&table3_true(lambda_bps, lifetime_s))
}

/// Table III as a unified [`Scenario`] with the +50 ms model margin
/// already applied (what Table IV is solved from).
///
/// # Panics
///
/// Panics only if the hard-coded constants were edited into invalidity.
pub fn table3_model_scenario(lambda_bps: f64, lifetime_s: f64) -> Scenario {
    Scenario::from_network(&table3_model(lambda_bps, lifetime_s))
}

/// Table V as a unified [`Scenario`] (shifted-gamma delays): the same
/// planner pipeline solves it, no separate random-delay API needed.
///
/// # Panics
///
/// Panics only if the hard-coded constants were edited into invalidity.
pub fn table5_scenario(lambda_bps: f64, lifetime_s: f64) -> Scenario {
    Scenario::from_random(&table5(lambda_bps, lifetime_s))
}

/// Figure 1's motivating scenario as a unified [`Scenario`].
///
/// # Panics
///
/// Panics only if the hard-coded constants were edited into invalidity.
pub fn figure1_scenario() -> Scenario {
    Scenario::from_network(&figure1())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unified_scenarios_mirror_legacy_specs() {
        let s = table3_scenario(90e6, 0.8);
        assert!(s.is_deterministic());
        assert_eq!(s.paths()[0].bandwidth(), 80e6);
        assert_eq!(s.paths()[0].constant_delay(), Some(0.400));
        let m = table3_model_scenario(90e6, 0.8);
        assert_eq!(m.paths()[0].constant_delay(), Some(0.450));
        let five = table5_scenario(90e6, 0.75);
        assert!(!five.is_deterministic());
        assert_eq!(five.ack_path(), 1);
        assert!(figure1_scenario().is_deterministic());
    }

    #[test]
    fn scenarios_match_paper_tables() {
        let t = table3_true(90e6, 0.8);
        assert_eq!(t.paths()[0].bandwidth(), 80e6);
        assert_eq!(t.paths()[0].delay(), 0.400);
        assert_eq!(t.paths()[1].loss(), 0.0);
        let m = table3_model(90e6, 0.8);
        assert!((m.paths()[0].delay() - 0.450).abs() < 1e-12);
        assert!((m.paths()[1].delay() - 0.150).abs() < 1e-12);
        let five = table5(90e6, 0.75);
        assert_eq!(five.ack_path(), 1);
        assert_eq!(five.paths()[0].bandwidth(), 80e6);
        let f1 = figure1();
        assert_eq!(f1.num_paths(), 2);
        assert_eq!(f1.lifetime(), 1.0);
    }
}
