//! Figure 2: quality vs. data rate (top) and vs. lifetime (bottom) —
//! multipath theory, multipath simulation, and the two single-path
//! theoretical baselines.
//!
//! Each point's simulation runs through the parallel Monte-Carlo engine
//! ([`crate::montecarlo`]): the plan is solved once (warm-started across
//! the sweep), then `trials` independent seeded simulations run across
//! the worker pool and report mean quality with a Student-t CI.

use crate::montecarlo::{run_plan_trials, MonteCarloConfig};
use crate::runner::{RunConfig, TrueNetwork};
use crate::scenarios;
use dmc_core::{ModelConfig, Objective, Planner, Scenario};
use dmc_stats::TrialStats;

/// One point of a Figure 2 sweep.
#[derive(Debug, Clone)]
pub struct Figure2Point {
    /// Swept parameter: λ (bits/s) for the top panel, δ (s) for the
    /// bottom.
    pub param: f64,
    /// Multipath LP optimum (the theoretical upper bound).
    pub theory: f64,
    /// Measured simulation quality (mean across trials).
    pub simulation: f64,
    /// Per-trial quality statistics (CI support).
    pub sim_trials: TrialStats,
    /// Best quality using path 1 only.
    pub path1_theory: f64,
    /// Best quality using path 2 only.
    pub path2_theory: f64,
}

fn point(
    planner: &mut Planner,
    lambda: f64,
    delta: f64,
    cfg: &RunConfig,
    mc: &MonteCarloConfig,
) -> Figure2Point {
    let model = scenarios::table3_model_scenario(lambda, delta);
    let theory = planner
        .plan(&model, Objective::MaxQuality)
        .expect("figure-2 scenarios are feasible by construction")
        .quality();
    let path1_theory = planner
        .plan(&model.restricted_to_path(0), Objective::MaxQuality)
        .expect("figure-2 scenarios are feasible by construction")
        .quality();
    let path2_theory = planner
        .plan(&model.restricted_to_path(1), Objective::MaxQuality)
        .expect("figure-2 scenarios are feasible by construction")
        .quality();
    // The Experiment-1 split: plan against measured + margin, run on the
    // raw measured truth (same construction as `run_measured_with`, but
    // the plan is solved once and shared by every trial).
    let measured = scenarios::table3_true(lambda, delta);
    let scenario =
        Scenario::from_network(&measured).with_transmissions(ModelConfig::default().transmissions);
    let plan = planner
        .plan_with_margin(&scenario, scenarios::QUEUE_MARGIN_S, Objective::MaxQuality)
        .expect("figure-2 scenarios are feasible by construction");
    let truth = TrueNetwork::deterministic(&measured);
    let report = run_plan_trials(&plan, &truth, cfg, mc)
        .expect("figure-2 plan/network pairs are valid for the runner");
    Figure2Point {
        param: 0.0,
        theory,
        simulation: report.quality.mean(),
        sim_trials: report.quality,
        path1_theory,
        path2_theory,
    }
}

/// Top panel: δ = 800 ms, λ swept in Mbps. One planner (and one LP
/// workspace) serves the whole sweep; each point runs `mc.trials`
/// simulations across `mc` worker threads.
pub fn rate_sweep_mc(
    lambdas_mbps: &[f64],
    cfg: &RunConfig,
    mc: &MonteCarloConfig,
) -> Vec<Figure2Point> {
    let mut planner = Planner::new();
    lambdas_mbps
        .iter()
        .map(|&l| {
            let mut p = point(&mut planner, l * 1e6, 0.800, cfg, mc);
            p.param = l * 1e6;
            p
        })
        .collect()
}

/// [`rate_sweep_mc`] with one trial seeded from `cfg.seed` (the paper's
/// single-run protocol).
pub fn rate_sweep(lambdas_mbps: &[f64], cfg: &RunConfig) -> Vec<Figure2Point> {
    rate_sweep_mc(lambdas_mbps, cfg, &MonteCarloConfig::single(cfg.seed))
}

/// Bottom panel: λ = 90 Mbps, δ swept in ms. One planner serves the
/// whole sweep; each point runs `mc.trials` simulations.
pub fn lifetime_sweep_mc(
    deltas_ms: &[f64],
    cfg: &RunConfig,
    mc: &MonteCarloConfig,
) -> Vec<Figure2Point> {
    let mut planner = Planner::new();
    deltas_ms
        .iter()
        .map(|&d| {
            let mut p = point(&mut planner, 90e6, d / 1e3, cfg, mc);
            p.param = d / 1e3;
            p
        })
        .collect()
}

/// [`lifetime_sweep_mc`] with one trial seeded from `cfg.seed`.
pub fn lifetime_sweep(deltas_ms: &[f64], cfg: &RunConfig) -> Vec<Figure2Point> {
    lifetime_sweep_mc(deltas_ms, cfg, &MonteCarloConfig::single(cfg.seed))
}

/// The paper's x-axes.
pub fn paper_lambdas() -> Vec<f64> {
    (1..=15).map(|i| i as f64 * 10.0).collect()
}

/// The paper's lifetime axis (50–1100 ms).
pub fn paper_deltas() -> Vec<f64> {
    (1..=22).map(|i| i as f64 * 50.0).collect()
}

/// Renders a sweep as a markdown table; with multiple trials per point a
/// `±95% CI` column (Student-t half-width, in percentage points) appears
/// after the simulation mean.
pub fn render(points: &[Figure2Point], param_name: &str, param_scale: f64) -> String {
    let with_ci = points.iter().any(|p| p.sim_trials.count() > 1);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            let mut row = vec![
                format!("{:.0}", p.param * param_scale),
                crate::report::pct(p.theory),
                crate::report::pct(p.simulation),
            ];
            if with_ci {
                row.push(format!("±{:.2}", p.sim_trials.half_width(0.95) * 100.0));
            }
            row.push(crate::report::pct(p.path1_theory));
            row.push(crate::report::pct(p.path2_theory));
            row
        })
        .collect();
    let mut header = vec![param_name, "multipath theory", "multipath sim"];
    if with_ci {
        header.push("±95% CI");
    }
    header.push("path1 theory");
    header.push("path2 theory");
    crate::report::markdown_table(&header, &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> RunConfig {
        let mut cfg = RunConfig::default();
        cfg.messages = 3_000;
        cfg
    }

    #[test]
    fn simulation_tracks_theory_at_spot_points() {
        for p in rate_sweep(&[40.0, 120.0], &quick_cfg()) {
            assert!(
                (p.simulation - p.theory).abs() < 0.03,
                "λ={}: sim {} vs theory {}",
                p.param,
                p.simulation,
                p.theory
            );
        }
    }

    #[test]
    fn multipath_dominates_single_paths_across_sweep() {
        let cfg = quick_cfg();
        for p in lifetime_sweep(&[300.0, 600.0, 900.0], &cfg) {
            assert!(p.theory >= p.path1_theory - 1e-9);
            assert!(p.theory >= p.path2_theory - 1e-9);
        }
    }

    #[test]
    fn crossover_shape_matches_paper() {
        // Figure 2 bottom: path 1 alone is useless below δ = 450 ms
        // (Q=0), path 2 alone is capacity-capped at 2/9; multipath sits
        // at 22% below 450 and jumps to 84% at 450.
        let pts = lifetime_sweep(&[400.0, 450.0], &quick_cfg());
        assert!(pts[0].path1_theory < 1e-9);
        assert!((pts[0].path2_theory - 2.0 / 9.0).abs() < 1e-9);
        assert!((pts[0].theory - 2.0 / 9.0).abs() < 1e-9);
        assert!((pts[1].theory - 0.8444444444444444).abs() < 1e-9);
    }
}
