//! Plain-text/markdown table formatting for experiment output.

/// Formats a markdown table from a header and rows.
///
/// # Panics
///
/// Panics if a row's length differs from the header's.
pub fn markdown_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "ragged table row");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<String>, widths: &[usize]| -> String {
        let padded: Vec<String> = cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect();
        format!("| {} |\n", padded.join(" | "))
    };
    out.push_str(&fmt_row(
        header.iter().map(|s| s.to_string()).collect(),
        &widths,
    ));
    let dashes: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    out.push_str(&format!("|-{}-|\n", dashes.join("-|-")));
    for row in rows {
        out.push_str(&fmt_row(row.clone(), &widths));
    }
    out
}

/// Renders a telemetry [`Snapshot`](dmc_obs::Snapshot) as markdown
/// tables: one `metric | value` table for counters and gauges, one
/// `histogram | count | min | max | mean` table, and one
/// `span | count | ticks | max` table for span aggregates. Sections with
/// no entries are omitted; an empty snapshot renders to an empty string.
pub fn snapshot_table(snap: &dmc_obs::Snapshot) -> String {
    let mut out = String::new();
    let mut scalars: Vec<Vec<String>> = Vec::new();
    for (name, value) in &snap.counters {
        scalars.push(vec![(*name).to_string(), value.to_string()]);
    }
    for (name, value) in &snap.gauges {
        scalars.push(vec![(*name).to_string(), value.to_string()]);
    }
    if !scalars.is_empty() {
        out.push_str(&markdown_table(&["metric", "value"], &scalars));
    }
    let histograms: Vec<Vec<String>> = snap
        .histograms
        .iter()
        .map(|(name, h)| {
            let mean = if h.count == 0 {
                "-".to_string()
            } else {
                format!("{:.1}", h.sum as f64 / h.count as f64)
            };
            vec![
                (*name).to_string(),
                h.count.to_string(),
                h.min.map_or("-".to_string(), |m| m.to_string()),
                h.max.to_string(),
                mean,
            ]
        })
        .collect();
    if !histograms.is_empty() {
        if !out.is_empty() {
            out.push('\n');
        }
        out.push_str(&markdown_table(
            &["histogram", "count", "min", "max", "mean"],
            &histograms,
        ));
    }
    let spans: Vec<Vec<String>> = snap
        .spans
        .iter()
        .map(|s| {
            vec![
                s.name.to_string(),
                s.count.to_string(),
                s.total_ticks.to_string(),
                s.max_ticks.to_string(),
            ]
        })
        .collect();
    if !spans.is_empty() {
        if !out.is_empty() {
            out.push('\n');
        }
        out.push_str(&markdown_table(&["span", "count", "ticks", "max"], &spans));
    }
    out
}

/// `92.5%`-style percentage with one decimal.
pub fn pct(q: f64) -> String {
    format!("{:.1}%", q * 100.0)
}

/// Formats a fraction like the paper's Table IV (`5/8`), falling back to
/// decimals for non-simple values.
pub fn frac(v: f64) -> String {
    if v.abs() < 1e-12 {
        return "0".into();
    }
    let (num, den) = dmc_core::approx_fraction(v, 100_000);
    if den == 1 {
        return format!("{num}");
    }
    let approx = num as f64 / den as f64;
    if (approx - v).abs() < 1e-9 && den <= 1000 {
        format!("{num}/{den}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let t = markdown_table(
            &["a", "long header"],
            &[
                vec!["1".into(), "2".into()],
                vec!["wide cell".into(), "x".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        markdown_table(&["a"], &[vec!["1".into(), "2".into()]]);
    }

    #[test]
    fn snapshot_table_renders_all_sections() {
        let obs = dmc_obs::Obs::enabled();
        obs.counter("a.count").add(3);
        obs.gauge("b.level").add(2);
        obs.histogram("c.sizes").record(4);
        obs.histogram("c.sizes").record(8);
        obs.advance(5);
        drop(obs.span("d.work"));
        let table = snapshot_table(&obs.snapshot());
        assert!(table.contains("a.count"));
        assert!(table.contains("b.level"));
        assert!(table.contains("c.sizes"));
        assert!(table.contains("d.work"));
        assert!(table.contains("6.0"), "histogram mean rendered:\n{table}");
        assert_eq!(snapshot_table(&dmc_obs::Snapshot::default()), "");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.933333), "93.3%");
        assert_eq!(frac(0.625), "5/8");
        assert_eq!(frac(0.0), "0");
        assert_eq!(frac(1.0), "1");
        assert_eq!(frac(2.0 / 45.0), "2/45");
    }
}
