//! Time-expanded scheduling experiment: what do advance reservations
//! buy over plain admission control?
//!
//! Both arms replay the *same* windowed offered trace against a
//! [`SchedulePlanner`] on the same [`TimeGrid`]:
//!
//! * **reserve** — the planner's native behavior: a flow whose window
//!   is infeasible *now* may come back [`ScheduleDecision::Reserved`]
//!   with the earliest feasible future window, and stays in the fleet
//!   until that window completes.
//! * **reject** — reservation-free admission: the moment a decision
//!   comes back `Reserved` the flow is departed again, modelling a
//!   controller that only knows "yes, starting now" and "no".
//!
//! After the offers, both fleets are drained by advancing the horizon
//! past every granted window; a flow counts as *served* when the
//! advance reports it completed (every granted window fits inside the
//! horizon, so nothing is truncated by the drain). The gap between the
//! two served fractions is the reservation dividend; `mean wait` is
//! the average reservation delay ([`ScheduleDecision::opens_in`]) in
//! slots over the reserved flows.
//!
//! LP-only (no packet simulation): the point of the experiment is the
//! admission verdicts and the predicted allocations, and skipping the
//! per-flow simulation keeps the sweep cheap enough for CI smoke runs.

use dmc_fleet::{
    FleetConfig, FlowRequest, ScheduleDecision, SchedulePlanner, ScheduleRequest, SlotWindow,
    TimeGrid,
};
use dmc_stats::TrialStats;

use crate::fleet::{shared_paths, total_capacity, SeedStream};
use crate::montecarlo::{run_trials_parallel, MonteCarloConfig};

/// Slot width of the experiment's horizon, in seconds.
pub const SLOT_WIDTH_S: f64 = 0.5;

/// Number of slots in the experiment's horizon.
pub const HORIZON_SLOTS: usize = 8;

/// The grid every trial runs on: [`HORIZON_SLOTS`] slots of
/// [`SLOT_WIDTH_S`] seconds starting at slot 0.
///
/// # Panics
///
/// Never — the literal parameters are valid.
pub fn grid() -> TimeGrid {
    TimeGrid::new(SLOT_WIDTH_S, HORIZON_SLOTS).expect("literal grid parameters are valid")
}

/// One windowed request of the offered trace.
#[derive(Debug, Clone)]
pub struct WindowedOffer {
    /// The flow (rate, lifetime, optional floor).
    pub flow: FlowRequest,
    /// The requested service window.
    pub window: SlotWindow,
    /// Store-and-forward buffer fraction (`0` for most flows).
    pub buffer: f64,
}

/// Deterministic windowed trace: `flows` requests whose aggregate rate
/// averages `load ×` the shared capacity, with window lengths drawn
/// from the flows' lifetimes and start slots spread across the
/// horizon. A pure function of `(load, seed, flows)`.
///
/// # Panics
///
/// Never — drawn parameters stay inside the validated ranges.
pub fn offered_windows(load: f64, seed: u64, flows: u64) -> Vec<WindowedOffer> {
    let flows = flows.max(1);
    let mut rng = SeedStream::new(seed);
    let mean_rate = load * total_capacity() / flows as f64;
    let horizon = HORIZON_SLOTS as u64;
    (0..flows)
        .map(|_| {
            let rate = mean_rate * rng.in_range(0.5, 1.5);
            let lifetime = rng.in_range(0.3, 1.2);
            let floor = rng.pick(&[0.0, 0.8, 0.9, 0.95]);
            let flow = FlowRequest::new(rate, lifetime)
                .expect("valid request")
                .with_min_quality(floor);
            // Window length from the lifetime; start anywhere it fits.
            let len = ((lifetime / SLOT_WIDTH_S).ceil() as u64)
                .max(1)
                .min(horizon);
            let start = (rng.next_u64() % (horizon - len + 1)).min(horizon - len);
            let window =
                SlotWindow::new(start, start + len).expect("window is nonempty since len >= 1");
            // A third of the flows tolerate one slot of buffering.
            let buffer = if rng.next_u64() % 3 == 0 { 0.5 } else { 0.0 };
            WindowedOffer {
                flow,
                window,
                buffer,
            }
        })
        .collect()
}

/// Per-trial outcome of one arm (folded into a [`SchedulePoint`] in
/// trial order).
struct ArmOutcome {
    served: f64,
    quality: f64,
}

/// Per-trial outcome of both arms.
struct TrialOutcome {
    scheduled_rate: f64,
    reserved_rate: f64,
    mean_wait_slots: f64,
    reserve: ArmOutcome,
    reject: ArmOutcome,
}

fn run_trial(load: f64, seed: u64, flows: u64, obs: &dmc_obs::Obs) -> Result<TrialOutcome, String> {
    let offers = offered_windows(load, seed, flows);
    let config = FleetConfig {
        obs: obs.clone(),
        ..FleetConfig::default()
    };
    let mut reserve =
        SchedulePlanner::new(shared_paths(), grid(), config.clone()).map_err(|e| e.to_string())?;
    let mut reject =
        SchedulePlanner::new(shared_paths(), grid(), config).map_err(|e| e.to_string())?;

    let mut scheduled = 0u64;
    let mut reserved = 0u64;
    let mut wait_slots = 0u64;
    for offer in &offers {
        let mut request = ScheduleRequest::new(offer.flow.clone(), offer.window);
        if offer.buffer > 0.0 {
            request = request.with_buffer(offer.buffer);
        }
        let verdict = reserve.offer(request.clone()).map_err(|e| e.to_string())?;
        match &verdict {
            ScheduleDecision::Scheduled { .. } => scheduled += 1,
            ScheduleDecision::Reserved { .. } => {
                reserved += 1;
                wait_slots += verdict.opens_in();
            }
            ScheduleDecision::Rejected { .. } => {}
        }
        // The reservation-free arm sees the same offer but refuses to
        // hold capacity for the future: a Reserved verdict is departed
        // on the spot.
        let verdict = reject.offer(request).map_err(|e| e.to_string())?;
        if verdict.is_reserved() {
            reject.depart(verdict.id()).map_err(|e| e.to_string())?;
        }
    }

    let quality_reserve = reserve.aggregate_quality();
    let quality_reject = reject.aggregate_quality();

    // Drain: every granted window ends within the horizon, so advancing
    // to the horizon's end completes exactly the flows that were served.
    let end = grid().end();
    let done_reserve = reserve.advance_to(end).map_err(|e| e.to_string())?;
    let done_reject = reject.advance_to(end).map_err(|e| e.to_string())?;
    debug_assert!(done_reserve.dropped.is_empty() && done_reject.dropped.is_empty());

    let n = flows.max(1) as f64;
    Ok(TrialOutcome {
        scheduled_rate: scheduled as f64 / n,
        reserved_rate: reserved as f64 / n,
        mean_wait_slots: if reserved > 0 {
            wait_slots as f64 / reserved as f64
        } else {
            0.0
        },
        reserve: ArmOutcome {
            served: done_reserve.completed.len() as f64 / n,
            quality: quality_reserve,
        },
        reject: ArmOutcome {
            served: done_reject.completed.len() as f64 / n,
            quality: quality_reject,
        },
    })
}

/// One point of the windowed offered-load sweep.
#[derive(Debug, Clone)]
pub struct SchedulePoint {
    /// Offered load `ρ` (aggregate requested rate / aggregate capacity).
    pub offered_load: f64,
    /// Flows offered per trial.
    pub offered: u64,
    /// Fraction of offers scheduled in their requested window.
    pub scheduled_rate: TrialStats,
    /// Fraction of offers granted a *future* window instead.
    pub reserved_rate: TrialStats,
    /// Mean reservation delay over reserved flows, in slots.
    pub mean_wait_slots: TrialStats,
    /// Fraction of offers served to completion with reservations on.
    pub served_reserve: TrialStats,
    /// Fraction of offers served to completion with reservations off.
    pub served_reject: TrialStats,
    /// Volume-weighted predicted quality of the reservation fleet.
    pub quality_reserve: TrialStats,
    /// Volume-weighted predicted quality of the reservation-free fleet.
    pub quality_reject: TrialStats,
}

/// Sweeps offered load through the parallel Monte-Carlo engine; per
/// point the trial outcomes (and the planners' telemetry forks, when
/// `obs` is enabled) are folded in trial order, so the sweep is
/// bit-identical at any thread count.
///
/// # Panics
///
/// Panics if a trial fails (not reachable from the library's own
/// scenario set).
pub fn load_sweep_mc(
    loads: &[f64],
    mc: &MonteCarloConfig,
    flows: u64,
    obs: &dmc_obs::Obs,
) -> Vec<SchedulePoint> {
    loads
        .iter()
        .map(|&load| {
            let outcomes = run_trials_parallel(mc, |_trial, seed| {
                let fork = obs.fork();
                let outcome = run_trial(load, seed, flows, &fork);
                (outcome, fork.snapshot())
            });
            let mut point = SchedulePoint {
                offered_load: load,
                offered: flows.max(1),
                scheduled_rate: TrialStats::new(),
                reserved_rate: TrialStats::new(),
                mean_wait_slots: TrialStats::new(),
                served_reserve: TrialStats::new(),
                served_reject: TrialStats::new(),
                quality_reserve: TrialStats::new(),
                quality_reject: TrialStats::new(),
            };
            for (outcome, snap) in outcomes {
                let o = outcome.expect("schedule trial failed");
                point.scheduled_rate.push(o.scheduled_rate);
                point.reserved_rate.push(o.reserved_rate);
                point.mean_wait_slots.push(o.mean_wait_slots);
                point.served_reserve.push(o.reserve.served);
                point.served_reject.push(o.reject.served);
                point.quality_reserve.push(o.reserve.quality);
                point.quality_reject.push(o.reject.quality);
                obs.absorb(&snap);
            }
            point
        })
        .collect()
}

/// Renders the sweep as a markdown table. `served Δ` is the
/// reservation dividend: percentage points of offered flows served to
/// completion that a reservation-free controller loses.
pub fn render(points: &[SchedulePoint]) -> String {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            let dividend = (p.served_reserve.mean() - p.served_reject.mean()) * 100.0;
            vec![
                format!("{:.1}", p.offered_load),
                format!("{:.0} %", p.scheduled_rate.mean() * 100.0),
                format!("{:.0} %", p.reserved_rate.mean() * 100.0),
                format!("{:.1}", p.mean_wait_slots.mean()),
                format!("{:.0} %", p.served_reserve.mean() * 100.0),
                format!("{:.0} %", p.served_reject.mean() * 100.0),
                format!("{dividend:+.1} pp"),
                crate::report::pct(p.quality_reserve.mean()),
            ]
        })
        .collect();
    let header = vec![
        "ρ",
        "scheduled",
        "reserved",
        "mean wait (slots)",
        "served (reserve)",
        "served (reject)",
        "served Δ",
        "predicted Q",
    ];
    crate::report::markdown_table(&header, &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offered_windows_is_deterministic_and_in_horizon() {
        let a = offered_windows(1.0, 7, 16);
        let b = offered_windows(1.0, 7, 16);
        assert_eq!(a.len(), 16);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.window, y.window);
            assert_eq!(x.flow.data_rate().to_bits(), y.flow.data_rate().to_bits());
            assert!(grid().contains_window(&x.window));
        }
    }

    #[test]
    fn the_reserve_arm_never_serves_fewer_flows_than_the_reject_arm() {
        let mc = MonteCarloConfig::single(0xD5);
        let points = load_sweep_mc(&[1.5], &mc, 24, &dmc_obs::Obs::disabled());
        assert_eq!(points.len(), 1);
        let p = &points[0];
        assert!(p.served_reserve.mean() >= p.served_reject.mean() - 1e-12);
        // Scheduled-now flows are served in both arms.
        assert!(p.served_reject.mean() >= p.scheduled_rate.mean() - 1e-12);
    }

    #[test]
    fn reservations_show_up_in_telemetry() {
        let obs = dmc_obs::Obs::enabled();
        let mc = MonteCarloConfig::single(0xD5);
        let points = load_sweep_mc(&[2.0], &mc, 24, &obs);
        let snap = obs.snapshot();
        let reserved = snap.counter("fleet.reservations").unwrap_or(0);
        if points[0].reserved_rate.mean() > 0.0 {
            assert!(reserved > 0, "reserved flows must tick fleet.reservations");
        }
    }
}
