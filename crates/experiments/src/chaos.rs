//! dmc-chaos: seeded fault scripts replayed against invariant checkers.
//!
//! Two legs, one seed discipline:
//!
//! * **fleet chaos** — a seeded [`FleetTrace`] (mixed-priority floored
//!   arrivals, a capacity retune, a *correlated two-link outage*, a
//!   recovery, and enough trailing capacity events to drain the shed
//!   queue) is replayed through a [`FleetPlanner`] with
//!   [`FleetConfig::certify`] on, so **every** joint-LP solution is
//!   re-checked against its constraint system in release builds. The
//!   snapshots then go through [`check_invariants`]:
//!
//!   1. per-path allocation never exceeds surviving capacity
//!      (`utilization ≤ 1` after every event);
//!   2. every shed flow is revived or definitively rejected within
//!      [`FleetPlanner::SHED_HORIZON`] capacity events of being shed
//!      (the capped-backoff telescoping bound);
//!   3. the whole run — decisions, shed/revive order, bitwise
//!      utilizations — reproduces exactly from the seed
//!      ([`fleet_chaos_trial`] replays twice and compares FNV-1a trace
//!      hashes).
//!
//! * **proto chaos** — the paper's Table III scenario simulated under a
//!   packet-level [`FaultPlan`] (payload corruption, frame duplication,
//!   bounded reordering): corrupted frames must be caught by the wire
//!   checksum (they surface as `malformed`, never as deliveries),
//!   duplicates must be discarded by the receiver's dedup window, and
//!   the run must be bit-identical when repeated with the same seed.
//!
//! Both legs run per-trial through the Monte-Carlo engine and fold in
//! trial order, so the aggregate report is thread-count independent.

use crate::montecarlo::{run_trials_parallel, trial_seed, MonteCarloConfig};
use crate::runner::{run_measured, RunConfig, RunOutcome, TrueNetwork};
use crate::scenarios;
use dmc_core::{ModelConfig, ScenarioPath};
use dmc_fleet::{
    FleetConfig, FleetEvent, FleetPlanner, FleetSnapshot, FleetTrace, FlowId, FlowRequest,
    TraceEvent,
};
use dmc_sim::{FaultPlan, LinkChange, SimDuration};
use std::collections::BTreeMap;

/// Default flows offered per chaos trial.
pub const CHAOS_FLOWS: u64 = 8;

/// Utilization slack: the joint LP's own feasibility tolerance.
const UTIL_EPS: f64 = 1e-6;

/// The chaos topology: the Table III pair plus a third mid-grade path,
/// so a *two*-link correlated outage still leaves a survivor.
pub fn chaos_paths() -> Vec<ScenarioPath> {
    vec![
        ScenarioPath::constant(80e6, 0.450, 0.2).expect("literal path parameters are valid"),
        ScenarioPath::constant(20e6, 0.150, 0.0).expect("literal path parameters are valid"),
        ScenarioPath::constant(40e6, 0.250, 0.05).expect("literal path parameters are valid"),
    ]
}

/// Aggregate capacity of [`chaos_paths`] in bits/second.
pub fn chaos_capacity() -> f64 {
    chaos_paths().iter().map(ScenarioPath::bandwidth).sum()
}

/// Deterministic scalar stream derived from a trial seed (the same
/// stateless SplitMix64 finalization the fleet experiment uses).
struct SeedStream {
    seed: u64,
    k: u64,
}

impl SeedStream {
    fn new(seed: u64) -> Self {
        SeedStream { seed, k: 0 }
    }

    fn next_u64(&mut self) -> u64 {
        self.k += 1;
        trial_seed(self.seed, self.k)
    }

    /// Uniform in `[0, 1)`.
    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`.
    fn in_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.unit()
    }

    fn pick(&mut self, xs: &[f64]) -> f64 {
        xs[(self.next_u64() % xs.len() as u64) as usize]
    }
}

/// The seeded chaos script: `flows` mixed-priority arrivals summing to
/// ≈ 90 % of aggregate capacity, then a retune of the clean path, then a
/// correlated outage of paths 0 and 2 (one fault domain, identical
/// instant), then recovery — followed by [`FleetPlanner::SHED_HORIZON`]
/// no-op retunes, which give the re-admission queue enough capacity
/// events to resolve every shed flow (revive it or definitively reject
/// it) before the trace ends.
pub fn chaos_trace(seed: u64, flows: u64) -> FleetTrace {
    let flows = flows.max(1);
    let mut rng = SeedStream::new(seed);
    let mean_rate = 0.9 * chaos_capacity() / flows as f64;
    let mut trace = FleetTrace::new();
    for i in 0..flows {
        let rate = mean_rate * rng.in_range(0.5, 1.5);
        let lifetime = rng.in_range(0.4, 1.2);
        let floor = rng.pick(&[0.0, 0.7, 0.8, 0.9]);
        let priority = rng.pick(&[1.0, 2.0, 4.0, 8.0]);
        let request = FlowRequest::new(rate, lifetime)
            .expect("valid request")
            .with_min_quality(floor)
            .with_priority(priority);
        trace = trace
            .arrive(i as f64, request)
            .expect("arrival times increase with flow index");
    }
    let t0 = flows as f64;
    let retune = rng.in_range(15e6, 20e6);
    trace = trace
        .link(t0, 1, LinkChange::SetBandwidth(retune))
        .expect("literal event times are finite")
        // The correlated fault domain: both failures at the same instant.
        .link(t0 + 1.0, 0, LinkChange::Fail)
        .expect("literal event times are finite")
        .link(t0 + 1.0, 2, LinkChange::Fail)
        .expect("literal event times are finite")
        .link(t0 + 2.0, 0, LinkChange::Recover)
        .expect("literal event times are finite")
        .link(t0 + 2.0, 2, LinkChange::Recover)
        .expect("literal event times are finite");
    // Trailing no-op retunes: capacity events that shed nothing but give
    // the backoff queue its full horizon of revival sweeps.
    for k in 0..FleetPlanner::SHED_HORIZON {
        trace = trace
            .link(t0 + 3.0 + k as f64, 1, LinkChange::SetBandwidth(retune))
            .expect("literal event times are finite");
    }
    trace
}

/// Replays the chaos script of `seed` through a fresh certifying fleet
/// and returns the snapshots plus the planner's end state.
///
/// Certification is the first invariant: with [`FleetConfig::certify`]
/// set, every joint-LP solution along the way is re-verified against
/// its constraint system (release builds included) and a violation
/// panics instead of propagating silently.
///
/// # Errors
///
/// Forwards planner construction/replay errors as strings.
pub fn chaos_replay(seed: u64, flows: u64) -> Result<(Vec<FleetSnapshot>, FleetPlanner), String> {
    chaos_replay_obs(seed, flows, &dmc_obs::Obs::disabled())
}

/// [`chaos_replay`] with the planner's telemetry (`fleet.*`, `lp.*`)
/// recorded into `obs`.
///
/// # Errors
///
/// Forwards planner construction/replay errors as strings.
pub fn chaos_replay_obs(
    seed: u64,
    flows: u64,
    obs: &dmc_obs::Obs,
) -> Result<(Vec<FleetSnapshot>, FleetPlanner), String> {
    let mut fleet = FleetPlanner::new(
        chaos_paths(),
        FleetConfig {
            certify: true,
            obs: obs.clone(),
            ..FleetConfig::default()
        },
    )
    .map_err(|e| e.to_string())?;
    let snaps = fleet
        .replay(&chaos_trace(seed, flows))
        .map_err(|e| e.to_string())?;
    Ok((snaps, fleet))
}

/// FNV-1a over the debug rendering of every snapshot plus the planner's
/// terminal shed/rejected/anomaly state: two runs hash equal iff they
/// agree on every decision, shed/revive sequence and every bit of every
/// utilization figure.
pub fn trace_hash(snaps: &[FleetSnapshot], fleet: &FleetPlanner) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    for s in snaps {
        eat(format!("{s:?}").as_bytes());
    }
    eat(format!("{:?}", fleet.shed_rejected()).as_bytes());
    eat(format!("{:?}", fleet.revived_flows()).as_bytes());
    eat(format!("{}", fleet.warm_anomalies()).as_bytes());
    h
}

/// Checks the replayed snapshots against the trace's structure and
/// returns every violation found (empty = all invariants hold):
///
/// * **capacity**: after every event, every path's allocation stays
///   within its surviving capacity (`utilization ≤ 1 + ε`);
/// * **bounded re-admission**: every shed flow is revived or
///   definitively rejected within [`FleetPlanner::SHED_HORIZON`]
///   capacity events of the event that shed it (flows shed too close to
///   the end of the trace for the horizon to elapse are exempt).
///
/// # Panics
///
/// Panics if `snaps` was not produced by replaying `trace` (length
/// mismatch).
pub fn check_invariants(
    trace: &FleetTrace,
    snaps: &[FleetSnapshot],
    fleet: &FleetPlanner,
) -> Vec<String> {
    assert_eq!(
        trace.events().len(),
        snaps.len(),
        "snapshots must come from replaying this trace"
    );
    let mut violations = Vec::new();
    // Per-id: capacity-event index at which the flow was (last) shed.
    let mut pending: BTreeMap<FlowId, usize> = BTreeMap::new();
    let mut cap_events = 0usize;
    for (i, (e, s)) in trace.events().iter().zip(snaps).enumerate() {
        for (k, u) in s.utilization.iter().enumerate() {
            if *u > 1.0 + UTIL_EPS {
                violations.push(format!(
                    "event {i}: path {k} allocated {:.4}× its surviving capacity",
                    u
                ));
            }
        }
        // Capacity events are the ones that run a revival sweep: link
        // changes and *effective* departures (a no-op departure of a
        // never-admitted id frees nothing and sweeps nothing).
        let is_capacity_event = matches!(e.event, FleetEvent::Link { .. })
            || (matches!(e.event, FleetEvent::Depart(_)) && s.departed.is_some());
        if is_capacity_event {
            cap_events += 1;
        }
        for id in &s.revived {
            if let Some(shed_at) = pending.remove(id) {
                let elapsed = cap_events - shed_at;
                if elapsed > FleetPlanner::SHED_HORIZON {
                    violations.push(format!(
                        "event {i}: {id} revived only after {elapsed} capacity events \
                         (horizon {})",
                        FleetPlanner::SHED_HORIZON
                    ));
                }
            }
        }
        for id in &s.shed {
            pending.insert(*id, cap_events);
        }
    }
    // Definitive rejection happens on the final failed attempt, which the
    // backoff schedule places exactly at the horizon — resolved by
    // construction.
    for id in fleet.shed_rejected() {
        pending.remove(id);
    }
    for (id, shed_at) in pending {
        let elapsed = cap_events - shed_at;
        if elapsed > FleetPlanner::SHED_HORIZON {
            violations.push(format!(
                "{id} still queued {elapsed} capacity events after being shed \
                 (horizon {})",
                FleetPlanner::SHED_HORIZON
            ));
        }
    }
    violations
}

/// One fleet-chaos trial's summary.
#[derive(Debug, Clone)]
pub struct FleetChaosOutcome {
    /// The trial seed.
    pub seed: u64,
    /// Flows shed (over the whole trace, with multiplicity).
    pub shed: usize,
    /// Flows revived from the queue.
    pub revived: usize,
    /// Flows definitively rejected after exhausting their attempts.
    pub rejected: usize,
    /// Warm-start anomalies absorbed (basis dropped, cold re-solve).
    pub warm_anomalies: u64,
    /// The run's trace hash (bit-identical across same-seed replays).
    pub hash: u64,
    /// Invariant violations (empty = pass).
    pub violations: Vec<String>,
}

/// Runs one seeded fleet-chaos trial: replays the script **twice**
/// (fresh planners), demands bitwise-identical trace hashes, and checks
/// the capacity and bounded-re-admission invariants.
///
/// # Errors
///
/// Forwards planner construction/replay errors as strings.
pub fn fleet_chaos_trial(seed: u64, flows: u64) -> Result<FleetChaosOutcome, String> {
    fleet_chaos_trial_obs(seed, flows, &dmc_obs::Obs::disabled())
}

/// [`fleet_chaos_trial`] with the **first** replay's telemetry recorded
/// into `obs` (the verification replay stays unrecorded, so counter
/// deltas describe exactly one run of the script). With an enabled
/// registry the trial gains a third invariant class: the telemetry
/// deltas over the replay ([`dmc_obs::Obs::diff`] against the
/// pre-replay snapshot) must agree with the ground truth the planner's
/// own state reports — `fleet.sheds`, `fleet.revives`,
/// `fleet.shed_rejects` and `fleet.warm_anomalies` each cross-checked
/// against the outcome. A mismatch means the instrumentation itself
/// drifted and is reported as an invariant violation.
///
/// # Errors
///
/// Forwards planner construction/replay errors as strings.
pub fn fleet_chaos_trial_obs(
    seed: u64,
    flows: u64,
    obs: &dmc_obs::Obs,
) -> Result<FleetChaosOutcome, String> {
    let before = obs.snapshot();
    let (snaps, fleet) = chaos_replay_obs(seed, flows, obs)?;
    let (snaps2, fleet2) = chaos_replay(seed, flows)?;
    let trace = chaos_trace(seed, flows);
    let hash = trace_hash(&snaps, &fleet);
    let mut violations = check_invariants(&trace, &snaps, &fleet);
    if trace_hash(&snaps2, &fleet2) != hash {
        violations.push(format!(
            "seed {seed:#x}: same-seed replays diverge (trace hashes differ)"
        ));
    }
    if obs.is_enabled() {
        let delta = obs.diff(&before);
        let shed: usize = snaps.iter().map(|s| s.shed.len()).sum();
        let revived: usize = snaps.iter().map(|s| s.revived.len()).sum();
        for (name, want) in [
            ("fleet.sheds", shed as u64),
            ("fleet.revives", revived as u64),
            ("fleet.shed_rejects", fleet.shed_rejected().len() as u64),
            ("fleet.warm_anomalies", fleet.warm_anomalies()),
        ] {
            let got = delta.counter(name).unwrap_or(0);
            if got != want {
                violations.push(format!(
                    "seed {seed:#x}: telemetry counter {name} recorded {got} \
                     but the planner's own state says {want}"
                ));
            }
        }
    }
    Ok(FleetChaosOutcome {
        seed,
        shed: snaps.iter().map(|s| s.shed.len()).sum(),
        revived: snaps.iter().map(|s| s.revived.len()).sum(),
        rejected: fleet.shed_rejected().len(),
        warm_anomalies: fleet.warm_anomalies(),
        hash,
        violations,
    })
}

/// Runs `mc.trials` fleet-chaos trials through the parallel Monte-Carlo
/// engine (results folded in trial order: thread-count independent).
///
/// # Panics
///
/// Panics if a trial fails outright (planner construction — not
/// reachable from the library's own scenario set).
pub fn fleet_chaos_mc(mc: &MonteCarloConfig, flows: u64) -> Vec<FleetChaosOutcome> {
    fleet_chaos_mc_obs(mc, flows, &dmc_obs::Obs::disabled())
}

/// [`fleet_chaos_mc`] with telemetry. Each trial records into its own
/// [`dmc_obs::Obs::fork`] (trials run on arbitrary worker threads; span
/// and warning order inside a shared registry would depend on
/// scheduling), and the forks' snapshots are absorbed into `obs` in
/// trial order afterwards — so the merged registry is bit-identical at
/// any `--threads` setting.
///
/// # Panics
///
/// Panics if a trial fails outright (planner construction — not
/// reachable from the library's own scenario set).
pub fn fleet_chaos_mc_obs(
    mc: &MonteCarloConfig,
    flows: u64,
    obs: &dmc_obs::Obs,
) -> Vec<FleetChaosOutcome> {
    run_trials_parallel(mc, |_trial, seed| {
        let fork = obs.fork();
        let outcome = fleet_chaos_trial_obs(seed, flows, &fork);
        (outcome, fork.snapshot())
    })
    .into_iter()
    .map(|(r, trial_obs)| {
        obs.absorb(&trial_obs);
        r.expect("fleet chaos trial failed")
    })
    .collect()
}

/// Renders fleet-chaos trials as a markdown table.
pub fn render(outcomes: &[FleetChaosOutcome]) -> String {
    let rows: Vec<Vec<String>> = outcomes
        .iter()
        .map(|o| {
            vec![
                format!("{:#018x}", o.seed),
                o.shed.to_string(),
                o.revived.to_string(),
                o.rejected.to_string(),
                o.warm_anomalies.to_string(),
                format!("{:#018x}", o.hash),
                if o.violations.is_empty() {
                    "pass".into()
                } else {
                    format!("{} VIOLATIONS", o.violations.len())
                },
            ]
        })
        .collect();
    crate::report::markdown_table(
        &[
            "seed",
            "shed",
            "revived",
            "rejected",
            "warm anomalies",
            "trace hash",
            "invariants",
        ],
        &rows,
    )
}

/// The proto-chaos fault mix: 2 % payload corruption, 2 % duplication,
/// 5 % bounded reordering within 5 ms.
///
/// # Panics
///
/// Never — the literal probabilities are valid.
pub fn proto_fault_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .with_corruption(0.02)
        .expect("literal probability")
        .with_duplication(0.02)
        .expect("literal probability")
        .with_reordering(0.05, SimDuration::from_millis(5))
        .expect("literal probability")
}

/// Simulates the paper's Table III scenario (λ = 60 Mbps, δ = 800 ms)
/// under [`proto_fault_plan`]: corrupted frames are rejected by the wire
/// checksum (surfacing as `receiver.malformed`), duplicates are
/// discarded by the dedup window, and the protocol's retransmission
/// machinery recovers the losses.
///
/// # Errors
///
/// Forwards model/solver and topology errors as strings.
pub fn proto_chaos_run(seed: u64, messages: u64) -> Result<RunOutcome, String> {
    proto_chaos_run_obs(seed, messages, &dmc_obs::Obs::disabled())
}

/// [`proto_chaos_run`] with the run's telemetry (`proto.tx.*`,
/// `proto.rx.*`, `sim.*`, `runner.runs`) recorded into `obs`.
///
/// # Errors
///
/// Forwards model/solver and topology errors as strings.
pub fn proto_chaos_run_obs(
    seed: u64,
    messages: u64,
    obs: &dmc_obs::Obs,
) -> Result<RunOutcome, String> {
    let measured = scenarios::table3_true(60e6, 0.8);
    let truth = TrueNetwork::deterministic(&measured);
    let mut cfg = RunConfig::default();
    cfg.messages = messages;
    cfg.seed = trial_seed(seed, 1);
    cfg.faults = Some(proto_fault_plan(trial_seed(seed, 2)));
    cfg.obs = obs.clone();
    run_measured(
        &measured,
        scenarios::QUEUE_MARGIN_S,
        &truth,
        &ModelConfig::default(),
        &cfg,
    )
}

/// Convenience: the priority each arrival in `trace` asked for, keyed by
/// the [`FlowId`] it will receive (ids are offer-ordered, so the k-th
/// arrival becomes flow k). Used by acceptance tests to assert that the
/// outage sheds only lowest-priority flows.
pub fn trace_priorities(trace: &FleetTrace) -> BTreeMap<FlowId, f64> {
    trace
        .events()
        .iter()
        .filter_map(|e: &TraceEvent| match &e.event {
            FleetEvent::Arrive(r) => Some(r),
            _ => None,
        })
        .enumerate()
        .map(|(k, r)| (FlowId::from_index(k as u64), r.priority()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_trace_is_a_pure_function_of_its_seed() {
        let a = chaos_trace(7, CHAOS_FLOWS);
        let b = chaos_trace(7, CHAOS_FLOWS);
        assert_eq!(a.events().len(), b.events().len());
        let rate = |t: &FleetTrace, i: usize| match &t.events()[i].event {
            FleetEvent::Arrive(r) => r.data_rate(),
            _ => panic!("expected an arrival"),
        };
        assert_eq!(rate(&a, 0), rate(&b, 0));
        assert_ne!(rate(&a, 0), rate(&chaos_trace(8, CHAOS_FLOWS), 0));
        // Arrivals + retune + 2 fails + 2 recovers + horizon of no-ops.
        assert_eq!(
            a.events().len(),
            CHAOS_FLOWS as usize + 5 + FleetPlanner::SHED_HORIZON
        );
    }

    #[test]
    fn fleet_chaos_trials_hold_all_invariants() {
        for seed in [1u64, 0xC0FFEE, 0xD15EA5E] {
            let o = fleet_chaos_trial(seed, CHAOS_FLOWS).unwrap();
            assert!(
                o.violations.is_empty(),
                "seed {seed:#x}: {:?}",
                o.violations
            );
            assert!(
                o.shed > 0,
                "seed {seed:#x}: a 120-of-140-Mbps outage must shed something"
            );
            // Everything shed is accounted for: revived (possibly after
            // being shed more than once) or definitively rejected.
            assert!(o.revived + o.rejected > 0);
        }
    }

    #[test]
    fn fleet_chaos_aggregate_is_thread_count_independent() {
        let run = |threads| {
            fleet_chaos_mc(
                &MonteCarloConfig {
                    trials: 3,
                    threads,
                    base_seed: 42,
                },
                CHAOS_FLOWS,
            )
        };
        let (seq, par) = (run(1), run(4));
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.seed, b.seed);
            assert_eq!(a.hash, b.hash, "trace hash must not depend on threads");
            assert_eq!(a.shed, b.shed);
            assert_eq!(a.revived, b.revived);
            assert_eq!(a.rejected, b.rejected);
        }
        let table = render(&seq);
        assert!(table.contains("pass"), "{table}");
    }

    #[test]
    fn chaos_telemetry_reproduces_bitwise_across_thread_counts() {
        let run = |threads| {
            let obs = dmc_obs::Obs::enabled();
            let outcomes = fleet_chaos_mc_obs(
                &MonteCarloConfig {
                    trials: 3,
                    threads,
                    base_seed: 42,
                },
                CHAOS_FLOWS,
                &obs,
            );
            for o in &outcomes {
                assert!(
                    o.violations.is_empty(),
                    "seed {:#x}: {:?} (telemetry cross-check included)",
                    o.seed,
                    o.violations
                );
            }
            obs.snapshot()
        };
        let (seq, par) = (run(1), run(4));
        assert_eq!(
            seq.fnv_hash(),
            par.fnv_hash(),
            "merged telemetry must not depend on worker threads"
        );
        // The script sheds under the correlated outage, and every joint
        // solve lands in the shared registry.
        assert!(seq.counter("fleet.sheds").unwrap_or(0) > 0);
        assert!(seq.counter("lp.solves").unwrap_or(0) > 0);
    }

    #[test]
    fn check_invariants_flags_a_capacity_breach() {
        // Forge a snapshot claiming 2× allocation on path 0: the checker
        // must catch it (guards against the checker rotting into a no-op).
        let (mut snaps, fleet) = chaos_replay(3, 4).unwrap();
        let trace = chaos_trace(3, 4);
        assert!(check_invariants(&trace, &snaps, &fleet).is_empty());
        snaps[0].utilization[0] = 2.0;
        let v = check_invariants(&trace, &snaps, &fleet);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("surviving capacity"), "{v:?}");
    }

    #[test]
    fn proto_chaos_detects_corruption_and_discards_duplicates() {
        let out = proto_chaos_run(11, 3_000).unwrap();
        let inj = out.faults_injected;
        assert!(inj.corrupted > 0 && inj.duplicated > 0 && inj.reordered > 0);
        // Every corrupted frame that arrived was caught by the checksum —
        // none parsed as a delivery — and some did arrive. A corrupted
        // frame that was *also* duplicated is rejected twice, so the
        // ceiling adds the duplicate budget.
        assert!(out.receiver.malformed > 0);
        assert!(out.receiver.malformed <= inj.corrupted + inj.duplicated);
        // Injected duplicates that arrived were discarded alongside the
        // protocol's own retransmission duplicates.
        assert!(out.receiver.duplicates > 0);
        // The retransmission machinery absorbs the 2 % corruption rate.
        assert!(out.quality > 0.9, "quality {}", out.quality);
        // Bitwise reproducible from the seed.
        let again = proto_chaos_run(11, 3_000).unwrap();
        assert_eq!(out.sender, again.sender);
        assert_eq!(out.receiver, again.receiver);
        assert_eq!(out.faults_injected, again.faults_injected);
    }
}
