//! Fleet / multi-flow experiment: admission rate, per-flow delivery
//! probability and aggregate utilization **vs. offered load**, on the
//! paper's Table III path pair shared by many concurrent flows.
//!
//! Per trial, a deterministic arrival trace (rates, deadlines and quality
//! floors drawn from the trial's seed stream) is replayed through a fresh
//! [`FleetPlanner`]; each admitted flow's decomposed [`Plan`] is then
//! **verified by simulation** on its allocated slice of the shared paths
//! (link bandwidth = the flow's joint-LP send rates, over-provisioned 2×
//! like Experiment 2 so queueing bursts don't mask the allocation
//! itself). Trials run through the parallel Monte-Carlo engine and are
//! folded in trial order, so every reported aggregate is bit-identical at
//! any thread count (`DMC_THREADS`).

use crate::montecarlo::{run_trials_parallel, trial_seed, MonteCarloConfig};
use crate::runner::{run_plan, RunConfig, TrueLink, TrueNetwork};
use dmc_core::{Plan, ScenarioPath};
use dmc_fleet::{FleetConfig, FleetObjective, FleetPlanner, FleetTrace, FlowRequest};
use dmc_stats::TrialStats;
use std::sync::Arc;

/// Default flows offered per trial (`--flows`/`FLOWS` override it; the
/// incremental sparse joint solver keeps sweeps with hundreds of
/// concurrent flows tractable — see `BENCH_fleet.json`'s 64-flow
/// subjects).
pub const FLOWS_PER_TRIAL: u64 = 10;

/// The shared links every flow contends for: the paper's Table III pair
/// (80 Mbps / 450 ms / 20 % and 20 Mbps / 150 ms / 0 %), 100 Mbps of
/// aggregate capacity.
pub fn shared_paths() -> Vec<ScenarioPath> {
    vec![
        ScenarioPath::constant(80e6, 0.450, 0.2).expect("literal path parameters are valid"),
        ScenarioPath::constant(20e6, 0.150, 0.0).expect("literal path parameters are valid"),
    ]
}

/// Aggregate capacity of [`shared_paths`] in bits/second.
pub fn total_capacity() -> f64 {
    shared_paths().iter().map(ScenarioPath::bandwidth).sum()
}

/// The swept offered loads `ρ = Σλ_f / Σb_k` (0.25 … 2.0): past 1.0 the
/// blackhole absorbs best-effort surplus, and once the *floored* demand
/// alone exceeds what the shared paths can deliver, admission control
/// starts rejecting.
pub fn paper_loads() -> Vec<f64> {
    (1..=8).map(|i| i as f64 * 0.25).collect()
}

/// Deterministic scalar stream derived from a trial seed (stateless
/// SplitMix64 finalization via [`trial_seed`], so a trace is a pure
/// function of its seed).
pub(crate) struct SeedStream {
    seed: u64,
    k: u64,
}

impl SeedStream {
    pub(crate) fn new(seed: u64) -> Self {
        SeedStream { seed, k: 0 }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.k += 1;
        trial_seed(self.seed, self.k)
    }

    /// Uniform in `[0, 1)`.
    pub(crate) fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`.
    pub(crate) fn in_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.unit()
    }

    pub(crate) fn pick(&mut self, xs: &[f64]) -> f64 {
        xs[(self.next_u64() % xs.len() as u64) as usize]
    }
}

/// The arrival trace of one trial at offered load `load`:
/// [`FLOWS_PER_TRIAL`] flows whose rates sum to ≈ `load × total
/// capacity`, with deadlines in `[0.3 s, 1.2 s)` and quality floors
/// drawn from `{best-effort, 0.8, 0.9, 0.95}`.
pub fn offered_trace(load: f64, seed: u64) -> FleetTrace {
    offered_trace_n(load, seed, FLOWS_PER_TRIAL)
}

/// [`offered_trace`] with an explicit flow count (the `--flows` knob):
/// the aggregate offered rate stays `load × total capacity`, split over
/// `flows` arrivals.
pub fn offered_trace_n(load: f64, seed: u64, flows: u64) -> FleetTrace {
    let flows = flows.max(1);
    let mut rng = SeedStream::new(seed);
    let mean_rate = load * total_capacity() / flows as f64;
    let mut trace = FleetTrace::new();
    for i in 0..flows {
        let rate = mean_rate * rng.in_range(0.5, 1.5);
        let lifetime = rng.in_range(0.3, 1.2);
        let floor = rng.pick(&[0.0, 0.8, 0.9, 0.95]);
        let request = FlowRequest::new(rate, lifetime)
            .expect("valid request")
            .with_min_quality(floor);
        trace = trace
            .arrive(i as f64, request)
            .expect("arrival times increase with flow index");
    }
    trace
}

/// The true network of one admitted flow's *allocated slice*: each
/// shared path's bandwidth replaced by the flow's joint-LP send rate
/// (floored at 1 kbps so unused paths still construct — they carry no
/// traffic anyway), over-provisioned 2× for queueing slack per the
/// paper's Experiment-2 practice. This is the verification convention
/// the fleet driver and `examples/fleet.rs` share.
pub fn allocated_slice(plan: &Plan) -> TrueNetwork {
    let links: Vec<TrueLink> = plan
        .scenario()
        .paths()
        .iter()
        .zip(plan.send_rates())
        .map(|(path, &rate)| TrueLink {
            bandwidth: rate.max(1e3),
            delay: Arc::clone(path.delay()),
            loss: path.loss().into(),
        })
        .collect();
    TrueNetwork::from_links(links).over_provisioned(2.0)
}

/// Simulates one admitted flow's plan on its allocated slice of the
/// shared paths and returns the measured in-time delivery fraction.
fn measure_flow(plan: &Plan, cfg: &RunConfig, seed: u64) -> Result<f64, String> {
    let mut trial_cfg = cfg.clone();
    trial_cfg.seed = seed;
    run_plan(plan, &allocated_slice(plan), &trial_cfg).map(|o| o.quality)
}

/// Per-trial outcome (folded into a [`FleetPoint`] in trial order).
struct TrialOutcome {
    admission_rate: f64,
    predicted_quality: f64,
    measured_quality: f64,
    utilization: f64,
}

fn run_trial(load: f64, seed: u64, cfg: &RunConfig, flows: u64) -> Result<TrialOutcome, String> {
    let mut fleet =
        FleetPlanner::new(shared_paths(), FleetConfig::default()).map_err(|e| e.to_string())?;
    fleet
        .replay(&offered_trace_n(load, seed, flows))
        .map_err(|e| e.to_string())?;
    let admitted = fleet.flow_ids();
    let admission_rate = admitted.len() as f64 / flows.max(1) as f64;
    let predicted_quality = fleet.aggregate_quality();
    // Capacity-weighted aggregate utilization: Σ_k util_k·b_k / Σ_k b_k.
    let caps: Vec<f64> = shared_paths().iter().map(|p| p.bandwidth()).collect();
    let utilization = fleet
        .utilization()
        .iter()
        .zip(&caps)
        .map(|(u, b)| u * b)
        .sum::<f64>()
        / caps.iter().sum::<f64>();
    // Verify each admitted flow's plan by simulation on its slice.
    let mut weighted = 0.0;
    let mut lambda_tot = 0.0;
    for (i, id) in admitted.iter().enumerate() {
        let plan = fleet
            .plan_of(*id)
            .expect("id was taken from the admitted list");
        let lambda = plan.scenario().data_rate();
        let q = measure_flow(plan, cfg, trial_seed(seed, 1_000 + i as u64))?;
        weighted += lambda * q;
        lambda_tot += lambda;
    }
    let measured_quality = if lambda_tot > 0.0 {
        weighted / lambda_tot
    } else {
        0.0
    };
    Ok(TrialOutcome {
        admission_rate,
        predicted_quality,
        measured_quality,
        utilization,
    })
}

/// One point of the offered-load sweep.
#[derive(Debug, Clone)]
pub struct FleetPoint {
    /// Offered load `ρ` (aggregate requested rate / aggregate capacity).
    pub offered_load: f64,
    /// Flows offered per trial.
    pub offered: u64,
    /// Fraction of offered flows admitted, across trials.
    pub admission_rate: TrialStats,
    /// Rate-weighted LP-predicted delivery probability of admitted flows.
    pub predicted_quality: TrialStats,
    /// Rate-weighted *simulated* delivery fraction of admitted flows
    /// (each on its allocated slice).
    pub measured_quality: TrialStats,
    /// Capacity-weighted aggregate utilization of the shared paths.
    pub utilization: TrialStats,
}

/// Sweeps offered load through the parallel Monte-Carlo engine: per
/// point, `mc.trials` independent traces are generated, replayed and
/// simulated, and the aggregates are folded in trial order
/// (bit-identical at any thread count).
///
/// # Panics
///
/// Panics if a trial fails (invalid topology — not reachable from the
/// library's own scenario set).
pub fn load_sweep_mc(loads: &[f64], cfg: &RunConfig, mc: &MonteCarloConfig) -> Vec<FleetPoint> {
    load_sweep_mc_n(loads, cfg, mc, FLOWS_PER_TRIAL)
}

/// [`load_sweep_mc`] with an explicit per-trial flow count (the
/// `--flows` knob of the fleet driver).
pub fn load_sweep_mc_n(
    loads: &[f64],
    cfg: &RunConfig,
    mc: &MonteCarloConfig,
    flows: u64,
) -> Vec<FleetPoint> {
    loads
        .iter()
        .map(|&load| {
            let outcomes =
                run_trials_parallel(mc, |_trial, seed| run_trial(load, seed, cfg, flows));
            let mut point = FleetPoint {
                offered_load: load,
                offered: flows.max(1),
                admission_rate: TrialStats::new(),
                predicted_quality: TrialStats::new(),
                measured_quality: TrialStats::new(),
                utilization: TrialStats::new(),
            };
            for outcome in outcomes {
                let o = outcome.expect("fleet trial failed");
                point.admission_rate.push(o.admission_rate);
                point.predicted_quality.push(o.predicted_quality);
                point.measured_quality.push(o.measured_quality);
                point.utilization.push(o.utilization);
            }
            point
        })
        .collect()
}

/// [`load_sweep_mc`] with one trial seeded from `cfg.seed`.
pub fn load_sweep(loads: &[f64], cfg: &RunConfig) -> Vec<FleetPoint> {
    load_sweep_mc(loads, cfg, &MonteCarloConfig::single(cfg.seed))
}

/// Renders the sweep as a markdown table; with multiple trials per point
/// a `±95 % CI` column (Student-t half-width, percentage points) follows
/// the simulated delivery column.
pub fn render(points: &[FleetPoint]) -> String {
    let with_ci = points.iter().any(|p| p.admission_rate.count() > 1);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            let mut row = vec![
                format!("{:.1}", p.offered_load),
                format!("{:.0} %", p.admission_rate.mean() * 100.0),
                crate::report::pct(p.predicted_quality.mean()),
                crate::report::pct(p.measured_quality.mean()),
            ];
            if with_ci {
                row.push(format!(
                    "±{:.2}",
                    p.measured_quality.half_width(0.95) * 100.0
                ));
            }
            row.push(format!("{:.0} %", p.utilization.mean() * 100.0));
            row
        })
        .collect();
    let mut header = vec!["ρ", "admitted", "predicted Q", "sim Q"];
    if with_ci {
        header.push("±95% CI");
    }
    header.push("utilization");
    crate::report::markdown_table(&header, &rows)
}

/// One row of the objective-mode comparison (LP only, no simulation).
#[derive(Debug, Clone)]
pub struct ModeRow {
    /// Mode name.
    pub mode: &'static str,
    /// Admitted flows out of [`FLOWS_PER_TRIAL`].
    pub admitted: usize,
    /// Rate-weighted aggregate quality of the admitted set.
    pub aggregate_quality: f64,
    /// The *worst* admitted flow's delivery probability.
    pub min_flow_quality: f64,
}

/// Compares the three [`FleetObjective`] modes on the same offered trace
/// (admission is floor-feasibility based in all three, so the admitted
/// *sets* agree for sequential arrivals; the allocations differ).
///
/// # Panics
///
/// Panics only on internal solver failure.
pub fn objective_comparison(load: f64, seed: u64) -> Vec<ModeRow> {
    let modes = [
        ("MaxAdmitted", FleetObjective::MaxAdmitted),
        ("MaxTotalQuality", FleetObjective::MaxTotalQuality),
        ("WeightedFair", FleetObjective::WeightedFair),
    ];
    modes
        .iter()
        .map(|(name, objective)| {
            let mut fleet = FleetPlanner::new(
                shared_paths(),
                FleetConfig {
                    objective: *objective,
                    ..FleetConfig::default()
                },
            )
            .expect("literal path parameters are valid");
            fleet
                .replay(&offered_trace(load, seed))
                .expect("replay succeeds");
            let min_flow_quality = fleet
                .plans()
                .map(|(_, p)| p.quality())
                .fold(f64::INFINITY, f64::min);
            ModeRow {
                mode: name,
                admitted: fleet.num_flows(),
                aggregate_quality: fleet.aggregate_quality(),
                min_flow_quality: if min_flow_quality.is_finite() {
                    min_flow_quality
                } else {
                    0.0
                },
            }
        })
        .collect()
}

/// Renders the mode comparison as a markdown table.
pub fn render_modes(rows: &[ModeRow]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.mode.to_string(),
                format!("{}/{}", r.admitted, FLOWS_PER_TRIAL),
                crate::report::pct(r.aggregate_quality),
                crate::report::pct(r.min_flow_quality),
            ]
        })
        .collect();
    crate::report::markdown_table(
        &["objective", "admitted", "aggregate Q", "worst flow Q"],
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> RunConfig {
        let mut cfg = RunConfig::default();
        cfg.messages = 800;
        cfg
    }

    #[test]
    fn traces_are_pure_functions_of_their_seed() {
        let a = offered_trace(0.8, 42);
        let b = offered_trace(0.8, 42);
        assert_eq!(a.events().len(), b.events().len());
        let c = offered_trace(0.8, 43);
        // Different seed ⇒ different rates (overwhelmingly likely).
        let rate = |t: &FleetTrace, i: usize| match &t.events()[i].event {
            dmc_fleet::FleetEvent::Arrive(r) => r.data_rate(),
            _ => panic!("arrival trace"),
        };
        assert_eq!(rate(&a, 0), rate(&b, 0));
        assert_ne!(rate(&a, 0), rate(&c, 0));
    }

    #[test]
    fn aggregates_are_bit_identical_across_thread_counts() {
        let cfg = quick_cfg();
        let run = |threads| {
            load_sweep_mc(
                &[0.6],
                &cfg,
                &MonteCarloConfig {
                    trials: 3,
                    threads,
                    base_seed: 7,
                },
            )
        };
        let (seq, par) = (run(1), run(4));
        assert_eq!(seq[0].admission_rate, par[0].admission_rate); // bitwise
        assert_eq!(seq[0].predicted_quality, par[0].predicted_quality);
        assert_eq!(seq[0].measured_quality, par[0].measured_quality);
        assert_eq!(seq[0].utilization, par[0].utilization);
    }

    #[test]
    fn admission_tightens_and_utilization_grows_with_load() {
        let cfg = quick_cfg();
        let mc = MonteCarloConfig {
            trials: 2,
            threads: 0,
            base_seed: 11,
        };
        let pts = load_sweep_mc(&[0.25, 2.0], &cfg, &mc);
        assert!(
            pts[0].admission_rate.mean() > pts[1].admission_rate.mean(),
            "admission must tighten under heavy floored demand: {} vs {}",
            pts[0].admission_rate.mean(),
            pts[1].admission_rate.mean()
        );
        assert!(pts[1].utilization.mean() > pts[0].utilization.mean());
        // At 25 % load everything fits and floors are easy.
        assert!(pts[0].admission_rate.mean() > 0.99);
        assert!(pts[0].predicted_quality.mean() > 0.9);
        // Simulation tracks the joint LP's prediction (loose bar: these
        // are short per-flow verification runs, and overload points pay
        // queueing/discretization noise on tiny allocated slices).
        for p in &pts {
            assert!(
                (p.measured_quality.mean() - p.predicted_quality.mean()).abs() < 0.10,
                "ρ={}: sim {} vs predicted {}",
                p.offered_load,
                p.measured_quality.mean(),
                p.predicted_quality.mean()
            );
        }
    }

    #[test]
    fn objective_modes_share_admission_but_differ_in_shape() {
        let rows = objective_comparison(1.2, 5);
        assert_eq!(rows.len(), 3);
        // Floor-based admission: all modes admit the same count for a
        // sequential trace.
        assert!(rows.iter().all(|r| r.admitted == rows[0].admitted));
        for r in &rows {
            assert!(r.aggregate_quality > 0.0 && r.aggregate_quality <= 1.0 + 1e-9);
            assert!(r.min_flow_quality <= r.aggregate_quality + 1e-9);
        }
        let table = render_modes(&rows);
        assert!(table.contains("MaxAdmitted"), "{table}");
    }
}
