//! Figure 4: wall-clock time to build + solve the LP as the number of
//! paths grows, for 2 and 3 transmissions per data unit. (Criterion
//! benches in `dmc-bench` measure the same thing rigorously; this module
//! produces the paper-style table quickly.)

use dmc_core::{DeterministicModel, NetworkSpec, PathSpec, SolverOptions};
use std::time::Instant;

/// One measured point.
#[derive(Debug, Clone, Copy)]
pub struct TimingPoint {
    /// Number of real paths (blackhole excluded, as in the paper's
    /// x-axis).
    pub paths: usize,
    /// Transmissions per data unit (2 or 3 in the paper).
    pub transmissions: usize,
    /// Mean solve time in seconds (build + solve, averaged over runs).
    pub seconds: f64,
    /// LP variable count ((n+1)^m).
    pub variables: usize,
}

/// A synthetic n-path scenario in the spirit of Table III: staggered
/// bandwidths, delays and losses so the LP is non-trivial at every size.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn synthetic_network(n: usize) -> NetworkSpec {
    assert!(n > 0);
    let paths: Vec<PathSpec> = (0..n)
        .map(|i| {
            let bw = 20e6 + 15e6 * (i as f64);
            let delay = 0.100 + 0.070 * (i as f64);
            let loss = 0.02 * (i as f64 % 5.0);
            PathSpec::new(bw, delay, loss).expect("valid synthetic path")
        })
        .collect();
    let total: f64 = paths.iter().map(PathSpec::bandwidth).sum();
    NetworkSpec::builder()
        .paths(paths)
        .data_rate(total * 0.9) // near capacity: most constraints active
        .lifetime(0.450)
        .build()
        .expect("valid synthetic scenario")
}

/// Measures mean build+solve time for `n` paths and `m` transmissions
/// over `runs` repetitions (the paper averages 100 runs).
pub fn measure(n: usize, m: usize, runs: usize) -> TimingPoint {
    measure_obs(n, m, runs, &dmc_obs::Obs::disabled())
}

/// [`measure`] with the LP solves recorded into `obs`. An *enabled*
/// registry adds a few atomic increments per solve to the timed region,
/// so compare timings only against runs with the same telemetry setting.
pub fn measure_obs(n: usize, m: usize, runs: usize, obs: &dmc_obs::Obs) -> TimingPoint {
    let net = synthetic_network(n);
    let opts = SolverOptions {
        obs: obs.clone(),
        ..SolverOptions::default()
    };
    // Warm-up (page in, branch predictors).
    let model = DeterministicModel::new(&net, m, true);
    let _ = model.solve_quality(&opts);
    // dmc-lint: allow(det-wallclock) figure 4 measures wall-clock solve time by design; timings are reported, never fed back into planning
    let start = Instant::now();
    for _ in 0..runs {
        let model = DeterministicModel::new(&net, m, true);
        let _ = model.solve_quality(&opts);
    }
    let seconds = start.elapsed().as_secs_f64() / runs as f64;
    TimingPoint {
        paths: n,
        transmissions: m,
        seconds,
        variables: (n + 1).pow(m as u32),
    }
}

/// The paper's sweep: 2–10 paths × {2, 3} transmissions.
pub fn sweep(runs: usize) -> Vec<TimingPoint> {
    sweep_obs(runs, &dmc_obs::Obs::disabled())
}

/// [`sweep`] with the LP solves recorded into `obs` (see [`measure_obs`]
/// for the timing caveat).
pub fn sweep_obs(runs: usize, obs: &dmc_obs::Obs) -> Vec<TimingPoint> {
    let mut out = Vec::new();
    for &m in &[2usize, 3] {
        for n in 2..=10 {
            out.push(measure_obs(n, m, runs, obs));
        }
    }
    out
}

/// Renders the sweep as a markdown table (ms, like the paper's y-axis).
pub fn render(points: &[TimingPoint]) -> String {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.paths.to_string(),
                p.transmissions.to_string(),
                p.variables.to_string(),
                format!("{:.3}", p.seconds * 1e3),
            ]
        })
        .collect();
    crate::report::markdown_table(&["paths", "transmissions", "LP vars", "time (ms)"], &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_networks_solve_at_every_size() {
        for n in 2..=10 {
            let net = synthetic_network(n);
            let model = DeterministicModel::new(&net, 2, true);
            let s = model.solve_quality(&SolverOptions::default()).unwrap();
            assert!(s.quality() > 0.0 && s.quality() <= 1.0 + 1e-9, "n={n}");
        }
    }

    #[test]
    fn timing_grows_with_problem_size() {
        // Sanity, not a benchmark: 3 transmissions at n=8 must cost more
        // than 2 transmissions at n=2, and both must complete quickly.
        let small = measure(2, 2, 3);
        let large = measure(8, 3, 3);
        assert!(large.seconds > small.seconds);
        assert_eq!(small.variables, 9);
        assert_eq!(large.variables, 729);
        assert!(small.seconds < 0.5, "2-path solve took {}s", small.seconds);
    }
}
