//! Regenerates Experiment 2: random delays, Eq.-34 timeouts, simulation.

use dmc_experiments::experiment2;
use dmc_experiments::runner::RunConfig;

fn main() {
    let mut cfg = RunConfig::default();
    cfg.messages = dmc_experiments::messages_from_env(100_000);
    eprintln!(
        "simulating {} messages (set MESSAGES to change)…",
        cfg.messages
    );
    match experiment2::run(&cfg) {
        Ok(result) => print!("{}", experiment2::render(&result)),
        Err(e) => {
            eprintln!("experiment failed: {e}");
            std::process::exit(1);
        }
    }
}
