//! Regenerates Experiment 2: random delays, Eq.-34 timeouts, simulation.
//!
//! Runs through the parallel Monte-Carlo engine; see `--help` for the
//! shared `--messages/--trials/--threads/--seed` flags.

#![forbid(unsafe_code)]

use dmc_experiments::experiment2;
use dmc_experiments::runner::RunConfig;

fn main() {
    let args = dmc_experiments::parse_args(100_000);
    let mc = args.montecarlo();
    let obs = args.obs();
    let mut cfg = RunConfig::default();
    cfg.messages = args.messages;
    cfg.obs = obs.clone();
    eprintln!(
        "simulating {} messages × {} trial(s) on {} thread(s), seed {:#x}…",
        cfg.messages,
        mc.trials,
        mc.resolved_threads(),
        mc.base_seed
    );
    match experiment2::run_mc(&cfg, &mc) {
        Ok(result) => print!("{}", experiment2::render(&result)),
        Err(e) => {
            eprintln!("experiment failed: {e}");
            std::process::exit(1);
        }
    }
    dmc_experiments::finish_metrics(&args, &obs);
}
