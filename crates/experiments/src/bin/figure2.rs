//! Regenerates Figure 2: quality vs. data rate and vs. lifetime.

use dmc_experiments::figure2;
use dmc_experiments::runner::RunConfig;

fn main() {
    let mut cfg = RunConfig::default();
    cfg.messages = dmc_experiments::messages_from_env(100_000);
    eprintln!(
        "simulating {} messages per point (set MESSAGES to change)…",
        cfg.messages
    );

    println!("# Figure 2 (top): quality vs. data rate, δ = 800 ms\n");
    let pts = figure2::rate_sweep(&figure2::paper_lambdas(), &cfg);
    println!("{}", figure2::render(&pts, "λ (Mbps)", 1e-6));

    println!("\n# Figure 2 (bottom): quality vs. lifetime, λ = 90 Mbps\n");
    let pts = figure2::lifetime_sweep(&figure2::paper_deltas(), &cfg);
    println!("{}", figure2::render(&pts, "δ (ms)", 1e3));
}
