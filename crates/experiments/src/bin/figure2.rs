//! Regenerates Figure 2: quality vs. data rate and vs. lifetime.
//!
//! Runs through the parallel Monte-Carlo engine; see `--help` for the
//! shared `--messages/--trials/--threads/--seed` flags.

#![forbid(unsafe_code)]

use dmc_experiments::figure2;
use dmc_experiments::runner::RunConfig;

fn main() {
    let args = dmc_experiments::parse_args(100_000);
    let mc = args.montecarlo();
    let obs = args.obs();
    let mut cfg = RunConfig::default();
    cfg.messages = args.messages;
    cfg.obs = obs.clone();
    eprintln!(
        "simulating {} messages × {} trial(s) per point on {} thread(s), seed {:#x}…",
        cfg.messages,
        mc.trials,
        mc.resolved_threads(),
        mc.base_seed
    );

    println!("# Figure 2 (top): quality vs. data rate, δ = 800 ms\n");
    let pts = figure2::rate_sweep_mc(&figure2::paper_lambdas(), &cfg, &mc);
    println!("{}", figure2::render(&pts, "λ (Mbps)", 1e-6));

    println!("\n# Figure 2 (bottom): quality vs. lifetime, λ = 90 Mbps\n");
    let pts = figure2::lifetime_sweep_mc(&figure2::paper_deltas(), &cfg, &mc);
    println!("{}", figure2::render(&pts, "δ (ms)", 1e3));

    dmc_experiments::finish_metrics(&args, &obs);
}
