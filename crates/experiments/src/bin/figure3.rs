//! Regenerates Figure 3: sensitivity to estimation errors.
//!
//! Runs through the parallel Monte-Carlo engine; see `--help` for the
//! shared `--messages/--trials/--threads/--seed` flags.

#![forbid(unsafe_code)]

use dmc_experiments::figure3::{self, Metric};
use dmc_experiments::runner::RunConfig;

fn main() {
    let args = dmc_experiments::parse_args(100_000);
    let mc = args.montecarlo();
    let obs = args.obs();
    let mut cfg = RunConfig::default();
    cfg.messages = args.messages;
    cfg.obs = obs.clone();
    eprintln!(
        "simulating {} messages × {} trial(s) per point on {} thread(s), seed {:#x}…",
        cfg.messages,
        mc.trials,
        mc.resolved_threads(),
        mc.base_seed
    );

    let rel = figure3::relative_errors();
    let loss = figure3::loss_errors();

    println!("# Figure 3 — quality vs. estimation error (λ = 90 Mbps, δ = 800 ms)\n");
    for (metric, errors, title) in [
        (Metric::Bandwidth, &rel, "top: bandwidth error"),
        (Metric::Delay, &rel, "middle: delay error"),
        (Metric::Loss, &loss, "bottom: loss error (absolute)"),
    ] {
        println!("## {title}\n");
        let c1 = figure3::curve_mc(metric, 0, errors, &cfg, &mc);
        let c2 = figure3::curve_mc(metric, 1, errors, &cfg, &mc);
        println!("{}", figure3::render(metric, &c1, &c2));
        println!();
    }

    dmc_experiments::finish_metrics(&args, &obs);
}
