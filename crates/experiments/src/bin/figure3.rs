//! Regenerates Figure 3: sensitivity to estimation errors.

use dmc_experiments::figure3::{self, Metric};
use dmc_experiments::runner::RunConfig;

fn main() {
    let mut cfg = RunConfig::default();
    cfg.messages = dmc_experiments::messages_from_env(100_000);
    eprintln!(
        "simulating {} messages per point (set MESSAGES to change)…",
        cfg.messages
    );

    let rel = figure3::relative_errors();
    let loss = figure3::loss_errors();

    println!("# Figure 3 — quality vs. estimation error (λ = 90 Mbps, δ = 800 ms)\n");
    for (metric, errors, title) in [
        (Metric::Bandwidth, &rel, "top: bandwidth error"),
        (Metric::Delay, &rel, "middle: delay error"),
        (Metric::Loss, &loss, "bottom: loss error (absolute)"),
    ] {
        println!("## {title}\n");
        let c1 = figure3::curve(metric, 0, errors, &cfg);
        let c2 = figure3::curve(metric, 1, errors, &cfg);
        println!("{}", figure3::render(metric, &c1, &c2));
        println!();
    }
}
