//! Regenerates Table IV of the paper.
//!
//! Exact LP only — no simulation, so of the shared flag vocabulary only
//! `--help` is meaningful; the rest are accepted and ignored.

#![forbid(unsafe_code)]

use dmc_experiments::table4;

fn main() {
    let args = dmc_experiments::parse_args(100_000);
    let obs = args.obs();
    println!("# Table IV — optimal solutions for the Table III network\n");
    println!("## Top: δ = 800 ms, data rate λ swept\n");
    let lambdas: Vec<f64> = table4::PAPER_TOP.iter().map(|(l, _)| *l).collect();
    let rows = table4::top_obs(&lambdas, &obs);
    println!("{}", table4::render(&rows, "λ (Mbps)", 1e-6));
    println!("paper qualities: 100, 100, 100, 100, 100, 84, 70, 60 (%)\n");

    println!("## Bottom: λ = 90 Mbps, lifetime δ swept\n");
    let deltas: Vec<f64> = table4::PAPER_BOTTOM.iter().map(|(d, _)| *d).collect();
    let rows = table4::bottom_obs(&deltas, &obs);
    println!("{}", table4::render(&rows, "δ (ms)", 1e3));
    println!("paper qualities: 22.2, 22.2, 84.4, 84.4, 93.3, 93.3, 93.3 (%)");
    println!("\nNote: the LP optimum is degenerate at several operating points;");
    println!("the solver may report a different optimal vertex than the paper's,");
    println!("with identical quality and per-path send rates.");
    dmc_experiments::finish_metrics(&args, &obs);
}
