//! Time-expanded scheduling driver: reservation-vs-reject sweep on the
//! slotted horizon (advance reservations, store-and-forward buffering).
//!
//! Both arms replay the same windowed offered trace; the **reserve**
//! arm keeps [`dmc_fleet::ScheduleDecision::Reserved`] flows for their
//! granted future windows, the **reject** arm departs them on the
//! spot. The `served Δ` column is what reservations buy. LP-only —
//! `--messages` is accepted for flag parity but unused; see `--help`
//! for the shared `--trials/--threads/--seed/--flows` flags.

#![forbid(unsafe_code)]

use dmc_experiments::schedule;

fn main() {
    let args = dmc_experiments::parse_args(1);
    let mc = args.montecarlo();
    let obs = args.obs();
    eprintln!(
        "schedule: {} windowed flows/trial on a {}-slot × {:.1} s horizon over {:.0} Mbps \
         shared; {} trial(s) per point on {} thread(s), seed {:#x}…",
        args.flows,
        schedule::HORIZON_SLOTS,
        schedule::SLOT_WIDTH_S,
        dmc_experiments::fleet::total_capacity() / 1e6,
        mc.trials,
        mc.resolved_threads(),
        mc.base_seed
    );

    println!("# Time-expanded scheduling: reservations vs. reject-only admission\n");
    let pts = schedule::load_sweep_mc(
        &dmc_experiments::fleet::paper_loads(),
        &mc,
        args.flows,
        &obs,
    );
    println!("{}", schedule::render(&pts));

    dmc_experiments::finish_metrics(&args, &obs);
}
