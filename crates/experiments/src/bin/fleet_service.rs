//! Fleet-service driver: a seeded tenant script driven through the wire
//! front end of the sharded admission service (`dmc_fleet::service`),
//! plus a worker-count determinism check.
//!
//! Shared flags: `--flows` (offers in the script), `--shards` (capacity
//! regions, 2 paths each, ≤ 64), `--threads` (tick workers; 0 resolves
//! `DMC_THREADS`), `--seed`.
//!
//! Exits nonzero if the 1-worker and 4-worker replays of the same script
//! disagree on the decision hash.

#![forbid(unsafe_code)]

use dmc_experiments::service;

fn main() {
    let args = dmc_experiments::parse_args(1_000);
    let flows = args.flows.max(16);
    eprintln!(
        "fleet_service: {} offer(s) across {} shard(s), seed {:#x}…",
        flows, args.shards, args.seed
    );

    println!("# Fleet service: sharded admission over wire frames\n");
    let obs = args.obs();
    let (outcome, snapshot) =
        service::run_service_script_obs(args.seed, flows, args.shards, args.threads, &obs);
    println!("{}", service::render(&outcome));

    println!("# Worker-count determinism (1 vs 4 workers)\n");
    match service::determinism_check(args.seed, flows.min(128), args.shards) {
        Ok(hash) => println!("- ok: both replays hash to {hash:#018x}"),
        Err(why) => {
            eprintln!("determinism violation: {why}");
            std::process::exit(1);
        }
    }

    if obs.is_enabled() {
        dmc_experiments::finish_metrics_snapshot(&args, &snapshot);
    }
}
