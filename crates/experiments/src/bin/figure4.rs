//! Regenerates Figure 4: LP solve times vs. problem size.
//!
//! Accepts the shared flag vocabulary (`--runs N` / env `RUNS` selects
//! the timing repetitions; see `--help`).

#![forbid(unsafe_code)]

use dmc_experiments::figure4;

fn main() {
    let args = dmc_experiments::parse_args(100_000);
    let runs = args.runs as usize;
    eprintln!("averaging over {runs} runs per point (set --runs/RUNS to change)…");
    println!("# Figure 4 — model build + solve time (paper: log-scale ms, 2.8 GHz i5)\n");
    let pts = figure4::sweep(runs);
    println!("{}", figure4::render(&pts));
    println!(
        "\n§VIII-B reference point: 2 paths (+blackhole), 2 transmissions ≈ 458 µs with CGAL."
    );
}
