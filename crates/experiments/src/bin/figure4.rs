//! Regenerates Figure 4: LP solve times vs. problem size.

use dmc_experiments::figure4;

fn main() {
    let runs = std::env::var("RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100usize);
    eprintln!("averaging over {runs} runs per point (set RUNS to change)…");
    println!("# Figure 4 — model build + solve time (paper: log-scale ms, 2.8 GHz i5)\n");
    let pts = figure4::sweep(runs);
    println!("{}", figure4::render(&pts));
    println!(
        "\n§VIII-B reference point: 2 paths (+blackhole), 2 transmissions ≈ 458 µs with CGAL."
    );
}
