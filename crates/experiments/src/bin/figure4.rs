//! Regenerates Figure 4: LP solve times vs. problem size.
//!
//! Accepts the shared flag vocabulary (`--runs N` / env `RUNS` selects
//! the timing repetitions; see `--help`).

#![forbid(unsafe_code)]

use dmc_experiments::figure4;
use dmc_obs::WallProfiler;

fn main() {
    let args = dmc_experiments::parse_args(100_000);
    let runs = args.runs as usize;
    let obs = args.obs();
    eprintln!("averaging over {runs} runs per point (set --runs/RUNS to change)…");
    println!("# Figure 4 — model build + solve time (paper: log-scale ms, 2.8 GHz i5)\n");
    let mut wall = WallProfiler::new();
    let pts = figure4::sweep_obs(runs, &obs);
    wall.mark("sweep");
    println!("{}", figure4::render(&pts));
    println!(
        "\n§VIII-B reference point: 2 paths (+blackhole), 2 transmissions ≈ 458 µs with CGAL."
    );
    dmc_experiments::finish_metrics(&args, &obs);
    wall.mark("report");
    eprint!("{}", wall.render());
}
