//! Chaos driver: seeded fault scripts replayed against invariant
//! checkers across the fleet and protocol layers.
//!
//! Per trial the fleet leg replays a seeded script — mixed-priority
//! arrivals, a correlated two-link outage, recovery, and a full shed
//! horizon of capacity events — through a *certifying* planner (every
//! joint-LP solution re-verified against its constraints), twice, and
//! demands: allocations within surviving capacity, every shed flow
//! revived or definitively rejected within the backoff horizon, and
//! bitwise-identical trace hashes. The proto leg runs the Table III
//! scenario under payload corruption, duplication and bounded
//! reordering. Exits nonzero on any invariant violation.
//!
//! With `--metrics` the replays also record dmc-obs telemetry, the
//! counter deltas are cross-checked against the planner's own state
//! (an instrumentation drift is an invariant violation like any other),
//! and the whole workload is re-run at 1 and 4 worker threads to prove
//! the merged snapshot's FNV hash is bitwise-identical at any
//! concurrency — the telemetry layer's own determinism contract.
//!
//! Shared flags: `--messages/--trials/--threads/--seed/--flows`,
//! plus `--metrics PATH`.

#![forbid(unsafe_code)]

use dmc_experiments::chaos;
use dmc_experiments::montecarlo::MonteCarloConfig;

fn main() {
    let args = dmc_experiments::parse_args(3_000);
    let mc = args.montecarlo();
    let obs = args.obs();
    eprintln!(
        "chaos: {} flows/trial on {:.0} Mbps across 3 paths; {} trial(s) on {} thread(s), \
         seed {:#x}…",
        args.flows,
        chaos::chaos_capacity() / 1e6,
        mc.trials,
        mc.resolved_threads(),
        mc.base_seed
    );

    println!("# Fleet chaos: correlated outage, shed/backoff/revive, certified solves\n");
    let outcomes = chaos::fleet_chaos_mc_obs(&mc, args.flows, &obs);
    println!("{}", chaos::render(&outcomes));

    println!("\n# Proto chaos: corruption + duplication + bounded reordering (Table III)\n");
    let out =
        chaos::proto_chaos_run_obs(mc.base_seed, args.messages, &obs).expect("proto chaos run");
    let inj = out.faults_injected;
    println!(
        "- injected: {} corrupted, {} duplicated, {} reordered frame(s)",
        inj.corrupted, inj.duplicated, inj.reordered
    );
    println!(
        "- receiver: {} checksum rejection(s), {} duplicate(s) discarded",
        out.receiver.malformed, out.receiver.duplicates
    );
    println!(
        "- delivered in time: {:.2} % (LP predicted {:.2} % on clean links)",
        out.quality * 100.0,
        out.predicted_quality * 100.0
    );

    let violations: Vec<&String> = outcomes.iter().flat_map(|o| &o.violations).collect();
    if !violations.is_empty() {
        eprintln!("\n{} invariant violation(s):", violations.len());
        for v in &violations {
            eprintln!("  - {v}");
        }
        std::process::exit(1);
    }
    eprintln!("\nall invariants hold across {} trial(s)", outcomes.len());

    if obs.is_enabled() {
        // The telemetry layer's own determinism contract: replay the
        // whole workload at 1 and at 4 worker threads into fresh
        // registries — all three merged snapshots must hash identically.
        let hash = obs.snapshot().fnv_hash();
        for workers in [1usize, 4] {
            let again = dmc_obs::Obs::enabled();
            let mc2 = MonteCarloConfig {
                trials: mc.trials,
                threads: workers,
                base_seed: mc.base_seed,
            };
            let _ = chaos::fleet_chaos_mc_obs(&mc2, args.flows, &again);
            let _ = chaos::proto_chaos_run_obs(mc.base_seed, args.messages, &again)
                .expect("proto chaos replay");
            let got = again.snapshot().fnv_hash();
            if got != hash {
                eprintln!(
                    "telemetry determinism violation: snapshot hash {got:#018x} at \
                     {workers} worker(s) != {hash:#018x} from the main run"
                );
                std::process::exit(1);
            }
        }
        eprintln!("telemetry snapshot hash {hash:#018x} reproduces at 1 and 4 worker(s)");
        dmc_experiments::finish_metrics(&args, &obs);
    }
}
