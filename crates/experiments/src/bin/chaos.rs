//! Chaos driver: seeded fault scripts replayed against invariant
//! checkers across the fleet and protocol layers.
//!
//! Per trial the fleet leg replays a seeded script — mixed-priority
//! arrivals, a correlated two-link outage, recovery, and a full shed
//! horizon of capacity events — through a *certifying* planner (every
//! joint-LP solution re-verified against its constraints), twice, and
//! demands: allocations within surviving capacity, every shed flow
//! revived or definitively rejected within the backoff horizon, and
//! bitwise-identical trace hashes. The proto leg runs the Table III
//! scenario under payload corruption, duplication and bounded
//! reordering. Exits nonzero on any invariant violation.
//!
//! Shared flags: `--messages/--trials/--threads/--seed/--flows`.

#![forbid(unsafe_code)]

use dmc_experiments::chaos;

fn main() {
    let args = dmc_experiments::parse_args(3_000);
    let mc = args.montecarlo();
    eprintln!(
        "chaos: {} flows/trial on {:.0} Mbps across 3 paths; {} trial(s) on {} thread(s), \
         seed {:#x}…",
        args.flows,
        chaos::chaos_capacity() / 1e6,
        mc.trials,
        mc.resolved_threads(),
        mc.base_seed
    );

    println!("# Fleet chaos: correlated outage, shed/backoff/revive, certified solves\n");
    let outcomes = chaos::fleet_chaos_mc(&mc, args.flows);
    println!("{}", chaos::render(&outcomes));

    println!("\n# Proto chaos: corruption + duplication + bounded reordering (Table III)\n");
    let out = chaos::proto_chaos_run(mc.base_seed, args.messages).expect("proto chaos run");
    let inj = out.faults_injected;
    println!(
        "- injected: {} corrupted, {} duplicated, {} reordered frame(s)",
        inj.corrupted, inj.duplicated, inj.reordered
    );
    println!(
        "- receiver: {} checksum rejection(s), {} duplicate(s) discarded",
        out.receiver.malformed, out.receiver.duplicates
    );
    println!(
        "- delivered in time: {:.2} % (LP predicted {:.2} % on clean links)",
        out.quality * 100.0,
        out.predicted_quality * 100.0
    );

    let violations: Vec<&String> = outcomes.iter().flat_map(|o| &o.violations).collect();
    if !violations.is_empty() {
        eprintln!("\n{} invariant violation(s):", violations.len());
        for v in &violations {
            eprintln!("  - {v}");
        }
        std::process::exit(1);
    }
    eprintln!("\nall invariants hold across {} trial(s)", outcomes.len());
}
