//! Fleet / multi-flow driver: admission rate, per-flow delivery
//! probability and aggregate utilization vs. offered load, plus the
//! objective-mode comparison.
//!
//! Runs through the parallel Monte-Carlo engine; see `--help` for the
//! shared `--messages/--trials/--threads/--seed/--flows` flags
//! (`--messages` is the per-flow verification-simulation length;
//! `--flows` scales the per-trial population — the incremental sparse
//! joint solver keeps even hundreds of concurrent flows tractable).

#![forbid(unsafe_code)]

use dmc_experiments::fleet;
use dmc_experiments::runner::RunConfig;

fn main() {
    let args = dmc_experiments::parse_args(5_000);
    let mc = args.montecarlo();
    let obs = args.obs();
    let mut cfg = RunConfig::default();
    cfg.messages = args.messages;
    cfg.seed = args.seed;
    cfg.obs = obs.clone();
    eprintln!(
        "fleet: {} flows/trial on {:.0} Mbps of shared capacity; {} message(s) × {} trial(s) \
         per point on {} thread(s), seed {:#x}…",
        args.flows,
        fleet::total_capacity() / 1e6,
        cfg.messages,
        mc.trials,
        mc.resolved_threads(),
        mc.base_seed
    );

    println!("# Fleet: admission & joint shared-capacity allocation vs. offered load\n");
    let pts = fleet::load_sweep_mc_n(&fleet::paper_loads(), &cfg, &mc, args.flows);
    println!("{}", fleet::render(&pts));

    println!("\n# Objective modes at ρ = 1.2 (LP only)\n");
    let rows = fleet::objective_comparison(1.2, mc.base_seed);
    println!("{}", fleet::render_modes(&rows));

    dmc_experiments::finish_metrics(&args, &obs);
}
