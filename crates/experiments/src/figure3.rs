//! Figure 3: sensitivity of the achieved quality to estimation errors.
//!
//! The sender solves the LP for a *perturbed* copy of the network (one
//! metric of one path off by a given error), then the resulting strategy
//! runs on the true network. Three panels: bandwidth error (relative),
//! delay error (relative), loss error (absolute), each with one curve per
//! perturbed path.

use crate::montecarlo::{run_plan_trials, MonteCarloConfig};
use crate::runner::{RunConfig, TrueNetwork};
use crate::scenarios;
use dmc_core::{ModelConfig, NetworkSpec, Objective, Planner, Scenario};
use dmc_stats::TrialStats;

/// Which metric Figure 3 perturbs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Relative error on `b_i` (top panel).
    Bandwidth,
    /// Relative error on `d_i` (middle panel).
    Delay,
    /// Absolute error on `τ_i` (bottom panel).
    Loss,
}

/// One measured point.
#[derive(Debug, Clone)]
pub struct SensitivityPoint {
    /// The injected error (relative for bandwidth/delay, absolute for
    /// loss).
    pub error: f64,
    /// Which path (0-based) was mis-estimated.
    pub path: usize,
    /// Measured quality on the true network (mean across trials).
    pub quality: f64,
    /// Per-trial quality statistics (CI support).
    pub trials: TrialStats,
}

/// Applies an estimation error to one path of the model network.
pub fn perturb(net: &NetworkSpec, metric: Metric, path: usize, error: f64) -> NetworkSpec {
    let p = net.paths()[path];
    let perturbed = match metric {
        Metric::Bandwidth => p.scaled_bandwidth(1.0 + error),
        Metric::Delay => p.scaled_delay(1.0 + error),
        Metric::Loss => p.offset_loss(error),
    };
    net.with_path_replaced(path, perturbed)
}

/// Runs one sensitivity curve through the Monte-Carlo engine:
/// λ = 90 Mbps, δ = 800 ms (the paper's operating point), sweeping
/// `errors` on `metric` of `path`, `mc.trials` seeded simulations per
/// point.
pub fn curve_mc(
    metric: Metric,
    path: usize,
    errors: &[f64],
    cfg: &RunConfig,
    mc: &MonteCarloConfig,
) -> Vec<SensitivityPoint> {
    // One planner across the curve: every point solves the same LP shape
    // with slightly perturbed coefficients, so each warm-starts from the
    // previous point's optimal basis.
    let mut planner = Planner::new();
    let truth = TrueNetwork::deterministic(&scenarios::table3_true(90e6, 0.800));
    errors
        .iter()
        .map(|&error| {
            // The error contaminates the sender's *measurement*; the LP's
            // conservative margin is applied on top, as in Experiment 1.
            let believed = perturb(&scenarios::table3_true(90e6, 0.800), metric, path, error);
            let scenario = Scenario::from_network(&believed)
                .with_transmissions(ModelConfig::default().transmissions);
            let trials = planner
                .plan_with_margin(&scenario, scenarios::QUEUE_MARGIN_S, Objective::MaxQuality)
                .map_err(|e| e.to_string())
                .and_then(|plan| run_plan_trials(&plan, &truth, cfg, mc))
                .map(|r| r.quality)
                .unwrap_or_default();
            SensitivityPoint {
                error,
                path,
                quality: trials.mean(),
                trials,
            }
        })
        .collect()
}

/// [`curve_mc`] with one trial seeded from `cfg.seed` (the paper's
/// single-run protocol).
pub fn curve(
    metric: Metric,
    path: usize,
    errors: &[f64],
    cfg: &RunConfig,
) -> Vec<SensitivityPoint> {
    curve_mc(
        metric,
        path,
        errors,
        cfg,
        &MonteCarloConfig::single(cfg.seed),
    )
}

/// The paper's x-axis for the relative-error panels (−50 % … +50 %).
pub fn relative_errors() -> Vec<f64> {
    (-5..=5).map(|i| i as f64 * 0.1).collect()
}

/// The paper's x-axis for the loss panel (−0.2 … +1.0).
pub fn loss_errors() -> Vec<f64> {
    (-2..=10).map(|i| i as f64 * 0.1).collect()
}

/// Renders both curves of one panel side by side; with multiple trials
/// per point, ±95 % CI columns (percentage points) follow each curve.
pub fn render(metric: Metric, path1: &[SensitivityPoint], path2: &[SensitivityPoint]) -> String {
    let with_ci = path1.iter().chain(path2).any(|p| p.trials.count() > 1);
    let ci = |p: &SensitivityPoint| format!("±{:.2}", p.trials.half_width(0.95) * 100.0);
    let rows: Vec<Vec<String>> = path1
        .iter()
        .zip(path2)
        .map(|(a, b)| {
            let mut row = vec![format!("{:+.1}", a.error), crate::report::pct(a.quality)];
            if with_ci {
                row.push(ci(a));
            }
            row.push(crate::report::pct(b.quality));
            if with_ci {
                row.push(ci(b));
            }
            row
        })
        .collect();
    let name = match metric {
        Metric::Bandwidth => "bandwidth error",
        Metric::Delay => "delay error",
        Metric::Loss => "loss error (abs)",
    };
    let header: Vec<&str> = if with_ci {
        vec![
            name,
            "perturb path 1",
            "±95% CI",
            "perturb path 2",
            "±95% CI",
        ]
    } else {
        vec![name, "perturb path 1", "perturb path 2"]
    };
    crate::report::markdown_table(&header, &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> RunConfig {
        let mut cfg = RunConfig::default();
        cfg.messages = 4_000;
        cfg
    }

    #[test]
    fn perturbation_applies_to_selected_path_only() {
        let net = scenarios::table3_true(90e6, 0.8);
        let p = perturb(&net, Metric::Bandwidth, 0, -0.5);
        assert_eq!(p.paths()[0].bandwidth(), 40e6);
        assert_eq!(p.paths()[1], net.paths()[1]);
        let p = perturb(&net, Metric::Loss, 1, 0.3);
        assert!((p.paths()[1].loss() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_underestimate_hurts_overestimate_does_not() {
        // The paper's Fig. 3 (top): underestimating capacity forces
        // drops; overestimating congests but quality stays roughly flat
        // (overflow loss replaces the blackhole). The flat side is a
        // steady-state property, so this point runs longer.
        let mut cfg = quick_cfg();
        cfg.messages = 10_000;
        let pts = curve(Metric::Bandwidth, 0, &[-0.4, 0.0, 0.4], &cfg);
        let (under, exact, over) = (pts[0].quality, pts[1].quality, pts[2].quality);
        assert!(under < exact - 0.05, "under {under} vs exact {exact}");
        assert!((over - exact).abs() < 0.06, "over {over} vs exact {exact}");
    }

    #[test]
    fn delay_has_plateau_at_zero_error() {
        // Fig. 3 (middle): small delay errors (≤10%) do not hurt.
        let cfg = quick_cfg();
        let pts = curve(Metric::Delay, 0, &[-0.1, 0.0, 0.1], &cfg);
        let exact = pts[1].quality;
        for p in &pts {
            assert!(
                (p.quality - exact).abs() < 0.03,
                "error {}: {} vs {exact}",
                p.error,
                p.quality
            );
        }
    }
}
