//! High-level entry points: one call from scenario to optimal strategy.

use crate::builder::DeterministicModel;
use crate::network::NetworkSpec;
use crate::path::SpecError;
use crate::strategy::Strategy;
use dmc_lp::{SolveError, SolverOptions};
use std::fmt;

/// Configuration shared by the solving entry points.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelConfig {
    /// Number of transmissions `m` per data unit (default 2: one
    /// transmission + one retransmission, the paper's base model).
    pub transmissions: usize,
    /// Include the blackhole path (default true; keeps the LP feasible
    /// under overload, Eq. 19).
    pub blackhole: bool,
    /// LP solver options.
    pub solver: SolverOptions,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            transmissions: 2,
            blackhole: true,
            solver: SolverOptions::default(),
        }
    }
}

impl ModelConfig {
    /// Shorthand for a config with `m` transmissions and defaults
    /// otherwise.
    pub fn with_transmissions(m: usize) -> Self {
        ModelConfig {
            transmissions: m,
            ..Default::default()
        }
    }
}

/// Errors from the high-level API.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ModelError {
    /// The scenario itself is invalid.
    Spec(SpecError),
    /// The LP could not be solved (infeasible without a blackhole,
    /// unbounded, or numerically hostile).
    Solve(SolveError),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::Spec(e) => write!(f, "{e}"),
            ModelError::Solve(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ModelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ModelError::Spec(e) => Some(e),
            ModelError::Solve(e) => Some(e),
        }
    }
}

impl From<SpecError> for ModelError {
    fn from(e: SpecError) -> Self {
        ModelError::Spec(e)
    }
}

impl From<SolveError> for ModelError {
    fn from(e: SolveError) -> Self {
        ModelError::Solve(e)
    }
}

/// Solves the paper's primary problem (Eq. 10): the quality-maximal
/// packet-to-path-combination assignment for a deterministic scenario.
///
/// ```
/// use dmc_core::{optimal_strategy, ModelConfig, NetworkSpec, PathSpec};
///
/// # fn main() -> Result<(), dmc_core::ModelError> {
/// let net = NetworkSpec::builder()
///     .path(PathSpec::new(80e6, 0.450, 0.2)?)
///     .path(PathSpec::new(20e6, 0.150, 0.0)?)
///     .data_rate(90e6)
///     .lifetime(0.800)
///     .build()?;
/// let strategy = optimal_strategy(&net, &ModelConfig::default())?;
/// assert!((strategy.quality() - 42.0 / 45.0).abs() < 1e-9); // 93.3 %
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Returns [`ModelError::Solve`] on LP failure; with the default
/// blackhole-enabled config the LP is always feasible.
pub fn optimal_strategy(net: &NetworkSpec, config: &ModelConfig) -> Result<Strategy, ModelError> {
    let model = DeterministicModel::new(net, config.transmissions, config.blackhole);
    Ok(model.solve_quality(&config.solver)?)
}

/// Solves the cost-minimization variant (§VI-A, Eq. 20–23): the cheapest
/// assignment achieving at least `min_quality`.
///
/// # Errors
///
/// [`ModelError::Solve`] with [`SolveError::Infeasible`] when
/// `min_quality` is simply not achievable on this network.
pub fn min_cost_strategy(
    net: &NetworkSpec,
    min_quality: f64,
    config: &ModelConfig,
) -> Result<Strategy, ModelError> {
    let model = DeterministicModel::new(net, config.transmissions, config.blackhole);
    Ok(model.solve_min_cost(min_quality, &config.solver)?)
}

/// Best achievable quality using only path `index` (0-based) — the
/// "single-path theory" baselines of Figure 2.
///
/// # Errors
///
/// Forwards solver failures.
///
/// # Panics
///
/// Panics if `index` is out of range.
pub fn single_path_quality(
    net: &NetworkSpec,
    index: usize,
    config: &ModelConfig,
) -> Result<f64, ModelError> {
    let restricted = net.restricted_to_path(index);
    Ok(optimal_strategy(&restricted, config)?.quality())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::PathSpec;

    fn table3(lambda: f64, delta: f64) -> NetworkSpec {
        NetworkSpec::builder()
            .path(PathSpec::new(80e6, 0.450, 0.2).unwrap())
            .path(PathSpec::new(20e6, 0.150, 0.0).unwrap())
            .data_rate(lambda)
            .lifetime(delta)
            .build()
            .unwrap()
    }

    #[test]
    fn multipath_beats_both_single_paths() {
        // Figure 2's headline: the multipath optimum dominates each
        // single-path optimum across the sweep.
        let cfg = ModelConfig::default();
        for lambda in [10e6, 40e6, 90e6, 120e6] {
            let net = table3(lambda, 0.8);
            let multi = optimal_strategy(&net, &cfg).unwrap().quality();
            let p1 = single_path_quality(&net, 0, &cfg).unwrap();
            let p2 = single_path_quality(&net, 1, &cfg).unwrap();
            assert!(
                multi >= p1 - 1e-9 && multi >= p2 - 1e-9,
                "λ={lambda}: multi {multi} vs single {p1}/{p2}"
            );
        }
    }

    #[test]
    fn single_path_theory_values() {
        // At λ=90, δ=800: path 1 alone can deliver at most
        // (1−τ)·80/90 = 0.7111 (its retransmissions can't return in time:
        // 450+150… single path ⇒ dmin = 450 ⇒ 450·2+450 > 800).
        let net = table3(90e6, 0.8);
        let cfg = ModelConfig::default();
        let p1 = single_path_quality(&net, 0, &cfg).unwrap();
        assert!((p1 - 0.8 * 80.0 / 90.0).abs() < 1e-9, "p1 = {p1}");
        // Path 2 alone: capacity-bound to 20/90.
        let p2 = single_path_quality(&net, 1, &cfg).unwrap();
        assert!((p2 - 20.0 / 90.0).abs() < 1e-9, "p2 = {p2}");
    }

    #[test]
    fn quality_monotone_in_lifetime_and_rate() {
        let cfg = ModelConfig::default();
        let mut prev = 0.0;
        for delta in [0.2, 0.4, 0.6, 0.8, 1.0, 1.2] {
            let q = optimal_strategy(&table3(90e6, delta), &cfg)
                .unwrap()
                .quality();
            assert!(q >= prev - 1e-9, "δ={delta}: {q} < {prev}");
            prev = q;
        }
        let mut prev = 1.0;
        for lambda in [20e6, 60e6, 100e6, 140e6] {
            let q = optimal_strategy(&table3(lambda, 0.8), &cfg)
                .unwrap()
                .quality();
            assert!(q <= prev + 1e-9, "λ={lambda}: {q} > {prev}");
            prev = q;
        }
    }

    #[test]
    fn min_cost_vs_quality_duality() {
        // Minimizing cost at the quality the quality-max strategy achieves
        // must not cost more than that strategy.
        let net = NetworkSpec::builder()
            .path(PathSpec::with_cost(80e6, 0.450, 0.2, 3e-9).unwrap())
            .path(PathSpec::with_cost(20e6, 0.150, 0.0, 1e-9).unwrap())
            .data_rate(90e6)
            .lifetime(0.8)
            .build()
            .unwrap();
        let cfg = ModelConfig::default();
        let qmax = optimal_strategy(&net, &cfg).unwrap();
        let cheap = min_cost_strategy(&net, qmax.quality() - 1e-9, &cfg).unwrap();
        assert!(cheap.cost_rate() <= qmax.cost_rate() + 1e-6);
        assert!(cheap.quality() >= qmax.quality() - 1e-6);
    }

    #[test]
    fn error_types_are_displayable() {
        let e = ModelError::from(SpecError("boom".into()));
        assert!(!format!("{e}").is_empty());
        let net = table3(200e6, 0.8);
        let mut cfg = ModelConfig::default();
        cfg.blackhole = false;
        let err = optimal_strategy(&net, &cfg).unwrap_err();
        assert!(matches!(err, ModelError::Solve(_)));
        assert!(!format!("{err}").is_empty());
    }
}
