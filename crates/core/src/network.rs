//! The network + application scenario (paper Table I: `n`, `λ`, `δ`, `µ`).

use crate::path::{PathSpec, SpecError};

/// A complete deterministic scenario: the set of end-to-end paths plus the
/// application parameters (data rate `λ`, lifetime `δ`) and the cost
/// budget `µ`.
///
/// Paths are exposed with **1-based** indices in user-facing output,
/// matching the paper's Table IV where index 0 denotes the blackhole;
/// internally the `paths()` slice is 0-based.
///
/// ```
/// use dmc_core::{NetworkSpec, PathSpec};
///
/// // The paper's Figure 1 scenario.
/// let net = NetworkSpec::builder()
///     .path(PathSpec::new(10e6, 0.600, 0.10).unwrap())
///     .path(PathSpec::new(1e6, 0.200, 0.0).unwrap())
///     .data_rate(10e6)
///     .lifetime(1.0)
///     .build()
///     .unwrap();
/// assert_eq!(net.num_paths(), 2);
/// assert_eq!(net.min_delay(), 0.200);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkSpec {
    paths: Vec<PathSpec>,
    data_rate: f64,
    lifetime: f64,
    cost_budget: f64,
}

impl NetworkSpec {
    /// Starts building a scenario.
    pub fn builder() -> NetworkSpecBuilder {
        NetworkSpecBuilder::default()
    }

    /// The real paths (excluding any blackhole), 0-based.
    pub fn paths(&self) -> &[PathSpec] {
        &self.paths
    }

    /// Number of real paths `n`.
    pub fn num_paths(&self) -> usize {
        self.paths.len()
    }

    /// Application data rate `λ` in bits/second.
    pub fn data_rate(&self) -> f64 {
        self.data_rate
    }

    /// Data lifetime `δ` in seconds.
    pub fn lifetime(&self) -> f64 {
        self.lifetime
    }

    /// Cost budget `µ` per second (∞ when unconstrained).
    pub fn cost_budget(&self) -> f64 {
        self.cost_budget
    }

    /// `d_min` (Eq. 1): the shortest one-way delay across the real paths;
    /// acknowledgments travel back along this path (§VIII-C).
    pub fn min_delay(&self) -> f64 {
        self.paths
            .iter()
            .map(PathSpec::delay)
            .fold(f64::INFINITY, f64::min)
    }

    /// Index (0-based) of the lowest-delay path — the ack path.
    pub fn min_delay_path(&self) -> usize {
        let mut best = 0;
        for (i, p) in self.paths.iter().enumerate() {
            if p.delay() < self.paths[best].delay() {
                best = i;
            }
        }
        best
    }

    /// Total bandwidth across paths, bits/second.
    pub fn total_bandwidth(&self) -> f64 {
        self.paths.iter().map(PathSpec::bandwidth).sum()
    }

    /// Returns a copy with one path replaced (used by the sensitivity
    /// experiment to inject estimation errors into a single path).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn with_path_replaced(&self, index: usize, path: PathSpec) -> Self {
        let mut c = self.clone();
        c.paths[index] = path;
        c
    }

    /// Returns a copy with a different data rate `λ`.
    ///
    /// # Panics
    ///
    /// Panics if `data_rate` is not finite and positive.
    #[must_use]
    pub fn with_data_rate(&self, data_rate: f64) -> Self {
        assert!(data_rate > 0.0 && data_rate.is_finite());
        let mut c = self.clone();
        c.data_rate = data_rate;
        c
    }

    /// Returns a copy with a different lifetime `δ`.
    ///
    /// # Panics
    ///
    /// Panics if `lifetime` is not finite and positive.
    #[must_use]
    pub fn with_lifetime(&self, lifetime: f64) -> Self {
        assert!(lifetime > 0.0 && lifetime.is_finite());
        let mut c = self.clone();
        c.lifetime = lifetime;
        c
    }

    /// Returns a copy keeping only the single path `index` (0-based):
    /// the "single-path theory" baseline of Figure 2.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn restricted_to_path(&self, index: usize) -> Self {
        let mut c = self.clone();
        c.paths = vec![self.paths[index]];
        c
    }
}

/// Builder for [`NetworkSpec`].
#[derive(Debug, Clone, Default)]
pub struct NetworkSpecBuilder {
    paths: Vec<PathSpec>,
    data_rate: Option<f64>,
    lifetime: Option<f64>,
    cost_budget: Option<f64>,
}

impl NetworkSpecBuilder {
    /// Adds one path.
    pub fn path(mut self, path: PathSpec) -> Self {
        self.paths.push(path);
        self
    }

    /// Adds several paths.
    pub fn paths<I: IntoIterator<Item = PathSpec>>(mut self, paths: I) -> Self {
        self.paths.extend(paths);
        self
    }

    /// Sets the application data rate `λ` (bits/second). Required.
    pub fn data_rate(mut self, bps: f64) -> Self {
        self.data_rate = Some(bps);
        self
    }

    /// Sets the data lifetime `δ` (seconds). Required.
    pub fn lifetime(mut self, seconds: f64) -> Self {
        self.lifetime = Some(seconds);
        self
    }

    /// Sets the cost budget `µ` (cost units per second). Defaults to ∞
    /// (unconstrained), as the paper allows (§V-A).
    pub fn cost_budget(mut self, per_second: f64) -> Self {
        self.cost_budget = Some(per_second);
        self
    }

    /// Validates and builds the scenario.
    ///
    /// # Errors
    ///
    /// Requires at least one path, a positive finite `λ` and `δ`, and a
    /// positive (possibly infinite) `µ`. At least one path must have
    /// finite delay (otherwise no data can ever arrive).
    pub fn build(self) -> Result<NetworkSpec, SpecError> {
        if self.paths.is_empty() {
            return Err(SpecError("at least one path is required".into()));
        }
        let data_rate = self
            .data_rate
            .ok_or_else(|| SpecError("data_rate (λ) is required".into()))?;
        if !(data_rate > 0.0) || !data_rate.is_finite() {
            return Err(SpecError(format!(
                "data rate must be finite and > 0, got {data_rate}"
            )));
        }
        let lifetime = self
            .lifetime
            .ok_or_else(|| SpecError("lifetime (δ) is required".into()))?;
        if !(lifetime > 0.0) || !lifetime.is_finite() {
            return Err(SpecError(format!(
                "lifetime must be finite and > 0, got {lifetime}"
            )));
        }
        let cost_budget = self.cost_budget.unwrap_or(f64::INFINITY);
        if !(cost_budget > 0.0) {
            return Err(SpecError(format!(
                "cost budget must be > 0, got {cost_budget}"
            )));
        }
        if self.paths.iter().all(|p| !p.delay().is_finite()) {
            return Err(SpecError(
                "all paths have infinite delay; no data can arrive".into(),
            ));
        }
        Ok(NetworkSpec {
            paths: self.paths,
            data_rate,
            lifetime,
            cost_budget,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_paths() -> (PathSpec, PathSpec) {
        (
            PathSpec::new(80e6, 0.450, 0.2).unwrap(),
            PathSpec::new(20e6, 0.150, 0.0).unwrap(),
        )
    }

    #[test]
    fn builder_happy_path() {
        let (p1, p2) = two_paths();
        let net = NetworkSpec::builder()
            .path(p1)
            .path(p2)
            .data_rate(90e6)
            .lifetime(0.8)
            .build()
            .unwrap();
        assert_eq!(net.num_paths(), 2);
        assert_eq!(net.min_delay(), 0.150);
        assert_eq!(net.min_delay_path(), 1);
        assert_eq!(net.total_bandwidth(), 100e6);
        assert_eq!(net.cost_budget(), f64::INFINITY);
    }

    #[test]
    fn builder_requires_fields() {
        let (p1, _) = two_paths();
        assert!(NetworkSpec::builder()
            .data_rate(1e6)
            .lifetime(1.0)
            .build()
            .is_err());
        assert!(NetworkSpec::builder()
            .path(p1)
            .lifetime(1.0)
            .build()
            .is_err());
        assert!(NetworkSpec::builder()
            .path(p1)
            .data_rate(1e6)
            .build()
            .is_err());
        assert!(NetworkSpec::builder()
            .path(p1)
            .data_rate(-1.0)
            .lifetime(1.0)
            .build()
            .is_err());
        assert!(NetworkSpec::builder()
            .path(p1)
            .data_rate(1e6)
            .lifetime(0.0)
            .build()
            .is_err());
    }

    #[test]
    fn all_infinite_delay_rejected() {
        let dead = PathSpec::new(1e6, f64::INFINITY, 0.0).unwrap();
        assert!(NetworkSpec::builder()
            .path(dead)
            .data_rate(1e6)
            .lifetime(1.0)
            .build()
            .is_err());
    }

    #[test]
    fn restriction_and_replacement() {
        let (p1, p2) = two_paths();
        let net = NetworkSpec::builder()
            .paths([p1, p2])
            .data_rate(90e6)
            .lifetime(0.8)
            .build()
            .unwrap();
        let only2 = net.restricted_to_path(1);
        assert_eq!(only2.num_paths(), 1);
        assert_eq!(only2.paths()[0], p2);
        let perturbed = net.with_path_replaced(0, p1.scaled_bandwidth(0.5));
        assert_eq!(perturbed.paths()[0].bandwidth(), 40e6);
        assert_eq!(perturbed.paths()[1], p2);
        assert_eq!(net.with_data_rate(50e6).data_rate(), 50e6);
        assert_eq!(net.with_lifetime(0.5).lifetime(), 0.5);
    }
}
