//! Assembly of the deterministic linear program (paper §V, Eq. 10–18).
//!
//! For every path combination `l` the model needs three quantities:
//!
//! * `p_l` — the fraction of data assigned to `l` that arrives before the
//!   deadline (Eq. 12, generalized to `m` transmissions),
//! * `usage_{k,l}` — the expected number of transmissions on path `k` per
//!   unit of data assigned to `l` (the `A` matrix of Eq. 15, divided
//!   by `λ`),
//! * `cost_l` — the expected cost per bit assigned to `l` (Eq. 16 / `λ`).
//!
//! All three fall out of one walk over the combination's stages: stage `s`
//! is *attempted* with probability `Π_{u<s} τ_{i_u}` (every earlier
//! transmission was lost) and is *sent* at the deterministic time
//! `Σ_{u<s} (d_{i_u} + d_min)` (each earlier stage waited for its
//! retransmission timeout, Eq. 4). A stage contributes quality only if its
//! arrival time `send + d_i` is within the lifetime `δ`.
//!
//! The blackhole is *absorbing*: data assigned to it is discarded, so
//! later stages of the combination are never attempted.

use crate::combo::{ComboTable, Slot};
use crate::network::NetworkSpec;
use crate::path::PathSpec;
use crate::strategy::Strategy;
use dmc_lp::{Problem, SolveError, SolverOptions};

/// Slack added to deadline comparisons so exact boundary sums
/// (e.g. 450 + 150 + 150 = 750 ms vs δ = 750 ms) are not lost to
/// floating-point rounding.
pub(crate) const TIME_EPS: f64 = 1e-9;

/// Per-combination model coefficients.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ComboCoeffs {
    /// In-time delivery probability `p_l`.
    pub p: f64,
    /// Expected transmissions on each real path per unit data.
    pub usage: Vec<f64>,
    /// Expected cost per bit.
    pub cost: f64,
}

/// Walks one combination and accumulates `p`, per-path usage and cost.
pub(crate) fn combo_coeffs(
    paths: &[PathSpec],
    dmin: f64,
    lifetime: f64,
    slots: &[Slot],
) -> ComboCoeffs {
    let mut reach = 1.0; // probability this stage is attempted
    let mut send_time = 0.0; // deterministic send time of this stage
    let mut p = 0.0;
    let mut usage = vec![0.0; paths.len()];
    let mut cost = 0.0;
    for &slot in slots {
        let Slot::Path(i) = slot else {
            break; // blackhole absorbs: data is discarded here
        };
        let path = &paths[i];
        usage[i] += reach;
        cost += reach * path.cost();
        let arrival = send_time + path.delay();
        if arrival <= lifetime + TIME_EPS {
            p += reach * (1.0 - path.loss());
        }
        // Retransmission timeout t_i = d_i + d_min (Eq. 4).
        send_time += path.delay() + dmin;
        reach *= path.loss();
        if reach <= 0.0 || !send_time.is_finite() {
            break;
        }
    }
    ComboCoeffs { p, usage, cost }
}

/// Writes the per-combination deterministic coefficients (Eq. 12/15/16)
/// into caller-owned buffers, so the [`Planner`](crate::Planner) can
/// reuse its allocations across solves.
///
/// `usage` must arrive with one inner vector per path (cleared and
/// refilled here); `p`/`cost` are cleared and refilled.
pub(crate) fn fill_deterministic_coeffs(
    paths: &[PathSpec],
    dmin: f64,
    lifetime: f64,
    table: &ComboTable,
    p: &mut Vec<f64>,
    usage: &mut [Vec<f64>],
    cost: &mut Vec<f64>,
) {
    let n = paths.len();
    debug_assert_eq!(usage.len(), n);
    let ncombos = table.num_combos();
    p.clear();
    p.reserve(ncombos);
    cost.clear();
    cost.reserve(ncombos);
    for row in usage.iter_mut() {
        row.clear();
        row.resize(ncombos, 0.0);
    }
    for (l, slots) in table.iter() {
        let c = combo_coeffs(paths, dmin, lifetime, &slots);
        p.push(c.p);
        for (row, &u) in usage.iter_mut().zip(&c.usage) {
            row[l] = u;
        }
        cost.push(c.cost);
    }
}

/// The deterministic model of §V: precomputed coefficients for every
/// combination, ready to be assembled into quality-maximization
/// (Eq. 10) or cost-minimization (Eq. 20) linear programs.
#[derive(Debug, Clone)]
pub struct DeterministicModel {
    net: NetworkSpec,
    table: ComboTable,
    p: Vec<f64>,
    usage: Vec<Vec<f64>>, // usage[k][l]
    cost: Vec<f64>,
}

impl DeterministicModel {
    /// Builds the model for `transmissions` stages (`m ≥ 1`; the paper's
    /// base model is `m = 2`: one transmission + one retransmission).
    /// `blackhole` adds the virtual drop path of Eq. 19, which keeps the
    /// LP feasible when `λ` exceeds network capacity.
    pub fn new(net: &NetworkSpec, transmissions: usize, blackhole: bool) -> Self {
        let table = ComboTable::new(net.num_paths(), transmissions, blackhole);
        let n = net.num_paths();
        let mut p = Vec::new();
        let mut usage = vec![Vec::new(); n];
        let mut cost = Vec::new();
        fill_deterministic_coeffs(
            net.paths(),
            net.min_delay(),
            net.lifetime(),
            &table,
            &mut p,
            &mut usage,
            &mut cost,
        );
        DeterministicModel {
            net: net.clone(),
            table,
            p,
            usage,
            cost,
        }
    }

    /// The combination table (index ↔ stage-sequence bijection).
    pub fn table(&self) -> &ComboTable {
        &self.table
    }

    /// In-time delivery probability `p_l` per combination (Eq. 12).
    pub fn quality_coeffs(&self) -> &[f64] {
        &self.p
    }

    /// Expected cost per bit per combination (Eq. 16 divided by `λ`).
    pub fn cost_coeffs(&self) -> &[f64] {
        &self.cost
    }

    /// Expected transmissions of real path `k` per unit data, per
    /// combination (row `k` of Eq. 15 divided by `λ`).
    ///
    /// # Panics
    ///
    /// Panics if `k ≥ num_paths`.
    pub fn usage_coeffs(&self, k: usize) -> &[f64] {
        &self.usage[k]
    }

    /// The scenario this model was built for.
    pub fn network(&self) -> &NetworkSpec {
        &self.net
    }

    /// Assembles the quality-maximization LP (Eq. 10):
    /// `max p·x` s.t. bandwidth rows, optional cost row, `Σx = 1`, `x ≥ 0`.
    ///
    /// Rows are expressed per unit of `λ` (both sides of Eq. 3 and Eq. 7
    /// divided by `λ`), which keeps coefficients well-scaled.
    pub fn quality_lp(&self) -> Problem {
        let mut lp = Problem::maximize(self.p.clone());
        self.push_capacity_rows(&mut lp);
        let ones = vec![1.0; self.table.num_combos()];
        lp.add_eq(ones, 1.0).expect("dimensions match");
        lp
    }

    /// Assembles the cost-minimization LP (Eq. 20–23): `min cost·x`
    /// s.t. bandwidth rows, quality `≥ min_quality`, `Σx = 1`, `x ≥ 0`.
    pub fn min_cost_lp(&self, min_quality: f64) -> Problem {
        let mut lp = Problem::minimize(self.cost.clone());
        self.push_capacity_rows_no_budget(&mut lp);
        lp.add_ge(self.p.clone(), min_quality)
            .expect("p has exactly one coefficient per path");
        let ones = vec![1.0; self.table.num_combos()];
        lp.add_eq(ones, 1.0).expect("dimensions match");
        lp
    }

    fn push_capacity_rows(&self, lp: &mut Problem) {
        self.push_capacity_rows_no_budget(lp);
        // Cost row (Eq. 7): only when the budget binds anything.
        if self.net.cost_budget().is_finite() {
            lp.add_le(
                self.cost.clone(),
                self.net.cost_budget() / self.net.data_rate(),
            )
            .expect("dimensions match");
        }
    }

    fn push_capacity_rows_no_budget(&self, lp: &mut Problem) {
        for k in 0..self.net.num_paths() {
            let b = self.net.paths()[k].bandwidth();
            lp.add_le(self.usage[k].clone(), b / self.net.data_rate())
                .expect("dimensions match");
        }
    }

    /// Solves for the quality-optimal strategy.
    ///
    /// # Errors
    ///
    /// Forwards solver failures. With the blackhole enabled the LP is
    /// always feasible, so errors indicate a solver-level problem.
    pub fn solve_quality(&self, options: &SolverOptions) -> Result<Strategy, SolveError> {
        let lp = self.quality_lp();
        let sol = lp.solve(options)?;
        Ok(self.strategy_from_x(sol.into_x()))
    }

    /// Solves for the cheapest strategy with quality at least
    /// `min_quality`.
    ///
    /// # Errors
    ///
    /// [`SolveError::Infeasible`] when the requested quality is not
    /// achievable at all (no budget constraint is applied here; cost is
    /// the objective).
    pub fn solve_min_cost(
        &self,
        min_quality: f64,
        options: &SolverOptions,
    ) -> Result<Strategy, SolveError> {
        let lp = self.min_cost_lp(min_quality);
        let sol = lp.solve(options)?;
        Ok(self.strategy_from_x(sol.into_x()))
    }

    /// Packages an assignment vector into a [`Strategy`] with its
    /// predicted metrics (Eq. 2, 6, 7).
    pub fn strategy_from_x(&self, x: Vec<f64>) -> Strategy {
        let quality: f64 = self.p.iter().zip(&x).map(|(p, v)| p * v).sum();
        let lambda = self.net.data_rate();
        let send_rates: Vec<f64> = (0..self.net.num_paths())
            .map(|k| {
                lambda
                    * self.usage[k]
                        .iter()
                        .zip(&x)
                        .map(|(u, v)| u * v)
                        .sum::<f64>()
            })
            .collect();
        let cost_rate = lambda * self.cost.iter().zip(&x).map(|(c, v)| c * v).sum::<f64>();
        Strategy::new(
            self.table.clone(),
            x,
            lambda,
            quality,
            cost_rate,
            send_rates,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkSpec;
    use dmc_lp::SolverOptions;

    /// The paper's Table III paths with the +50 ms queueing margin applied
    /// (450/150 ms), exactly as used to produce Table IV.
    pub(crate) fn table3_network(lambda: f64, delta: f64) -> NetworkSpec {
        NetworkSpec::builder()
            .path(PathSpec::new(80e6, 0.450, 0.2).unwrap())
            .path(PathSpec::new(20e6, 0.150, 0.0).unwrap())
            .data_rate(lambda)
            .lifetime(delta)
            .build()
            .unwrap()
    }

    fn q(lambda: f64, delta: f64) -> f64 {
        let model = DeterministicModel::new(&table3_network(lambda, delta), 2, true);
        model
            .solve_quality(&SolverOptions::default())
            .unwrap()
            .quality()
    }

    #[test]
    fn table4_top_rate_sweep() {
        // Paper Table IV (top): δ = 800 ms.
        let cases = [
            (10e6, 1.0),
            (20e6, 1.0),
            (40e6, 1.0),
            (60e6, 1.0),
            (80e6, 1.0),
            (100e6, 0.84),
            (120e6, 0.70),
            (140e6, 0.60),
        ];
        for (lambda, want) in cases {
            let got = q(lambda, 0.8);
            assert!(
                (got - want).abs() < 1e-9,
                "λ={} Mbps: Q={got}, paper says {want}",
                lambda / 1e6
            );
        }
    }

    #[test]
    fn table4_bottom_lifetime_sweep() {
        // Paper Table IV (bottom): λ = 90 Mbps.
        let cases = [
            (0.150, 2.0 / 9.0),
            (0.400, 2.0 / 9.0),
            (0.450, 0.8444444444444444),
            (0.700, 0.8444444444444444),
            (0.750, 42.0 / 45.0),
            (1.000, 42.0 / 45.0),
            (1.050, 42.0 / 45.0),
            (1.500, 42.0 / 45.0),
        ];
        for (delta, want) in cases {
            let got = q(90e6, delta);
            assert!(
                (got - want).abs() < 1e-9,
                "δ={delta}s: Q={got}, paper says {want}"
            );
        }
    }

    #[test]
    fn figure1_scenario_reaches_full_quality() {
        // §II: 10 Mbps data over (10 Mbps, 600 ms, 10%) + (1 Mbps, 200 ms,
        // 0%), lifetime 1 s: initial transmission on the big path,
        // retransmissions on the small one → 100%.
        let net = NetworkSpec::builder()
            .path(PathSpec::new(10e6, 0.600, 0.10).unwrap())
            .path(PathSpec::new(1e6, 0.200, 0.0).unwrap())
            .data_rate(10e6)
            .lifetime(1.0)
            .build()
            .unwrap();
        let model = DeterministicModel::new(&net, 2, true);
        let s = model.solve_quality(&SolverOptions::default()).unwrap();
        assert!((s.quality() - 1.0).abs() < 1e-9, "Q = {}", s.quality());
        // Neither path alone can do it.
        for k in 0..2 {
            let single = DeterministicModel::new(&net.restricted_to_path(k), 2, true);
            let sq = single.solve_quality(&SolverOptions::default()).unwrap();
            assert!(
                sq.quality() < 1.0 - 1e-9,
                "path {k} alone reached {}",
                sq.quality()
            );
        }
    }

    #[test]
    fn combo_coeffs_match_eq12_and_eq15() {
        // Two paths, blackhole-free table, m = 2; verify against the
        // paper's closed forms.
        let net = table3_network(90e6, 0.8);
        let dmin = net.min_delay();
        let paths = net.paths();
        // Combo (path0, path1): i=1, j=2 in paper numbering.
        let c = combo_coeffs(paths, dmin, 0.8, &[Slot::Path(0), Slot::Path(1)]);
        // d_i + dmin + d_j = .45+.15+.15 = .75 ≤ .8 → p = 1 − τ_i·τ_j = 1.
        assert!((c.p - 1.0).abs() < 1e-12);
        // usage on path0 = 1, on path1 = τ_0 = 0.2 (Eq. 15).
        assert!((c.usage[0] - 1.0).abs() < 1e-12);
        assert!((c.usage[1] - 0.2).abs() < 1e-12);
        // Combo (path0, path0): arrival of retrans = .45+.15+.45 = 1.05 > .8
        // → p = 1 − τ_0 = 0.8; usage path0 = 1 + τ_0.
        let c = combo_coeffs(paths, dmin, 0.8, &[Slot::Path(0), Slot::Path(0)]);
        assert!((c.p - 0.8).abs() < 1e-12);
        assert!((c.usage[0] - 1.2).abs() < 1e-12);
        // Blackhole absorbs: (blackhole, path1) delivers nothing and uses
        // nothing.
        let c = combo_coeffs(paths, dmin, 0.8, &[Slot::Blackhole, Slot::Path(1)]);
        assert_eq!(c.p, 0.0);
        assert_eq!(c.usage, vec![0.0, 0.0]);
        assert_eq!(c.cost, 0.0);
    }

    #[test]
    fn boundary_deadline_is_inclusive() {
        // d_i + dmin + d_j = exactly δ must count (Eq. 12 uses ≤), even
        // though 0.45 + 0.15 + 0.15 > 0.75 in floating point.
        let net = table3_network(90e6, 0.75);
        let c = combo_coeffs(net.paths(), 0.15, 0.75, &[Slot::Path(0), Slot::Path(1)]);
        assert!((c.p - 1.0).abs() < 1e-12, "p = {}", c.p);
    }

    #[test]
    fn three_transmissions_dominate_two() {
        // More retransmission stages can only help quality.
        let net = table3_network(90e6, 1.5);
        let q2 = DeterministicModel::new(&net, 2, true)
            .solve_quality(&SolverOptions::default())
            .unwrap()
            .quality();
        let q3 = DeterministicModel::new(&net, 3, true)
            .solve_quality(&SolverOptions::default())
            .unwrap()
            .quality();
        assert!(q3 >= q2 - 1e-9, "q3 {q3} < q2 {q2}");
    }

    #[test]
    fn single_transmission_no_retransmissions() {
        // m = 1: no retransmission stage at all. With δ = 800 ms and λ=20,
        // everything fits on path 2 losslessly → Q = 1; with λ = 90 the
        // best is 0.8·(80/90·…): path0 delivers (1−τ)=0.8 of its 80 Mbps
        // share, path1 delivers its 20 Mbps → (0.8·70 + 20)/90.
        let model = DeterministicModel::new(&table3_network(20e6, 0.8), 1, true);
        let s = model.solve_quality(&SolverOptions::default()).unwrap();
        assert!((s.quality() - 1.0).abs() < 1e-9);
        let model = DeterministicModel::new(&table3_network(90e6, 0.8), 1, true);
        let s = model.solve_quality(&SolverOptions::default()).unwrap();
        let want = (0.8 * 70e6 + 20e6) / 90e6;
        assert!((s.quality() - want).abs() < 1e-9, "Q = {}", s.quality());
    }

    #[test]
    fn cost_budget_binds() {
        // Make path 0 expensive and bound the budget so only path 1 is
        // affordable.
        let net = NetworkSpec::builder()
            .path(PathSpec::with_cost(80e6, 0.450, 0.2, 1.0).unwrap())
            .path(PathSpec::with_cost(20e6, 0.150, 0.0, 0.0).unwrap())
            .data_rate(90e6)
            .lifetime(0.8)
            .cost_budget(1.0) // at cost 1/bit, one bit/s of path-0 budget
            .build()
            .unwrap();
        let model = DeterministicModel::new(&net, 2, true);
        let s = model.solve_quality(&SolverOptions::default()).unwrap();
        // Path 1 can carry 20 of 90 Mbps → Q ≈ 2/9.
        assert!(
            (s.quality() - 2.0 / 9.0).abs() < 1e-6,
            "Q = {}",
            s.quality()
        );
        assert!(s.cost_rate() <= 1.0 + 1e-6);
    }

    #[test]
    fn min_cost_meets_quality_floor() {
        let net = NetworkSpec::builder()
            .path(PathSpec::with_cost(80e6, 0.450, 0.2, 2e-9).unwrap())
            .path(PathSpec::with_cost(20e6, 0.150, 0.0, 1e-9).unwrap())
            .data_rate(90e6)
            .lifetime(0.8)
            .build()
            .unwrap();
        let model = DeterministicModel::new(&net, 2, true);
        let s = model
            .solve_min_cost(0.9, &SolverOptions::default())
            .unwrap();
        assert!(s.quality() >= 0.9 - 1e-9, "Q = {}", s.quality());
        // Cheaper than the quality-optimal strategy's cost or equal quality
        // at lower cost: sanity only — cost must be positive and finite.
        assert!(s.cost_rate() > 0.0 && s.cost_rate().is_finite());
        // Infeasible floor is reported.
        assert!(model
            .solve_min_cost(0.99, &SolverOptions::default())
            .is_err());
    }

    #[test]
    fn blackhole_disabled_infeasible_when_overloaded() {
        // Without the blackhole, Σx = 1 cannot be satisfied when λ exceeds
        // what the bandwidth rows admit.
        let net = table3_network(200e6, 0.8);
        let model = DeterministicModel::new(&net, 2, false);
        assert!(model.solve_quality(&SolverOptions::default()).is_err());
        // With the blackhole it is always feasible.
        let model = DeterministicModel::new(&net, 2, true);
        assert!(model.solve_quality(&SolverOptions::default()).is_ok());
    }
}
