//! Packet-level discretization of the LP solution — the paper's
//! Algorithm 1.
//!
//! The LP produces *fractions* of traffic per path combination; an actual
//! sender must assign whole packets. Algorithm 1 keeps, per combination,
//! the count of packets assigned so far and always picks the combination
//! whose empirical share lags its target share the most
//! (`argmin assigned[i]/total − x'_i`), which keeps the running empirical
//! distribution within one packet of the target — much tighter than
//! weighted random sampling (see the `scheduler` bench for the ablation).

use rand::Rng;

/// Deficit-based combination selector (paper Algorithm 1).
///
/// ```
/// use dmc_core::ComboScheduler;
///
/// let mut sched = ComboScheduler::new(vec![0.75, 0.25]).unwrap();
/// let picks: Vec<usize> = (0..4).map(|_| sched.next_combo()).collect();
/// assert_eq!(picks.iter().filter(|&&c| c == 0).count(), 3);
/// assert_eq!(picks.iter().filter(|&&c| c == 1).count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ComboScheduler {
    x: Vec<f64>,
    assigned: Vec<u64>,
    total: u64,
}

impl ComboScheduler {
    /// Creates a scheduler for target distribution `x` (must be
    /// non-negative and sum to 1 within `1e-6`).
    ///
    /// # Errors
    ///
    /// Returns a descriptive message for empty, negative or non-normalized
    /// input.
    pub fn new(x: Vec<f64>) -> Result<Self, String> {
        if x.is_empty() {
            return Err("empty distribution".into());
        }
        if x.iter().any(|&v| !v.is_finite() || v < -1e-12) {
            return Err("distribution entries must be finite and ≥ 0".into());
        }
        let total: f64 = x.iter().sum();
        if (total - 1.0).abs() > 1e-6 {
            return Err(format!("distribution sums to {total}, expected 1"));
        }
        let len = x.len();
        Ok(ComboScheduler {
            x,
            assigned: vec![0; len],
            total: 0,
        })
    }

    /// Selects the combination for the next packet (Algorithm 1's
    /// `selectPathCombination`).
    pub fn next_combo(&mut self) -> usize {
        let res = if self.total == 0 {
            // First packet: the combination with the largest share.
            argmax(&self.x)
        } else {
            // The combination lagging most behind its target share.
            // Zero-share combinations are skipped: their deficit can never
            // go negative, so they could only win exact ties — and
            // selecting them (e.g. the blackhole) would be wrong.
            let total = self.total as f64;
            let mut best = usize::MAX;
            let mut best_deficit = f64::INFINITY;
            for (i, (&a, &xi)) in self.assigned.iter().zip(&self.x).enumerate() {
                if xi <= 0.0 {
                    continue;
                }
                let deficit = a as f64 / total - xi;
                if deficit < best_deficit - 1e-15 {
                    best_deficit = deficit;
                    best = i;
                }
            }
            debug_assert!(best != usize::MAX, "distribution sums to 1");
            best
        };
        self.assigned[res] += 1;
        self.total += 1;
        res
    }

    /// Packets assigned per combination so far.
    pub fn assigned(&self) -> &[u64] {
        &self.assigned
    }

    /// Total packets assigned so far.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Target distribution.
    pub fn target(&self) -> &[f64] {
        &self.x
    }

    /// Largest deviation `|assigned_i/total − x_i|` of the empirical
    /// distribution from the target (0 when nothing assigned yet).
    pub fn max_deviation(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let total = self.total as f64;
        self.assigned
            .iter()
            .zip(&self.x)
            .map(|(&a, &xi)| (a as f64 / total - xi).abs())
            .fold(0.0, f64::max)
    }

    /// Replaces the target distribution while keeping history, so an
    /// adaptive sender can re-solve mid-stream and converge smoothly to
    /// the new solution.
    ///
    /// # Errors
    ///
    /// Same validation as [`ComboScheduler::new`]; the new distribution
    /// must have the same length.
    pub fn retarget(&mut self, x: Vec<f64>) -> Result<(), String> {
        if x.len() != self.x.len() {
            return Err(format!(
                "new distribution has {} entries, expected {}",
                x.len(),
                self.x.len()
            ));
        }
        let fresh = ComboScheduler::new(x)?;
        self.x = fresh.x;
        Ok(())
    }

    /// Forgets assignment history (e.g. after a long pause when the old
    /// empirical distribution no longer matters).
    pub fn reset_history(&mut self) {
        self.assigned.iter_mut().for_each(|a| *a = 0);
        self.total = 0;
    }
}

/// How a [`Scheduler`] maps the solved fractions to whole packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SchedulePolicy {
    /// Algorithm 1's deficit rule: always pick the combination lagging
    /// most behind its target share. `O(1/N)` convergence; the default.
    #[default]
    Deficit,
    /// I.i.d. weighted random sampling — the paper's ablation baseline
    /// (`O(1/√N)` convergence). Deterministic for a given seed.
    WeightedRandom {
        /// RNG seed for the sampler.
        seed: u64,
    },
}

/// The unified per-packet combination selector, merging the historical
/// [`ComboScheduler`] (Algorithm 1) and [`RandomScheduler`] (weighted
/// random) behind one type — pick the behavior with [`SchedulePolicy`].
///
/// Obtain one from [`Plan::scheduler`](crate::Plan::scheduler), or build
/// it directly from an assignment vector:
///
/// ```
/// use dmc_core::{SchedulePolicy, Scheduler};
///
/// let mut sched = Scheduler::new(vec![0.75, 0.25], SchedulePolicy::Deficit).unwrap();
/// let picks: Vec<usize> = (0..4).map(|_| sched.next_combo()).collect();
/// assert_eq!(picks.iter().filter(|&&c| c == 0).count(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct Scheduler {
    imp: SchedulerImpl,
}

#[derive(Debug, Clone)]
enum SchedulerImpl {
    Deficit(ComboScheduler),
    Weighted {
        x: Vec<f64>,
        sampler: RandomScheduler,
        rng: rand::rngs::StdRng,
        assigned: Vec<u64>,
        total: u64,
    },
}

impl Scheduler {
    /// Creates a scheduler for target distribution `x` (non-negative,
    /// summing to 1 within `1e-6`).
    ///
    /// # Errors
    ///
    /// Returns a descriptive message for empty, negative or
    /// non-normalized input.
    pub fn new(x: Vec<f64>, policy: SchedulePolicy) -> Result<Self, String> {
        let imp = match policy {
            SchedulePolicy::Deficit => SchedulerImpl::Deficit(ComboScheduler::new(x)?),
            SchedulePolicy::WeightedRandom { seed } => {
                use rand::SeedableRng;
                let sampler = RandomScheduler::new(x.clone())?;
                let len = x.len();
                SchedulerImpl::Weighted {
                    x,
                    sampler,
                    rng: rand::rngs::StdRng::seed_from_u64(seed),
                    assigned: vec![0; len],
                    total: 0,
                }
            }
        };
        Ok(Scheduler { imp })
    }

    /// Selects the combination for the next packet.
    pub fn next_combo(&mut self) -> usize {
        match &mut self.imp {
            SchedulerImpl::Deficit(s) => s.next_combo(),
            SchedulerImpl::Weighted {
                sampler,
                rng,
                assigned,
                total,
                ..
            } => {
                let combo = sampler.next_combo(rng);
                assigned[combo] += 1;
                *total += 1;
                combo
            }
        }
    }

    /// Target distribution.
    pub fn target(&self) -> &[f64] {
        match &self.imp {
            SchedulerImpl::Deficit(s) => s.target(),
            SchedulerImpl::Weighted { x, .. } => x,
        }
    }

    /// Packets assigned per combination so far.
    pub fn assigned(&self) -> &[u64] {
        match &self.imp {
            SchedulerImpl::Deficit(s) => s.assigned(),
            SchedulerImpl::Weighted { assigned, .. } => assigned,
        }
    }

    /// Total packets assigned so far.
    pub fn total(&self) -> u64 {
        match &self.imp {
            SchedulerImpl::Deficit(s) => s.total(),
            SchedulerImpl::Weighted { total, .. } => *total,
        }
    }

    /// Largest deviation of the empirical distribution from the target
    /// (0 when nothing assigned yet).
    pub fn max_deviation(&self) -> f64 {
        match &self.imp {
            SchedulerImpl::Deficit(s) => s.max_deviation(),
            SchedulerImpl::Weighted {
                x, assigned, total, ..
            } => {
                if *total == 0 {
                    return 0.0;
                }
                let total = *total as f64;
                assigned
                    .iter()
                    .zip(x)
                    .map(|(&a, &xi)| (a as f64 / total - xi).abs())
                    .fold(0.0, f64::max)
            }
        }
    }

    /// Replaces the target distribution (same length) while keeping
    /// history — the adaptive re-solve hook.
    ///
    /// # Errors
    ///
    /// Same validation as [`Scheduler::new`], plus a length check.
    pub fn retarget(&mut self, x: Vec<f64>) -> Result<(), String> {
        match &mut self.imp {
            SchedulerImpl::Deficit(s) => s.retarget(x),
            SchedulerImpl::Weighted {
                x: target, sampler, ..
            } => {
                if x.len() != target.len() {
                    return Err(format!(
                        "new distribution has {} entries, expected {}",
                        x.len(),
                        target.len()
                    ));
                }
                *sampler = RandomScheduler::new(x.clone())?;
                *target = x;
                Ok(())
            }
        }
    }

    /// Forgets assignment history.
    pub fn reset_history(&mut self) {
        match &mut self.imp {
            SchedulerImpl::Deficit(s) => s.reset_history(),
            SchedulerImpl::Weighted {
                assigned, total, ..
            } => {
                assigned.iter_mut().for_each(|a| *a = 0);
                *total = 0;
            }
        }
    }
}

fn argmax(xs: &[f64]) -> usize {
    let mut best = 0;
    for (i, &v) in xs.iter().enumerate() {
        if v > xs[best] {
            best = i;
        }
    }
    best
}

/// Baseline for the ablation study: i.i.d. weighted random assignment.
///
/// Converges to the target distribution only as `O(1/√N)` versus
/// Algorithm 1's `O(1/N)`; the difference is what makes Algorithm 1 track
/// the LP solution "in the long run" (paper §VII, Experiment 2) with
/// short-horizon traffic too.
#[derive(Debug, Clone)]
pub struct RandomScheduler {
    cumulative: Vec<f64>,
}

impl RandomScheduler {
    /// Creates the sampler; same validation as [`ComboScheduler::new`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`ComboScheduler::new`].
    pub fn new(x: Vec<f64>) -> Result<Self, String> {
        // Reuse validation.
        let _ = ComboScheduler::new(x.clone())?;
        let mut acc = 0.0;
        let cumulative = x
            .iter()
            .map(|v| {
                acc += v;
                acc
            })
            .collect();
        Ok(RandomScheduler { cumulative })
    }

    /// Samples a combination.
    pub fn next_combo<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        self.cumulative
            .partition_point(|&c| c < u)
            .min(self.cumulative.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn validation() {
        assert!(ComboScheduler::new(vec![]).is_err());
        assert!(ComboScheduler::new(vec![0.5, 0.6]).is_err());
        assert!(ComboScheduler::new(vec![-0.1, 1.1]).is_err());
        assert!(ComboScheduler::new(vec![f64::NAN, 1.0]).is_err());
        assert!(ComboScheduler::new(vec![0.5, 0.5]).is_ok());
    }

    #[test]
    fn first_pick_is_argmax() {
        let mut s = ComboScheduler::new(vec![0.2, 0.5, 0.3]).unwrap();
        assert_eq!(s.next_combo(), 1);
    }

    #[test]
    fn exact_quarters() {
        let mut s = ComboScheduler::new(vec![0.25, 0.75]).unwrap();
        let picks: Vec<usize> = (0..8).map(|_| s.next_combo()).collect();
        assert_eq!(picks.iter().filter(|&&c| c == 0).count(), 2);
        assert_eq!(picks.iter().filter(|&&c| c == 1).count(), 6);
        assert!(s.max_deviation() < 1e-12);
    }

    #[test]
    fn deviation_bounded_by_one_packet() {
        // Algorithm 1's deficit rule keeps every combination within one
        // packet of its target share at all times.
        let x = vec![4.0 / 25.0, 4.0 / 5.0, 1.0 / 25.0]; // Table IV λ=100 row
        let mut s = ComboScheduler::new(x.clone()).unwrap();
        for step in 1..=5_000u64 {
            s.next_combo();
            let bound = (x.len() as f64) / step as f64;
            assert!(
                s.max_deviation() <= bound,
                "step {step}: deviation {} > {bound}",
                s.max_deviation()
            );
        }
    }

    #[test]
    fn zero_entries_never_selected() {
        let mut s = ComboScheduler::new(vec![0.0, 1.0, 0.0]).unwrap();
        for _ in 0..100 {
            assert_eq!(s.next_combo(), 1);
        }
    }

    #[test]
    fn retarget_keeps_history_and_converges() {
        let mut s = ComboScheduler::new(vec![1.0, 0.0]).unwrap();
        for _ in 0..100 {
            s.next_combo();
        }
        s.retarget(vec![0.0, 1.0]).unwrap();
        for _ in 0..900 {
            s.next_combo();
        }
        // 100 on combo 0 then 900 on combo 1 → empirical (0.1, 0.9),
        // steering toward (0, 1).
        assert_eq!(s.assigned()[0], 100);
        assert_eq!(s.assigned()[1], 900);
        assert!(s.retarget(vec![1.0]).is_err());
    }

    #[test]
    fn reset_history() {
        let mut s = ComboScheduler::new(vec![0.5, 0.5]).unwrap();
        s.next_combo();
        s.reset_history();
        assert_eq!(s.total(), 0);
        assert_eq!(s.assigned(), &[0, 0]);
    }

    #[test]
    fn unified_scheduler_deficit_matches_combo_scheduler() {
        let x = vec![0.25, 0.75];
        let mut unified = Scheduler::new(x.clone(), SchedulePolicy::Deficit).unwrap();
        let mut legacy = ComboScheduler::new(x).unwrap();
        for _ in 0..200 {
            assert_eq!(unified.next_combo(), legacy.next_combo());
        }
        assert_eq!(unified.assigned(), legacy.assigned());
        assert_eq!(unified.total(), 200);
        assert!(unified.max_deviation() <= legacy.max_deviation() + 1e-15);
        unified.retarget(vec![0.5, 0.5]).unwrap();
        unified.reset_history();
        assert_eq!(unified.total(), 0);
        assert_eq!(unified.target(), &[0.5, 0.5]);
    }

    #[test]
    fn unified_scheduler_weighted_is_seeded_and_tracked() {
        let x = vec![0.6, 0.3, 0.1];
        let mk = || Scheduler::new(x.clone(), SchedulePolicy::WeightedRandom { seed: 9 }).unwrap();
        let (mut a, mut b) = (mk(), mk());
        let picks_a: Vec<usize> = (0..500).map(|_| a.next_combo()).collect();
        let picks_b: Vec<usize> = (0..500).map(|_| b.next_combo()).collect();
        assert_eq!(picks_a, picks_b, "same seed ⇒ same stream");
        assert_eq!(a.total(), 500);
        assert_eq!(a.assigned().iter().sum::<u64>(), 500);
        // Roughly follows the target.
        assert!(a.max_deviation() < 0.1, "dev {}", a.max_deviation());
        assert!(a.retarget(vec![1.0]).is_err());
        a.retarget(vec![0.0, 0.0, 1.0]).unwrap();
        a.reset_history();
        for _ in 0..50 {
            assert_eq!(a.next_combo(), 2);
        }
    }

    #[test]
    fn random_baseline_is_looser_than_algorithm1() {
        let x = vec![0.6, 0.3, 0.1];
        let n = 2_000;
        let mut det = ComboScheduler::new(x.clone()).unwrap();
        for _ in 0..n {
            det.next_combo();
        }
        let rand_sched = RandomScheduler::new(x.clone()).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0u64; 3];
        for _ in 0..n {
            counts[rand_sched.next_combo(&mut rng)] += 1;
        }
        let rand_dev = counts
            .iter()
            .zip(&x)
            .map(|(&c, &xi)| (c as f64 / n as f64 - xi).abs())
            .fold(0.0, f64::max);
        assert!(
            det.max_deviation() < rand_dev,
            "algorithm 1 {} should beat random {rand_dev}",
            det.max_deviation()
        );
        assert!(det.max_deviation() <= 3.0 / n as f64);
    }
}
