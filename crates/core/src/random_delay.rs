//! The random-delay extension of the model (paper §VI-B, Eq. 24–30/34).
//!
//! Delays are random variables (shifted gamma in the paper's experiments);
//! the sender must additionally choose, per combination stage, a
//! *retransmission timeout*: long enough that an acknowledgment would have
//! arrived, short enough that the retransmission can still meet the
//! deadline. Eq. 26/34 picks the timeout maximizing
//!
//! ```text
//! g(t) = P(t + d_j ≤ δ) · P(d_i + d_min ≤ t)
//! ```
//!
//! where `d_i + d_min` (data out, ack back) is computed by *convolving*
//! the two delay distributions on a discrete grid ([`DiscreteDist`]).
//! The product often has a plateau of equally good timeouts — the paper
//! notes the maximizer "does not necessarily produce a unique solution" —
//! so the plateau tie-break is configurable ([`PlateauRule`]).
//!
//! Because a retransmission fires exactly when the timeout expires, the
//! *send time* of stage `s` is deterministic (the sum of the earlier
//! stages' timeouts), which is what lets the model generalize cleanly to
//! `m > 2` transmissions: stage `s` delivers in time with probability
//! `P(T_s + d_{i_s} ≤ δ)` and is reached with probability
//! `Π_{u<s} P(retrans_u)` (Eq. 27).
//!
//! The preferred entry point is the unified
//! [`Planner`](crate::Planner) pipeline, which routes any
//! [`Scenario`](crate::Scenario) with non-constant delays through the
//! same coefficient computation implemented here.

use crate::combo::{ComboTable, Slot};
use crate::path::SpecError;
use crate::scenario::ScenarioPath;
use crate::strategy::Strategy;
use dmc_lp::{Problem, SolveError, SolverOptions};
use dmc_stats::{Delay, DiscreteDist};
use std::sync::Arc;

/// A path whose one-way delay is a random variable (Eq. 24).
///
/// Legacy alias: the unified [`ScenarioPath`] carries a delay
/// distribution for *both* regimes (a constant distribution is the
/// deterministic case), so the split type is no longer needed.
pub type RandomPath = ScenarioPath;

/// A scenario with random path delays.
///
/// Legacy type: prefer [`Scenario`](crate::Scenario), which subsumes this
/// and [`NetworkSpec`](crate::NetworkSpec); `Scenario::from_random`
/// converts.
#[derive(Debug, Clone)]
pub struct RandomNetworkSpec {
    paths: Vec<RandomPath>,
    data_rate: f64,
    lifetime: f64,
    cost_budget: f64,
}

impl RandomNetworkSpec {
    /// Creates a scenario; same validation as
    /// [`NetworkSpec`](crate::NetworkSpec).
    ///
    /// # Errors
    ///
    /// Requires at least one path, positive finite `λ` and `δ`.
    pub fn new(paths: Vec<RandomPath>, data_rate: f64, lifetime: f64) -> Result<Self, SpecError> {
        if paths.is_empty() {
            return Err(SpecError("at least one path is required".into()));
        }
        if !(data_rate > 0.0) || !data_rate.is_finite() {
            return Err(SpecError(format!(
                "data rate must be finite and > 0, got {data_rate}"
            )));
        }
        if !(lifetime > 0.0) || !lifetime.is_finite() {
            return Err(SpecError(format!(
                "lifetime must be finite and > 0, got {lifetime}"
            )));
        }
        Ok(RandomNetworkSpec {
            paths,
            data_rate,
            lifetime,
            cost_budget: f64::INFINITY,
        })
    }

    /// Sets the cost budget `µ` per second.
    ///
    /// # Errors
    ///
    /// Rejects non-positive budgets.
    pub fn with_cost_budget(mut self, per_second: f64) -> Result<Self, SpecError> {
        if !(per_second > 0.0) {
            return Err(SpecError(format!("budget must be > 0, got {per_second}")));
        }
        self.cost_budget = per_second;
        Ok(self)
    }

    /// The paths.
    pub fn paths(&self) -> &[RandomPath] {
        &self.paths
    }

    /// Data rate `λ` bits/second.
    pub fn data_rate(&self) -> f64 {
        self.data_rate
    }

    /// Lifetime `δ` seconds.
    pub fn lifetime(&self) -> f64 {
        self.lifetime
    }

    /// Cost budget `µ` per second (∞ if unset).
    pub fn cost_budget(&self) -> f64 {
        self.cost_budget
    }

    /// The acknowledgment path (Eq. 25): smallest *expected* delay.
    pub fn ack_path(&self) -> usize {
        ack_path_of(&self.paths)
    }
}

/// Index of the path with the smallest expected delay (Eq. 25).
pub(crate) fn ack_path_of(paths: &[ScenarioPath]) -> usize {
    let mut best = 0;
    for (i, p) in paths.iter().enumerate() {
        if p.delay().mean() < paths[best].delay().mean() {
            best = i;
        }
    }
    best
}

/// Tie-break used when Eq. 34's product is maximal over a plateau.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PlateauRule {
    /// Earliest maximizing timeout (retransmit as soon as safe).
    First,
    /// Middle of the plateau: robust to estimation error on both sides.
    /// The default.
    #[default]
    Midpoint,
    /// Latest maximizing timeout (give the ack every chance).
    Last,
}

/// Configuration of the random-delay model.
#[derive(Debug, Clone, PartialEq)]
pub struct RandomDelayConfig {
    /// Discretization grid step in seconds (default 1 ms, the paper's
    /// reporting granularity).
    pub grid_step: f64,
    /// Number of transmissions `m` (default 2, the paper's presentation).
    pub transmissions: usize,
    /// Include the blackhole slot (default true).
    pub blackhole: bool,
    /// Plateau tie-break for Eq. 34 (default midpoint).
    pub plateau: PlateauRule,
}

impl Default for RandomDelayConfig {
    fn default() -> Self {
        RandomDelayConfig {
            grid_step: 1e-3,
            transmissions: 2,
            blackhole: true,
            plateau: PlateauRule::Midpoint,
        }
    }
}

/// The per-combination coefficients of the random-delay LP, written into
/// caller-owned buffers so a [`Planner`](crate::Planner) can reuse its
/// allocations across solves.
///
/// `usage` must arrive with one inner vector per path (cleared/overwritten
/// here); the other buffers are cleared and refilled.
#[allow(clippy::too_many_arguments)]
pub(crate) fn fill_random_coeffs(
    paths: &[ScenarioPath],
    lifetime: f64,
    grid_step: f64,
    plateau: PlateauRule,
    table: &ComboTable,
    ack_path: usize,
    p: &mut Vec<f64>,
    usage: &mut [Vec<f64>],
    cost: &mut Vec<f64>,
    stage_timeouts: &mut Vec<Vec<Option<f64>>>,
) {
    assert!(
        grid_step > 0.0 && grid_step.is_finite(),
        "grid step must be positive"
    );
    let n = paths.len();
    debug_assert_eq!(usage.len(), n);
    let step = grid_step;

    // F_{d_i + d_min}: convolution of each path's delay with an
    // independent copy of the ack path's delay (Eq. 34's
    // `F_Xi ∗ f_Xmin`).
    let ack_delay = Arc::clone(paths[ack_path].delay());
    let delay_dists: Vec<DiscreteDist> = paths
        .iter()
        .map(|p| DiscreteDist::from_delay(p.delay().as_ref(), step))
        .collect();
    let ack_disc = DiscreteDist::from_delay(ack_delay.as_ref(), step);
    let rtt_dists: Vec<DiscreteDist> = delay_dists.iter().map(|d| d.convolve(&ack_disc)).collect();

    let delta = lifetime;
    let ncombos = table.num_combos();
    p.clear();
    p.reserve(ncombos);
    cost.clear();
    cost.reserve(ncombos);
    stage_timeouts.clear();
    stage_timeouts.reserve(ncombos);
    for row in usage.iter_mut() {
        row.clear();
        row.resize(ncombos, 0.0);
    }

    for (l, slots) in table.iter() {
        let mut reach = 1.0; // Π P(retrans) over earlier stages
        let mut send_time = 0.0; // deterministic send time T_s
        let mut pl = 0.0;
        let mut costl = 0.0;
        let mut timeouts = vec![None; slots.len()];
        for (s, &slot) in slots.iter().enumerate() {
            let Slot::Path(i) = slot else {
                break; // blackhole absorbs
            };
            let path = &paths[i];
            usage[i][l] += reach;
            costl += reach * path.cost();
            // P(T_s + d_i ≤ δ) · (1 − τ_i), Eq. 28 generalized.
            let in_time = path.delay().cdf(delta - send_time);
            pl += reach * in_time * (1.0 - path.loss());

            // Arm the next stage's timeout if there is a real next path.
            let Some(&next) = slots.get(s + 1) else {
                break;
            };
            let Slot::Path(j) = next else {
                break; // retransmitting into the blackhole = dropping
            };
            let remaining = delta - send_time;
            let opt = optimize_timeout(
                &rtt_dists[i],
                paths[j].delay().as_ref(),
                remaining,
                step,
                plateau,
            );
            let Some(theta) = opt else {
                break; // no timeout can meet the deadline (t₁,₁ case)
            };
            timeouts[s] = Some(theta);

            // Duplicate-delivery correction (beyond the paper; see
            // DESIGN.md): Eq. 28 adds the retransmission's delivery
            // probability unconditionally, double-counting the event
            // "the stage-s copy arrived in time AND its ack missed
            // the timeout, so the s+1 copy also arrived in time".
            // The receiver deduplicates, so that mass must be
            // subtracted — without it, tight deadlines (frequent
            // spurious retransmissions) yield p > 1.
            let next_in_time = paths[j].delay().cdf(delta - send_time - theta);
            let spurious_and_first_ok = joint_in_time_no_ack(
                &delay_dists[i],
                ack_delay.as_ref(),
                delta - send_time,
                theta,
            );
            pl -= reach
                * (1.0 - path.loss())
                * spurious_and_first_ok
                * (1.0 - paths[j].loss())
                * next_in_time;

            // Eq. 27: retransmit unless the ack beat the timeout.
            let ack_in_time = lookup_cdf(&rtt_dists[i], theta);
            reach *= 1.0 - ack_in_time * (1.0 - path.loss());
            send_time += theta;
            if reach <= 1e-15 {
                break;
            }
        }
        p.push(pl.clamp(0.0, 1.0));
        cost.push(costl);
        stage_timeouts.push(timeouts);
        let _ = l;
    }
}

/// The assembled random-delay model: per-combination delivery
/// probabilities, bandwidth/cost usage, and per-stage optimal timeouts.
#[derive(Debug, Clone)]
pub struct RandomDelayModel {
    table: ComboTable,
    ack_path: usize,
    data_rate: f64,
    lifetime: f64,
    cost_budget: f64,
    bandwidths: Vec<f64>,
    p: Vec<f64>,
    usage: Vec<Vec<f64>>,
    cost: Vec<f64>,
    /// `stage_timeouts[l][s]`: timeout armed after sending stage `s` of
    /// combination `l`; `None` when no retransmission is scheduled
    /// (last stage, next stage is the blackhole, or no timeout can meet
    /// the deadline — the paper's "t₁,₁ is not defined" case).
    stage_timeouts: Vec<Vec<Option<f64>>>,
}

impl RandomDelayModel {
    /// Builds the model: discretizes delays, optimizes every stage timeout
    /// (Eq. 34) and assembles the LP coefficients (Eq. 28–30).
    ///
    /// # Panics
    ///
    /// Panics if `config.grid_step ≤ 0` or `config.transmissions == 0`.
    pub fn new(net: &RandomNetworkSpec, config: &RandomDelayConfig) -> Self {
        let n = net.paths.len();
        let table = ComboTable::new(n, config.transmissions, config.blackhole);
        let ack_path = net.ack_path();
        let mut p = Vec::new();
        let mut usage = vec![Vec::new(); n];
        let mut cost = Vec::new();
        let mut stage_timeouts = Vec::new();
        fill_random_coeffs(
            &net.paths,
            net.lifetime,
            config.grid_step,
            config.plateau,
            &table,
            ack_path,
            &mut p,
            &mut usage,
            &mut cost,
            &mut stage_timeouts,
        );

        RandomDelayModel {
            table,
            ack_path,
            data_rate: net.data_rate,
            lifetime: net.lifetime,
            cost_budget: net.cost_budget,
            bandwidths: net.paths.iter().map(ScenarioPath::bandwidth).collect(),
            p,
            usage,
            cost,
            stage_timeouts,
        }
    }

    /// The combination table.
    pub fn table(&self) -> &ComboTable {
        &self.table
    }

    /// The acknowledgment path (Eq. 25), 0-based.
    pub fn ack_path(&self) -> usize {
        self.ack_path
    }

    /// In-time delivery probability per combination (Eq. 28).
    pub fn quality_coeffs(&self) -> &[f64] {
        &self.p
    }

    /// Per-stage timeouts of a combination; see
    /// [`RandomDelayModel::timeout`] for the paper's pairwise `t_{i,j}`.
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    pub fn stage_timeouts(&self, l: usize) -> &[Option<f64>] {
        &self.stage_timeouts[l]
    }

    /// The paper's `t_{i,j}` (Eq. 26): the timeout armed after first
    /// sending on real path `i` (0-based) when the retransmission path is
    /// real path `j`. `None` when no timeout can meet the deadline.
    ///
    /// Only meaningful for `transmissions ≥ 2`.
    pub fn timeout(&self, i: usize, j: usize) -> Option<f64> {
        let l = pairwise_combo_index(&self.table, i, j)?;
        self.stage_timeouts[l].first().copied().flatten()
    }

    /// Assembles the quality-maximization LP with the random-delay
    /// coefficients (Eq. 28–30 replacing Eq. 12/15/16).
    pub fn quality_lp(&self) -> Problem {
        let mut lp = Problem::maximize(self.p.clone());
        for k in 0..self.bandwidths.len() {
            lp.add_le(self.usage[k].clone(), self.bandwidths[k] / self.data_rate)
                .expect("dimensions match");
        }
        if self.cost_budget.is_finite() {
            lp.add_le(self.cost.clone(), self.cost_budget / self.data_rate)
                .expect("dimensions match");
        }
        let ones = vec![1.0; self.table.num_combos()];
        lp.add_eq(ones, 1.0).expect("dimensions match");
        lp
    }

    /// Solves for the quality-optimal strategy.
    ///
    /// # Errors
    ///
    /// Forwards solver failures (with the blackhole enabled the LP is
    /// always feasible).
    pub fn solve_quality(&self, options: &SolverOptions) -> Result<Strategy, SolveError> {
        let sol = self.quality_lp().solve(options)?;
        let x = sol.into_x();
        let quality: f64 = self.p.iter().zip(&x).map(|(p, v)| p * v).sum();
        let send_rates: Vec<f64> = (0..self.bandwidths.len())
            .map(|k| {
                self.data_rate
                    * self.usage[k]
                        .iter()
                        .zip(&x)
                        .map(|(u, v)| u * v)
                        .sum::<f64>()
            })
            .collect();
        let cost_rate = self.data_rate * self.cost.iter().zip(&x).map(|(c, v)| c * v).sum::<f64>();
        Ok(Strategy::new(
            self.table.clone(),
            x,
            self.data_rate,
            quality,
            cost_rate,
            send_rates,
        ))
    }

    /// Expected quality of an arbitrary well-formed assignment.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong length.
    pub fn expected_quality(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.p.len());
        self.p.iter().zip(x).map(|(p, v)| p * v).sum()
    }

    /// The scenario lifetime `δ`.
    pub fn lifetime(&self) -> f64 {
        self.lifetime
    }
}

/// The combination index encoding the paper's `t_{i,j}` lookup: first
/// transmission on path `i`, retransmission on path `j`, remaining
/// stages absorbed (shared by [`RandomDelayModel::timeout`] and
/// [`Plan::timeout`](crate::Plan::timeout)).
pub(crate) fn pairwise_combo_index(table: &ComboTable, i: usize, j: usize) -> Option<usize> {
    let mut slots = vec![Slot::Blackhole; table.transmissions()];
    if !table.has_blackhole() {
        slots = vec![Slot::Path(j); table.transmissions()];
    }
    slots[0] = Slot::Path(i);
    if table.transmissions() >= 2 {
        slots[1] = Slot::Path(j);
    }
    table.index_of(&slots)
}

/// CDF lookup on a discretized distribution (0 below support, 1 above).
fn lookup_cdf(dist: &DiscreteDist, t: f64) -> f64 {
    dist.cdf(t)
}

/// `P(d ≤ in_time_bound  AND  d + d_ack > theta)`: the data copy arrives
/// in time, yet its acknowledgment misses the retransmission timeout —
/// the "spurious retransmission after successful delivery" event used by
/// the duplicate-delivery correction. Computed by conditioning on the
/// discretized data delay.
fn joint_in_time_no_ack(
    delay: &DiscreteDist,
    ack: &dyn Delay,
    in_time_bound: f64,
    theta: f64,
) -> f64 {
    let mut total = 0.0;
    for (k, &mass) in delay.pmf().iter().enumerate() {
        // dmc-lint: allow(float-exact) a PMF bin with exactly zero mass is structurally empty; skipping it is lossless
        if mass == 0.0 {
            continue;
        }
        let d = delay.offset() + k as f64 * delay.step();
        if d > in_time_bound {
            break;
        }
        total += mass * (1.0 - ack.cdf(theta - d));
    }
    total.clamp(0.0, 1.0)
}

/// Eq. 34: returns the timeout `θ ∈ [0, remaining]` maximizing
/// `F_{d_j}(remaining − θ) · F_{d_i + d_min}(θ)`, or `None` when the
/// maximum is zero (no retransmission can meet the deadline).
fn optimize_timeout(
    rtt: &DiscreteDist,
    next_delay: &dyn Delay,
    remaining: f64,
    step: f64,
    plateau: PlateauRule,
) -> Option<f64> {
    if remaining <= 0.0 {
        return None;
    }
    let steps = (remaining / step).floor() as usize;
    let mut best = 0.0f64;
    let mut values = Vec::with_capacity(steps + 1);
    for k in 0..=steps {
        let theta = k as f64 * step;
        let g = next_delay.cdf(remaining - theta) * rtt.cdf(theta);
        values.push(g);
        if g > best {
            best = g;
        }
    }
    if best <= 0.0 {
        return None;
    }
    // Plateau: all grid points within a relative hair of the maximum.
    let threshold = best * (1.0 - 1e-9);
    let first = values.iter().position(|&g| g >= threshold)?;
    let last = values.iter().rposition(|&g| g >= threshold)?;
    let idx = match plateau {
        PlateauRule::First => first,
        PlateauRule::Last => last,
        PlateauRule::Midpoint => (first + last) / 2,
    };
    Some(idx as f64 * step)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmc_stats::{ConstantDelay, ShiftedGamma};

    /// The paper's Table V network (Experiment 2).
    fn table5_network() -> RandomNetworkSpec {
        let p1 = RandomPath::new(
            80e6,
            Arc::new(ShiftedGamma::new(10.0, 0.004, 0.400).unwrap()),
            0.2,
            0.0,
        )
        .unwrap();
        let p2 = RandomPath::new(
            20e6,
            Arc::new(ShiftedGamma::new(5.0, 0.002, 0.100).unwrap()),
            0.0,
            0.0,
        )
        .unwrap();
        RandomNetworkSpec::new(vec![p1, p2], 90e6, 0.750).unwrap()
    }

    #[test]
    fn ack_path_is_lowest_expected_delay() {
        assert_eq!(table5_network().ack_path(), 1);
    }

    #[test]
    fn experiment2_timeouts_near_paper_values() {
        let model = RandomDelayModel::new(&table5_network(), &RandomDelayConfig::default());
        // t(1,2): paper reports 615 ms. The product has a narrow peak; any
        // maximizer lands within a few ms of it.
        let t12 = model.timeout(0, 1).expect("t(1,2) defined");
        assert!(
            (0.585..=0.645).contains(&t12),
            "t(1,2) = {:.0} ms, paper: 615 ms",
            t12 * 1e3
        );
        // t(2,1): paper reports 252 ms.
        let t21 = model.timeout(1, 0).expect("t(2,1) defined");
        assert!(
            (0.230..=0.270).contains(&t21),
            "t(2,1) = {:.0} ms, paper: 252 ms",
            t21 * 1e3
        );
        // t(2,2) sits on a wide plateau (paper picked 323 ms); any point
        // on the plateau is optimal.
        let t22 = model.timeout(1, 1).expect("t(2,2) defined");
        assert!(
            (0.240..=0.600).contains(&t22),
            "t(2,2) = {:.0} ms",
            t22 * 1e3
        );
        // t(1,1): paper: undefined — a path-1 retransmission cannot meet
        // the 750 ms deadline after a path-1 timeout.
        assert_eq!(model.timeout(0, 0), None, "t(1,1) must be undefined");
    }

    #[test]
    fn experiment2_expected_quality_matches_paper() {
        let model = RandomDelayModel::new(&table5_network(), &RandomDelayConfig::default());
        let s = model.solve_quality(&SolverOptions::default()).unwrap();
        // Paper: expected quality 93.3% (93,332 of 100,000 in simulation).
        assert!(
            (s.quality() - 0.9333).abs() < 0.005,
            "Q = {:.4}, paper: 0.9333",
            s.quality()
        );
        assert!(s.is_well_formed(1e-9));
        // Send rates respect bandwidth.
        assert!(s.send_rates()[0] <= 80e6 * (1.0 + 1e-9));
        assert!(s.send_rates()[1] <= 20e6 * (1.0 + 1e-9));
    }

    #[test]
    fn constant_delays_reduce_to_deterministic_model() {
        // With constant delays the random model must reproduce the
        // deterministic coefficients (Eq. 28 → Eq. 12).
        let p1 = RandomPath::new(80e6, Arc::new(ConstantDelay::new(0.450)), 0.2, 0.0).unwrap();
        let p2 = RandomPath::new(20e6, Arc::new(ConstantDelay::new(0.150)), 0.0, 0.0).unwrap();
        let net = RandomNetworkSpec::new(vec![p1, p2], 90e6, 0.8).unwrap();
        let model = RandomDelayModel::new(&net, &RandomDelayConfig::default());
        let s = model.solve_quality(&SolverOptions::default()).unwrap();
        assert!(
            (s.quality() - 42.0 / 45.0).abs() < 1e-6,
            "Q = {}",
            s.quality()
        );
    }

    #[test]
    fn plateau_rules_are_ordered() {
        let net = table5_network();
        let mut cfg = RandomDelayConfig::default();
        cfg.plateau = PlateauRule::First;
        let first = RandomDelayModel::new(&net, &cfg).timeout(1, 1).unwrap();
        cfg.plateau = PlateauRule::Midpoint;
        let mid = RandomDelayModel::new(&net, &cfg).timeout(1, 1).unwrap();
        cfg.plateau = PlateauRule::Last;
        let last = RandomDelayModel::new(&net, &cfg).timeout(1, 1).unwrap();
        assert!(first <= mid && mid <= last, "{first} {mid} {last}");
    }

    #[test]
    fn validation_errors() {
        let good = Arc::new(ConstantDelay::new(0.1));
        assert!(RandomPath::new(0.0, good.clone(), 0.0, 0.0).is_err());
        assert!(RandomPath::new(1e6, good.clone(), 1.5, 0.0).is_err());
        assert!(RandomPath::new(1e6, good.clone(), 0.0, -1.0).is_err());
        let inf = Arc::new(ConstantDelay::new(f64::INFINITY));
        assert!(RandomPath::new(1e6, inf, 0.0, 0.0).is_err());
        let p = RandomPath::new(1e6, good, 0.0, 0.0).unwrap();
        assert!(RandomNetworkSpec::new(vec![], 1e6, 1.0).is_err());
        assert!(RandomNetworkSpec::new(vec![p.clone()], 0.0, 1.0).is_err());
        assert!(RandomNetworkSpec::new(vec![p], 1e6, 0.0).is_err());
    }

    #[test]
    fn cost_budget_row_present() {
        let p1 = RandomPath::new(80e6, Arc::new(ConstantDelay::new(0.450)), 0.2, 1.0).unwrap();
        let p2 = RandomPath::new(20e6, Arc::new(ConstantDelay::new(0.150)), 0.0, 0.0).unwrap();
        let net = RandomNetworkSpec::new(vec![p1, p2], 90e6, 0.8)
            .unwrap()
            .with_cost_budget(1.0)
            .unwrap();
        let model = RandomDelayModel::new(&net, &RandomDelayConfig::default());
        let s = model.solve_quality(&SolverOptions::default()).unwrap();
        // Path 0 unaffordable → only path 1's 20 Mbps of 90 → Q ≈ 2/9.
        assert!(
            (s.quality() - 2.0 / 9.0).abs() < 1e-6,
            "Q = {}",
            s.quality()
        );
    }
}
