//! The [`Plan`]: everything a sender needs, produced in one shot by a
//! [`Planner`](crate::Planner).
//!
//! The historical API made callers assemble a sender by hand: solve a
//! strategy, derive a `TimeoutPlan` from the right network description
//! (a different one per delay regime!), build a scheduler, then wire a
//! `SenderConfig`. A `Plan` bundles all of it — the solved [`Strategy`],
//! a regime-independent [`TimeoutSchedule`], the acknowledgment path and
//! a ready [`Scheduler`] — so every consumer (protocol, experiments,
//! examples) constructs senders the same way.

use crate::combo::{ComboTable, Slot};
use crate::path::PathSpec;
use crate::random_delay::pairwise_combo_index;
use crate::scenario::Scenario;
use crate::scheduler::{SchedulePolicy, Scheduler};
use crate::strategy::Strategy;
use crate::Objective;

/// The timer a sender arms after transmitting one stage of a combination.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageTimeoutSpec {
    /// Seconds between sending the stage and the timer firing. Protocol
    /// layers typically add a jitter margin on top (the paper's 100 ms).
    pub delay: f64,
    /// `true`: advance to the next stage (retransmit). `false`: the timer
    /// only *detects* the loss so estimators see it (terminal stages, and
    /// stages where Eq. 34 proves no retransmission can meet the
    /// deadline).
    pub retransmit: bool,
}

/// Per-stage timeouts for every combination, in seconds — the
/// regime-independent core of the paper's Eq. 4 (deterministic) and
/// Eq. 26/34 (random-delay) timeout rules.
///
/// `dmc-proto`'s `TimeoutPlan::from_plan` converts this to simulator
/// durations, adding the caller's slack.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeoutSchedule {
    per_combo: Vec<Vec<Option<StageTimeoutSpec>>>,
}

impl TimeoutSchedule {
    /// The deterministic rule (Eq. 4): stage `s` on path `i` arms
    /// `t = d_i + d_min`; stages not followed by a real path get a
    /// detect-only timer with the same delay.
    pub(crate) fn deterministic(paths: &[PathSpec], dmin: f64, table: &ComboTable) -> Self {
        let per_combo = table
            .iter()
            .map(|(_, slots)| {
                let mut v = vec![None; slots.len()];
                for s in 0..slots.len() {
                    let Slot::Path(i) = slots[s] else { break };
                    let t = paths[i].delay() + dmin;
                    if t.is_finite() {
                        let retransmit = matches!(slots.get(s + 1), Some(Slot::Path(_)));
                        v[s] = Some(StageTimeoutSpec {
                            delay: t,
                            retransmit,
                        });
                    }
                }
                v
            })
            .collect();
        TimeoutSchedule { per_combo }
    }

    /// The random-delay rule: Eq. 34 optima become retransmitting timers;
    /// stages whose optimum is undefined (no retransmission can meet the
    /// deadline) get a detect-only timer of one lifetime.
    pub(crate) fn from_stage_timeouts(
        stage_timeouts: &[Vec<Option<f64>>],
        table: &ComboTable,
        lifetime: f64,
    ) -> Self {
        let per_combo = (0..table.num_combos())
            .map(|l| {
                let slots = table.slots_of(l);
                stage_timeouts[l]
                    .iter()
                    .enumerate()
                    .map(|(s, t)| match t {
                        Some(secs) => Some(StageTimeoutSpec {
                            delay: *secs,
                            retransmit: true,
                        }),
                        None => matches!(slots.get(s), Some(Slot::Path(_))).then_some(
                            StageTimeoutSpec {
                                delay: lifetime,
                                retransmit: false,
                            },
                        ),
                    })
                    .collect()
            })
            .collect();
        TimeoutSchedule { per_combo }
    }

    /// The timer armed after sending stage `stage` of combination
    /// `combo`; `None` when no timer is armed (unreachable stages).
    pub fn stage(&self, combo: usize, stage: usize) -> Option<StageTimeoutSpec> {
        self.per_combo
            .get(combo)
            .and_then(|v| v.get(stage))
            .copied()
            .flatten()
    }

    /// Number of combinations covered.
    pub fn num_combos(&self) -> usize {
        self.per_combo.len()
    }

    /// All stage timers of one combination.
    ///
    /// # Panics
    ///
    /// Panics if `combo` is out of range.
    pub fn stages(&self, combo: usize) -> &[Option<StageTimeoutSpec>] {
        &self.per_combo[combo]
    }
}

/// A fully solved sending plan: the one artifact the rest of the system
/// consumes.
///
/// Produced by [`Planner::plan`](crate::Planner::plan); see the
/// crate-level quick start for the end-to-end flow.
#[derive(Debug, Clone)]
pub struct Plan {
    pub(crate) scenario: Scenario,
    pub(crate) objective: Objective,
    pub(crate) strategy: Strategy,
    pub(crate) schedule: TimeoutSchedule,
    pub(crate) ack_path: usize,
}

impl Plan {
    /// The scenario this plan was solved for.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The objective this plan optimizes.
    pub fn objective(&self) -> Objective {
        self.objective
    }

    /// The solved assignment with its predicted metrics.
    pub fn strategy(&self) -> &Strategy {
        &self.strategy
    }

    /// Consumes the plan, returning the strategy.
    pub fn into_strategy(self) -> Strategy {
        self.strategy
    }

    /// The per-stage retransmission-timeout schedule.
    pub fn schedule(&self) -> &TimeoutSchedule {
        &self.schedule
    }

    /// The acknowledgment path (Eq. 25 / Eq. 1), 0-based.
    pub fn ack_path(&self) -> usize {
        self.ack_path
    }

    /// Predicted communication quality `Q` (Eq. 6).
    pub fn quality(&self) -> f64 {
        self.strategy.quality()
    }

    /// Predicted cost per second `C` (Eq. 7).
    pub fn cost_rate(&self) -> f64 {
        self.strategy.cost_rate()
    }

    /// Predicted per-path send rates in bits/second (Eq. 2).
    pub fn send_rates(&self) -> &[f64] {
        self.strategy.send_rates()
    }

    /// The paper's pairwise `t_{i,j}` (Eq. 26 / Eq. 4): the timeout armed
    /// after first sending on real path `i` when the retransmission path
    /// is real path `j`; `None` when no retransmission can meet the
    /// deadline.
    pub fn timeout(&self, i: usize, j: usize) -> Option<f64> {
        // Combo-index math shared with the random model; detect-only
        // timers are filtered out (their delay is not the paper's t_{i,j}).
        let l = pairwise_combo_index(self.strategy.table(), i, j)?;
        self.schedule
            .stage(l, 0)
            .and_then(|t| t.retransmit.then_some(t.delay))
    }

    /// An Algorithm-1 (deficit) scheduler targeting this plan's
    /// assignment — the per-packet discretizer a sender drives.
    ///
    /// # Panics
    ///
    /// Never in practice: planner output is a valid distribution (the LP
    /// enforces `Σx = 1`, `x ≥ 0`).
    pub fn scheduler(&self) -> Scheduler {
        self.scheduler_with(SchedulePolicy::Deficit)
    }

    /// A scheduler with an explicit policy (deficit or weighted-random).
    ///
    /// # Panics
    ///
    /// Never in practice; see [`Plan::scheduler`].
    pub fn scheduler_with(&self, policy: SchedulePolicy) -> Scheduler {
        Scheduler::new(self.strategy.x().to_vec(), policy).expect("planner emits a valid x")
    }
}
