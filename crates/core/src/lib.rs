//! Deadline-aware multipath communication: the optimization model of
//! Chuat, Perrig & Hu, *"Deadline-Aware Multipath Communication: An
//! Optimization Problem"* (DSN 2017).
//!
//! Real-time applications (voice, video, gaming, trading) tolerate loss
//! but not lateness: data is useful only if it arrives within its
//! *lifetime* `δ`. Given `n` end-to-end paths with bandwidth `b_i`, delay
//! `d_i`, loss `τ_i` and cost `c_i`, which fraction of the traffic should
//! be sent — and, after a timeout, *re*-sent — along which path? The paper
//! formulates this packet-to-*path-combination* assignment as a linear
//! program whose optimum upper-bounds what any protocol can achieve, and
//! shows a practical sender (Algorithm 1) tracks the bound closely.
//!
//! # The pipeline
//!
//! The front door is one typed pipeline, covering both of the paper's
//! delay regimes (§V deterministic, §VI-B random) and all three solve
//! modes:
//!
//! ```text
//! Scenario  ──(Objective)──▶  Planner  ──▶  Plan
//! ```
//!
//! * [`Scenario`] — paths carry a *delay distribution* (constant delay =
//!   deterministic case) plus cost, cost budget `µ`, rate `λ`, lifetime
//!   `δ` and `m` transmissions, in one validated builder;
//! * [`Objective`] — [`MaxQuality`](Objective::MaxQuality) (Eq. 10),
//!   [`MinCost`](Objective::MinCost) (Eq. 20–23) or
//!   [`MaxQualityUnderBudget`](Objective::MaxQualityUnderBudget);
//! * [`Planner`] — owns a reusable LP workspace and coefficient buffers,
//!   so sweeps and re-solves don't re-allocate;
//! * [`Plan`] — the solved [`Strategy`], a per-stage [`TimeoutSchedule`]
//!   (Eq. 4 / Eq. 34), the ack path, and a ready [`Scheduler`]
//!   (Algorithm 1).
//!
//! # Quick start
//!
//! The paper's Figure 1 scenario — a high-bandwidth/high-delay/lossy path
//! paired with a thin low-latency lossless one:
//!
//! ```
//! use dmc_core::{Objective, Planner, Scenario, ScenarioPath};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let scenario = Scenario::builder()
//!     .path(ScenarioPath::constant(10e6, 0.600, 0.10)?) // 10 Mbps, 600 ms, 10 %
//!     .path(ScenarioPath::constant(1e6, 0.200, 0.0)?)   //  1 Mbps, 200 ms,  0 %
//!     .data_rate(10e6)
//!     .lifetime(1.0)
//!     .build()?;
//!
//! let mut planner = Planner::new();
//! let plan = planner.plan(&scenario, Objective::MaxQuality)?;
//! // Send everything on the fat path, retransmit losses on the thin one:
//! // 100 % of the data makes the deadline — impossible on either path
//! // alone.
//! assert!((plan.quality() - 1.0).abs() < 1e-9);
//!
//! // Discretize per packet with Algorithm 1:
//! let mut scheduler = plan.scheduler();
//! let combo = scheduler.next_combo();
//! let slots = plan.strategy().table().slots_of(combo);
//! assert!(!slots.is_empty());
//! # Ok(())
//! # }
//! ```
//!
//! A random-delay path (§VI-B) drops into the *same* pipeline — give the
//! path a [`ShiftedGamma`](dmc_stats::ShiftedGamma) distribution instead
//! of a constant and the planner optimizes the Eq. 34 retransmission
//! timeouts automatically.
//!
//! # MIGRATION (old split API → unified pipeline)
//!
//! The historical names remain available as thin shims so existing code
//! keeps compiling, but new code should use the pipeline:
//!
//! | Legacy | Unified |
//! |---|---|
//! | `NetworkSpec` + `PathSpec` | [`Scenario`] + [`ScenarioPath::constant`] |
//! | `RandomNetworkSpec` + `RandomPath` | [`Scenario`] + [`ScenarioPath::new`] |
//! | `optimal_strategy(&net, &cfg)` | `planner.plan(&scenario, Objective::MaxQuality)` |
//! | `min_cost_strategy(&net, q, &cfg)` | `planner.plan(&scenario, Objective::MinCost { min_quality: q })` |
//! | `RandomDelayModel::solve_quality` | `planner.plan(&scenario, Objective::MaxQuality)` |
//! | `ModelConfig { transmissions, .. }` | `Scenario::builder().transmissions(m)` + [`PlannerConfig`] |
//! | `RandomDelayModel::timeout(i, j)` | [`Plan::timeout`] |
//! | `ComboScheduler` / `RandomScheduler` | [`Scheduler`] (via [`Plan::scheduler`]) |
//! | hand-built `TimeoutPlan` (dmc-proto) | [`Plan::schedule`] → `TimeoutPlan::from_plan` |
//!
//! `Scenario::from_network` / `Scenario::from_random` convert the legacy
//! spec types in one call.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod combo;
mod network;
mod path;
mod plan;
mod planner;
mod random_delay;
mod scenario;
mod scheduler;
mod solve;
mod strategy;

pub use builder::DeterministicModel;
pub use combo::{ComboTable, Slot};
pub use network::{NetworkSpec, NetworkSpecBuilder};
pub use path::{PathSpec, SpecError};
pub use plan::{Plan, StageTimeoutSpec, TimeoutSchedule};
pub use planner::{Objective, PlanError, Planner, PlannerConfig, ScenarioModel, WarmStats};
pub use random_delay::{
    PlateauRule, RandomDelayConfig, RandomDelayModel, RandomNetworkSpec, RandomPath,
};
pub use scenario::{Scenario, ScenarioBuilder, ScenarioPath};
pub use scheduler::{ComboScheduler, RandomScheduler, SchedulePolicy, Scheduler};
pub use solve::{
    min_cost_strategy, optimal_strategy, single_path_quality, ModelConfig, ModelError,
};
pub use strategy::{approx_fraction, CrossEvaluation, Strategy};

// Re-export the solver option types callers need to tune solving.
pub use dmc_lp::{PivotRule, SolveError, SolverOptions, Workspace};
