//! Deadline-aware multipath communication: the optimization model of
//! Chuat, Perrig & Hu, *"Deadline-Aware Multipath Communication: An
//! Optimization Problem"* (DSN 2017).
//!
//! Real-time applications (voice, video, gaming, trading) tolerate loss
//! but not lateness: data is useful only if it arrives within its
//! *lifetime* `δ`. Given `n` end-to-end paths with bandwidth `b_i`, delay
//! `d_i`, loss `τ_i` and cost `c_i`, which fraction of the traffic should
//! be sent — and, after a timeout, *re*-sent — along which path? The paper
//! formulates this packet-to-*path-combination* assignment as a linear
//! program whose optimum upper-bounds what any protocol can achieve, and
//! shows a practical sender (Algorithm 1) tracks the bound closely.
//!
//! This crate is the model:
//!
//! * [`PathSpec`] / [`NetworkSpec`] — scenario description (paper Table I);
//! * [`ComboTable`] / [`Slot`] — path-combination index algebra (Eq. 13),
//!   generalized from 2 to any number of transmissions `m`;
//! * [`DeterministicModel`] — the LP of Eq. 10–18, plus the
//!   cost-minimization variant of Eq. 20–23;
//! * [`RandomDelayModel`] — the §VI-B extension where delays are random
//!   variables (shifted gamma), including optimal retransmission timeouts
//!   (Eq. 26/34);
//! * [`Strategy`] — a solved assignment with its predicted metrics
//!   (Table II) and cross-evaluation under a *different* true network
//!   (the sensitivity analysis of Fig. 3);
//! * [`ComboScheduler`] — Algorithm 1, the per-packet discretization.
//!
//! # Quick start
//!
//! The paper's Figure 1 scenario — a high-bandwidth/high-delay/lossy path
//! paired with a thin low-latency lossless one:
//!
//! ```
//! use dmc_core::{optimal_strategy, ModelConfig, NetworkSpec, PathSpec};
//!
//! # fn main() -> Result<(), dmc_core::ModelError> {
//! let net = NetworkSpec::builder()
//!     .path(PathSpec::new(10e6, 0.600, 0.10)?) // 10 Mbps, 600 ms, 10 %
//!     .path(PathSpec::new(1e6, 0.200, 0.0)?)   //  1 Mbps, 200 ms,  0 %
//!     .data_rate(10e6)
//!     .lifetime(1.0)
//!     .build()?;
//! let strategy = optimal_strategy(&net, &ModelConfig::default())?;
//! // Send everything on the fat path, retransmit losses on the thin one:
//! // 100 % of the data makes the deadline — impossible on either path
//! // alone.
//! assert!((strategy.quality() - 1.0).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod combo;
mod network;
mod path;
mod random_delay;
mod scheduler;
mod solve;
mod strategy;

pub use builder::DeterministicModel;
pub use combo::{ComboTable, Slot};
pub use network::{NetworkSpec, NetworkSpecBuilder};
pub use path::{PathSpec, SpecError};
pub use random_delay::{
    PlateauRule, RandomDelayConfig, RandomDelayModel, RandomNetworkSpec, RandomPath,
};
pub use scheduler::{ComboScheduler, RandomScheduler};
pub use solve::{
    min_cost_strategy, optimal_strategy, single_path_quality, ModelConfig, ModelError,
};
pub use strategy::{approx_fraction, CrossEvaluation, Strategy};

// Re-export the solver option types callers need to tune solving.
pub use dmc_lp::{PivotRule, SolveError, SolverOptions};
