//! The unified scenario description: one type for both the deterministic
//! model (§V) and the random-delay extension (§VI-B).
//!
//! The paper presents one optimization problem in two delay regimes; the
//! historical API mirrored that split (`NetworkSpec` vs
//! `RandomNetworkSpec`). A [`Scenario`] subsumes both: every path carries
//! a *delay distribution* ([`dmc_stats::Delay`]), and a constant
//! distribution **is** the deterministic case — [`Planner`] detects it
//! and uses the exact closed-form coefficients of Eq. 12 instead of the
//! discretized Eq. 28/34 machinery.
//!
//! [`Planner`]: crate::Planner

use crate::path::{PathSpec, SpecError};
use dmc_stats::{ConstantDelay, Delay};
use std::sync::Arc;

/// One end-to-end path of a [`Scenario`]: bandwidth `b_i`, a one-way
/// delay *distribution* `D_i`, loss `τ_i` and cost `c_i`.
///
/// A path whose delay distribution is constant is a deterministic path
/// (§V); any other distribution puts the scenario in the §VI-B regime.
/// The legacy name [`RandomPath`](crate::RandomPath) is an alias of this
/// type.
#[derive(Debug, Clone)]
pub struct ScenarioPath {
    bandwidth: f64,
    delay: Arc<dyn Delay>,
    loss: f64,
    cost: f64,
}

impl ScenarioPath {
    /// Creates a path with an arbitrary delay distribution.
    ///
    /// # Errors
    ///
    /// Rejects non-positive/non-finite bandwidth, loss outside `[0, 1]`,
    /// negative cost, or a delay distribution with non-finite mean.
    pub fn new(
        bandwidth_bps: f64,
        delay: Arc<dyn Delay>,
        loss: f64,
        cost_per_bit: f64,
    ) -> Result<Self, SpecError> {
        if !delay.mean().is_finite() || delay.mean() < 0.0 {
            return Err(SpecError(
                "delay distribution must have a finite non-negative mean".into(),
            ));
        }
        Self::validated(bandwidth_bps, delay, loss, cost_per_bit)
    }

    /// Creates a deterministic (constant-delay) path with zero cost —
    /// the `PathSpec::new` equivalent.
    ///
    /// Infinite delay is allowed, like [`PathSpec`]: it models a dead
    /// path that can carry no in-time data.
    ///
    /// # Errors
    ///
    /// Same bandwidth/loss validation as [`ScenarioPath::new`].
    pub fn constant(bandwidth_bps: f64, delay_s: f64, loss: f64) -> Result<Self, SpecError> {
        Self::constant_with_cost(bandwidth_bps, delay_s, loss, 0.0)
    }

    /// Creates a deterministic path with an explicit per-bit cost.
    ///
    /// # Errors
    ///
    /// Same as [`ScenarioPath::constant`], plus rejects negative or
    /// non-finite cost.
    pub fn constant_with_cost(
        bandwidth_bps: f64,
        delay_s: f64,
        loss: f64,
        cost_per_bit: f64,
    ) -> Result<Self, SpecError> {
        if !(delay_s >= 0.0) || delay_s.is_nan() {
            return Err(SpecError(format!("delay must be ≥ 0, got {delay_s}")));
        }
        Self::validated(
            bandwidth_bps,
            Arc::new(ConstantDelay::new(delay_s)),
            loss,
            cost_per_bit,
        )
    }

    /// Converts a deterministic [`PathSpec`].
    pub fn from_spec(spec: &PathSpec) -> Self {
        ScenarioPath {
            bandwidth: spec.bandwidth(),
            delay: Arc::new(ConstantDelay::new(spec.delay())),
            loss: spec.loss(),
            cost: spec.cost(),
        }
    }

    fn validated(
        bandwidth_bps: f64,
        delay: Arc<dyn Delay>,
        loss: f64,
        cost_per_bit: f64,
    ) -> Result<Self, SpecError> {
        if !(bandwidth_bps > 0.0) || !bandwidth_bps.is_finite() {
            return Err(SpecError(format!(
                "bandwidth must be finite and > 0, got {bandwidth_bps}"
            )));
        }
        if !(0.0..=1.0).contains(&loss) || loss.is_nan() {
            return Err(SpecError(format!("loss must be in [0, 1], got {loss}")));
        }
        if !(cost_per_bit >= 0.0) || !cost_per_bit.is_finite() {
            return Err(SpecError(format!(
                "cost must be finite and ≥ 0, got {cost_per_bit}"
            )));
        }
        Ok(ScenarioPath {
            bandwidth: bandwidth_bps,
            delay,
            loss,
            cost: cost_per_bit,
        })
    }

    /// Bandwidth `b_i` in bits/second.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// The delay distribution `D_i`.
    pub fn delay(&self) -> &Arc<dyn Delay> {
        &self.delay
    }

    /// Loss probability `τ_i`.
    pub fn loss(&self) -> f64 {
        self.loss
    }

    /// Cost per bit `c_i`.
    pub fn cost(&self) -> f64 {
        self.cost
    }

    /// The constant delay in seconds when this path is deterministic
    /// (its delay distribution has zero spread), else `None`.
    pub fn constant_delay(&self) -> Option<f64> {
        let (lo, hi) = (self.delay.min_delay(), self.delay.max_delay());
        (lo == hi).then_some(lo)
    }

    /// The deterministic [`PathSpec`] equivalent, when this path is
    /// deterministic.
    pub fn as_spec(&self) -> Option<PathSpec> {
        self.constant_delay()
            .and_then(|d| PathSpec::with_cost(self.bandwidth, d, self.loss, self.cost).ok())
    }
}

/// The unified scenario: paths (with delay distributions), application
/// data rate `λ`, lifetime `δ`, cost budget `µ` and the number of
/// transmissions `m` per data unit.
///
/// Subsumes the legacy [`NetworkSpec`](crate::NetworkSpec) (all delays
/// constant) and [`RandomNetworkSpec`](crate::RandomNetworkSpec); feed it
/// to a [`Planner`](crate::Planner) with an
/// [`Objective`](crate::Objective) to obtain a [`Plan`](crate::Plan).
///
/// ```
/// use dmc_core::{Scenario, ScenarioPath};
///
/// # fn main() -> Result<(), dmc_core::SpecError> {
/// // The paper's Figure 1 scenario, now through the unified builder.
/// let scenario = Scenario::builder()
///     .path(ScenarioPath::constant(10e6, 0.600, 0.10)?)
///     .path(ScenarioPath::constant(1e6, 0.200, 0.0)?)
///     .data_rate(10e6)
///     .lifetime(1.0)
///     .build()?;
/// assert!(scenario.is_deterministic());
/// assert_eq!(scenario.transmissions(), 2); // paper default: 1 retransmission
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Scenario {
    paths: Vec<ScenarioPath>,
    data_rate: f64,
    lifetime: f64,
    cost_budget: f64,
    transmissions: usize,
}

impl Scenario {
    /// Starts building a scenario.
    pub fn builder() -> ScenarioBuilder {
        ScenarioBuilder::default()
    }

    /// Converts a deterministic [`NetworkSpec`](crate::NetworkSpec)
    /// (with the paper-default `m = 2` transmissions).
    pub fn from_network(net: &crate::NetworkSpec) -> Self {
        Scenario {
            paths: net.paths().iter().map(ScenarioPath::from_spec).collect(),
            data_rate: net.data_rate(),
            lifetime: net.lifetime(),
            cost_budget: net.cost_budget(),
            transmissions: 2,
        }
    }

    /// Converts a legacy [`RandomNetworkSpec`](crate::RandomNetworkSpec)
    /// (with the paper-default `m = 2` transmissions).
    pub fn from_random(net: &crate::RandomNetworkSpec) -> Self {
        Scenario {
            paths: net.paths().to_vec(),
            data_rate: net.data_rate(),
            lifetime: net.lifetime(),
            cost_budget: net.cost_budget(),
            transmissions: 2,
        }
    }

    /// The paths, 0-based.
    pub fn paths(&self) -> &[ScenarioPath] {
        &self.paths
    }

    /// Number of real paths `n`.
    pub fn num_paths(&self) -> usize {
        self.paths.len()
    }

    /// Application data rate `λ` in bits/second.
    pub fn data_rate(&self) -> f64 {
        self.data_rate
    }

    /// Data lifetime `δ` in seconds.
    pub fn lifetime(&self) -> f64 {
        self.lifetime
    }

    /// Cost budget `µ` per second (∞ when unconstrained).
    pub fn cost_budget(&self) -> f64 {
        self.cost_budget
    }

    /// Number of transmissions `m` per data unit (initial + `m − 1`
    /// retransmissions; the paper's base model is 2).
    pub fn transmissions(&self) -> usize {
        self.transmissions
    }

    /// Whether every path has a constant delay — the §V regime, solved
    /// with exact closed-form coefficients.
    pub fn is_deterministic(&self) -> bool {
        self.paths.iter().all(|p| p.constant_delay().is_some())
    }

    /// The acknowledgment path (Eq. 25): smallest *expected* delay. For
    /// deterministic scenarios this is `d_min`'s path (Eq. 1).
    pub fn ack_path(&self) -> usize {
        crate::random_delay::ack_path_of(&self.paths)
    }

    /// `d_min` for deterministic scenarios: the smallest constant delay.
    /// For random scenarios this is the smallest *expected* delay.
    pub fn min_delay(&self) -> f64 {
        self.paths
            .iter()
            .map(|p| p.constant_delay().unwrap_or_else(|| p.delay().mean()))
            .fold(f64::INFINITY, f64::min)
    }

    /// The deterministic [`NetworkSpec`](crate::NetworkSpec) equivalent,
    /// when every path is constant-delay.
    pub fn to_network_spec(&self) -> Option<crate::NetworkSpec> {
        let mut b = crate::NetworkSpec::builder()
            .data_rate(self.data_rate)
            .lifetime(self.lifetime);
        if self.cost_budget.is_finite() {
            b = b.cost_budget(self.cost_budget);
        }
        for p in &self.paths {
            b = b.path(p.as_spec()?);
        }
        b.build().ok()
    }

    /// Returns a copy with a different data rate `λ` (for sweeps).
    ///
    /// # Panics
    ///
    /// Panics if `data_rate` is not finite and positive.
    #[must_use]
    pub fn with_data_rate(&self, data_rate: f64) -> Self {
        assert!(data_rate > 0.0 && data_rate.is_finite());
        let mut c = self.clone();
        c.data_rate = data_rate;
        c
    }

    /// Returns a copy with a different lifetime `δ` (for sweeps).
    ///
    /// # Panics
    ///
    /// Panics if `lifetime` is not finite and positive.
    #[must_use]
    pub fn with_lifetime(&self, lifetime: f64) -> Self {
        assert!(lifetime > 0.0 && lifetime.is_finite());
        let mut c = self.clone();
        c.lifetime = lifetime;
        c
    }

    /// Returns a copy with a different cost budget `µ` (for
    /// quality/spend frontier sweeps).
    ///
    /// # Panics
    ///
    /// Panics unless `per_second > 0` (∞ = unconstrained is allowed).
    #[must_use]
    pub fn with_cost_budget(&self, per_second: f64) -> Self {
        assert!(per_second > 0.0, "budget must be > 0");
        let mut c = self.clone();
        c.cost_budget = per_second;
        c
    }

    /// Returns a copy with a different transmission count `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    #[must_use]
    pub fn with_transmissions(&self, m: usize) -> Self {
        assert!(m > 0, "need at least one transmission");
        let mut c = self.clone();
        c.transmissions = m;
        c
    }

    /// Returns a copy with one path replaced.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn with_path_replaced(&self, index: usize, path: ScenarioPath) -> Self {
        let mut c = self.clone();
        c.paths[index] = path;
        c
    }

    /// Returns a copy keeping only path `index` — the single-path
    /// baseline of Figure 2.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn restricted_to_path(&self, index: usize) -> Self {
        let mut c = self.clone();
        c.paths = vec![self.paths[index].clone()];
        c
    }
}

impl From<&crate::NetworkSpec> for Scenario {
    fn from(net: &crate::NetworkSpec) -> Self {
        Scenario::from_network(net)
    }
}

impl From<&crate::RandomNetworkSpec> for Scenario {
    fn from(net: &crate::RandomNetworkSpec) -> Self {
        Scenario::from_random(net)
    }
}

/// Builder for [`Scenario`].
#[derive(Debug, Clone, Default)]
pub struct ScenarioBuilder {
    paths: Vec<ScenarioPath>,
    data_rate: Option<f64>,
    lifetime: Option<f64>,
    cost_budget: Option<f64>,
    transmissions: Option<usize>,
}

impl ScenarioBuilder {
    /// Adds one path.
    pub fn path(mut self, path: ScenarioPath) -> Self {
        self.paths.push(path);
        self
    }

    /// Adds several paths.
    pub fn paths<I: IntoIterator<Item = ScenarioPath>>(mut self, paths: I) -> Self {
        self.paths.extend(paths);
        self
    }

    /// Sets the application data rate `λ` (bits/second). Required.
    pub fn data_rate(mut self, bps: f64) -> Self {
        self.data_rate = Some(bps);
        self
    }

    /// Sets the data lifetime `δ` (seconds). Required.
    pub fn lifetime(mut self, seconds: f64) -> Self {
        self.lifetime = Some(seconds);
        self
    }

    /// Sets the cost budget `µ` (cost units per second). Defaults to ∞
    /// (unconstrained), as the paper allows (§V-A).
    pub fn cost_budget(mut self, per_second: f64) -> Self {
        self.cost_budget = Some(per_second);
        self
    }

    /// Sets the number of transmissions `m` per data unit. Defaults to 2
    /// (one transmission + one retransmission, the paper's base model).
    pub fn transmissions(mut self, m: usize) -> Self {
        self.transmissions = Some(m);
        self
    }

    /// Validates and builds the scenario.
    ///
    /// # Errors
    ///
    /// Requires at least one path, a positive finite `λ` and `δ`, a
    /// positive (possibly infinite) `µ`, `m ≥ 1`, and at least one path
    /// whose delay distribution has a finite mean (otherwise no data can
    /// ever arrive).
    pub fn build(self) -> Result<Scenario, SpecError> {
        if self.paths.is_empty() {
            return Err(SpecError("at least one path is required".into()));
        }
        let data_rate = self
            .data_rate
            .ok_or_else(|| SpecError("data_rate (λ) is required".into()))?;
        if !(data_rate > 0.0) || !data_rate.is_finite() {
            return Err(SpecError(format!(
                "data rate must be finite and > 0, got {data_rate}"
            )));
        }
        let lifetime = self
            .lifetime
            .ok_or_else(|| SpecError("lifetime (δ) is required".into()))?;
        if !(lifetime > 0.0) || !lifetime.is_finite() {
            return Err(SpecError(format!(
                "lifetime must be finite and > 0, got {lifetime}"
            )));
        }
        let cost_budget = self.cost_budget.unwrap_or(f64::INFINITY);
        if !(cost_budget > 0.0) {
            return Err(SpecError(format!(
                "cost budget must be > 0, got {cost_budget}"
            )));
        }
        let transmissions = self.transmissions.unwrap_or(2);
        if transmissions == 0 {
            return Err(SpecError("at least one transmission is required".into()));
        }
        if self.paths.iter().all(|p| !p.delay().mean().is_finite()) {
            return Err(SpecError(
                "all paths have infinite delay; no data can arrive".into(),
            ));
        }
        Ok(Scenario {
            paths: self.paths,
            data_rate,
            lifetime,
            cost_budget,
            transmissions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetworkSpec;
    use dmc_stats::ShiftedGamma;

    fn gamma_path() -> ScenarioPath {
        ScenarioPath::new(
            80e6,
            Arc::new(ShiftedGamma::new(10.0, 0.004, 0.400).unwrap()),
            0.2,
            0.0,
        )
        .unwrap()
    }

    #[test]
    fn constant_paths_are_detected_as_deterministic() {
        let s = Scenario::builder()
            .path(ScenarioPath::constant(80e6, 0.450, 0.2).unwrap())
            .path(ScenarioPath::constant_with_cost(20e6, 0.150, 0.0, 1e-9).unwrap())
            .data_rate(90e6)
            .lifetime(0.8)
            .build()
            .unwrap();
        assert!(s.is_deterministic());
        assert_eq!(s.ack_path(), 1);
        assert_eq!(s.min_delay(), 0.150);
        let net = s.to_network_spec().expect("deterministic");
        assert_eq!(net.num_paths(), 2);
        assert_eq!(net.paths()[1].cost(), 1e-9);
    }

    #[test]
    fn gamma_path_makes_scenario_random() {
        let s = Scenario::builder()
            .path(gamma_path())
            .path(ScenarioPath::constant(20e6, 0.150, 0.0).unwrap())
            .data_rate(90e6)
            .lifetime(0.75)
            .build()
            .unwrap();
        assert!(!s.is_deterministic());
        assert!(s.to_network_spec().is_none());
        assert_eq!(s.ack_path(), 1);
        assert!(s.paths()[0].constant_delay().is_none());
        assert_eq!(s.paths()[1].constant_delay(), Some(0.150));
    }

    #[test]
    fn network_spec_round_trip() {
        let net = NetworkSpec::builder()
            .path(crate::PathSpec::new(10e6, 0.6, 0.1).unwrap())
            .path(crate::PathSpec::new(1e6, 0.2, 0.0).unwrap())
            .data_rate(10e6)
            .lifetime(1.0)
            .build()
            .unwrap();
        let s = Scenario::from_network(&net);
        assert!(s.is_deterministic());
        assert_eq!(s.transmissions(), 2);
        let back = s.to_network_spec().unwrap();
        assert_eq!(back.paths(), net.paths());
        assert_eq!(back.data_rate(), net.data_rate());
        assert_eq!(back.lifetime(), net.lifetime());
    }

    #[test]
    fn builder_validation() {
        let p = ScenarioPath::constant(1e6, 0.1, 0.0).unwrap();
        assert!(Scenario::builder()
            .data_rate(1e6)
            .lifetime(1.0)
            .build()
            .is_err());
        assert!(Scenario::builder()
            .path(p.clone())
            .lifetime(1.0)
            .build()
            .is_err());
        assert!(Scenario::builder()
            .path(p.clone())
            .data_rate(1e6)
            .build()
            .is_err());
        assert!(Scenario::builder()
            .path(p.clone())
            .data_rate(1e6)
            .lifetime(1.0)
            .transmissions(0)
            .build()
            .is_err());
        assert!(Scenario::builder()
            .path(p.clone())
            .data_rate(1e6)
            .lifetime(1.0)
            .cost_budget(-1.0)
            .build()
            .is_err());
        let dead = ScenarioPath::constant(1e6, f64::INFINITY, 0.0).unwrap();
        assert!(Scenario::builder()
            .path(dead)
            .data_rate(1e6)
            .lifetime(1.0)
            .build()
            .is_err());
        assert!(
            Scenario::builder()
                .path(p)
                .data_rate(1e6)
                .lifetime(1.0)
                .transmissions(3)
                .build()
                .unwrap()
                .transmissions()
                == 3
        );
    }

    #[test]
    fn path_validation() {
        assert!(ScenarioPath::constant(0.0, 0.1, 0.0).is_err());
        assert!(ScenarioPath::constant(1e6, -0.1, 0.0).is_err());
        assert!(ScenarioPath::constant(1e6, 0.1, 1.5).is_err());
        assert!(ScenarioPath::constant_with_cost(1e6, 0.1, 0.0, -1.0).is_err());
        // Infinite constant delay is allowed (dead path), matching PathSpec.
        assert!(ScenarioPath::constant(1e6, f64::INFINITY, 0.0).is_ok());
        // ...but a non-finite *mean* is rejected for distribution paths.
        let inf = Arc::new(dmc_stats::ConstantDelay::new(f64::INFINITY));
        assert!(ScenarioPath::new(1e6, inf, 0.0, 0.0).is_err());
    }

    #[test]
    fn sweep_helpers() {
        let s = Scenario::builder()
            .path(ScenarioPath::constant(1e6, 0.1, 0.0).unwrap())
            .data_rate(1e6)
            .lifetime(1.0)
            .build()
            .unwrap();
        assert_eq!(s.with_data_rate(2e6).data_rate(), 2e6);
        assert_eq!(s.with_lifetime(0.5).lifetime(), 0.5);
        assert_eq!(s.with_transmissions(4).transmissions(), 4);
        assert_eq!(s.restricted_to_path(0).num_paths(), 1);
        let swapped = s.with_path_replaced(0, ScenarioPath::constant(5e6, 0.2, 0.1).unwrap());
        assert_eq!(swapped.paths()[0].bandwidth(), 5e6);
    }
}
