//! The solved sending strategy and its metrics (paper Table II).

use crate::builder::{combo_coeffs, TIME_EPS};
use crate::combo::{ComboTable, Slot};
use crate::network::NetworkSpec;
use std::fmt;

/// A packet-to-path-combination assignment: the paper's `x` matrix
/// (vectorized as `x'`), together with the metrics of Table II predicted
/// under the network the strategy was solved for.
#[derive(Debug, Clone, PartialEq)]
pub struct Strategy {
    table: ComboTable,
    x: Vec<f64>,
    data_rate: f64,
    quality: f64,
    cost_rate: f64,
    send_rates: Vec<f64>,
}

impl Strategy {
    pub(crate) fn new(
        table: ComboTable,
        x: Vec<f64>,
        data_rate: f64,
        quality: f64,
        cost_rate: f64,
        send_rates: Vec<f64>,
    ) -> Self {
        Strategy {
            table,
            x,
            data_rate,
            quality,
            cost_rate,
            send_rates,
        }
    }

    /// The combination table this strategy indexes into.
    pub fn table(&self) -> &ComboTable {
        &self.table
    }

    /// The assignment vector `x'` (sums to 1).
    pub fn x(&self) -> &[f64] {
        &self.x
    }

    /// Fraction of traffic assigned to the given stage sequence, or 0 if
    /// the sequence is not valid for this table.
    pub fn fraction(&self, slots: &[Slot]) -> f64 {
        self.table.index_of(slots).map_or(0.0, |l| self.x[l])
    }

    /// Predicted communication quality `Q = G/λ` (Eq. 6).
    pub fn quality(&self) -> f64 {
        self.quality
    }

    /// Predicted goodput `G` in bits/second (Eq. 5).
    pub fn goodput(&self) -> f64 {
        self.quality * self.data_rate
    }

    /// The application data rate `λ` this strategy was solved for.
    pub fn data_rate(&self) -> f64 {
        self.data_rate
    }

    /// Predicted total cost per second `C` (Eq. 7).
    pub fn cost_rate(&self) -> f64 {
        self.cost_rate
    }

    /// Predicted per-path send rates `S_i` in bits/second (Eq. 2),
    /// indexed like [`NetworkSpec::paths`].
    pub fn send_rates(&self) -> &[f64] {
        &self.send_rates
    }

    /// Non-zero assignments, largest first: `(label, slots, fraction)`.
    pub fn nonzero(&self) -> Vec<(String, Vec<Slot>, f64)> {
        let mut out: Vec<(String, Vec<Slot>, f64)> = self
            .x
            .iter()
            .enumerate()
            .filter(|(_, &v)| v > 1e-12)
            .map(|(l, &v)| (self.table.label(l), self.table.slots_of(l), v))
            .collect();
        out.sort_by(|a, b| b.2.partial_cmp(&a.2).expect("finite fractions"));
        out
    }

    /// Evaluates *this* assignment under a possibly different true network
    /// (the sensitivity analysis of Fig. 3: solve with estimated
    /// characteristics, deploy on the real ones).
    ///
    /// Overloaded paths (`S_k > b_k`) behave like the paper observes in
    /// §VII-Exp. 3: the surplus overflows queues and is lost, which we
    /// model as extra proportional loss `1 − b_k/S_k`, iterated to a fixed
    /// point because induced loss changes retransmission volume. Queueing
    /// *delay* growth is not modelled here — the discrete-event simulator
    /// is the ground truth for that.
    ///
    /// # Panics
    ///
    /// Panics if `true_net` has a different path count than the strategy's
    /// table.
    pub fn evaluate_under(&self, true_net: &NetworkSpec) -> CrossEvaluation {
        assert_eq!(
            true_net.num_paths(),
            self.table.num_paths(),
            "path-count mismatch"
        );
        let lambda = true_net.data_rate();
        let n = true_net.num_paths();
        let dmin = true_net.min_delay();
        // Fixed point on overload-induced loss.
        let mut eff_paths: Vec<crate::PathSpec> = true_net.paths().to_vec();
        let mut quality = 0.0;
        let mut send_rates = vec![0.0; n];
        let mut cost_rate = 0.0;
        for _round in 0..12 {
            quality = 0.0;
            send_rates = vec![0.0; n];
            cost_rate = 0.0;
            for (l, slots) in self.table.iter() {
                let xl = self.x[l];
                if xl <= 0.0 {
                    continue;
                }
                let c = combo_coeffs(&eff_paths, dmin, true_net.lifetime(), &slots);
                quality += xl * c.p;
                for (rate, &u) in send_rates.iter_mut().zip(&c.usage) {
                    *rate += lambda * xl * u;
                }
                cost_rate += lambda * xl * c.cost;
            }
            // Update effective loss from overload.
            let mut changed = false;
            for k in 0..n {
                let truth = true_net.paths()[k];
                let through = if send_rates[k] > truth.bandwidth() {
                    truth.bandwidth() / send_rates[k]
                } else {
                    1.0
                };
                let eff_loss = (1.0 - (1.0 - truth.loss()) * through).clamp(0.0, 1.0);
                if (eff_loss - eff_paths[k].loss()).abs() > 1e-12 {
                    eff_paths[k] = truth.offset_loss(eff_loss - truth.loss());
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        CrossEvaluation {
            quality,
            send_rates,
            cost_rate,
        }
    }

    /// Checks the paper's invariants on the assignment itself:
    /// `x ≥ 0` and `Σx = 1` (Eq. 8–9).
    pub fn is_well_formed(&self, tol: f64) -> bool {
        let total: f64 = self.x.iter().sum();
        (total - 1.0).abs() <= tol && self.x.iter().all(|&v| v >= -tol)
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "strategy: Q = {:.4} ({:.2} Mbps goodput), cost {:.4}/s",
            self.quality,
            self.goodput() / 1e6,
            self.cost_rate
        )?;
        for (label, _, v) in self.nonzero() {
            let (num, den) = approx_fraction(v, 10_000);
            writeln!(f, "  {label} = {v:.6} (≈ {num}/{den})")?;
        }
        Ok(())
    }
}

/// Result of [`Strategy::evaluate_under`].
#[derive(Debug, Clone, PartialEq)]
pub struct CrossEvaluation {
    /// Communication quality achieved under the true network.
    pub quality: f64,
    /// Offered per-path send rates (bits/s) — may exceed true bandwidth.
    pub send_rates: Vec<f64>,
    /// Cost per second under the true network.
    pub cost_rate: f64,
}

/// Best rational approximation `num/den` of `v ∈ [0, 1]` with
/// `den ≤ max_denom`, via the Stern–Brocot tree. Used to print Table-IV
/// style fractions like `5/8`.
pub fn approx_fraction(v: f64, max_denom: u64) -> (u64, u64) {
    if !(0.0..=1.0).contains(&v) || !v.is_finite() {
        return (0, 1);
    }
    let (mut lo, mut hi) = ((0u64, 1u64), (1u64, 1u64));
    let mut best = if v < 0.5 { (0, 1) } else { (1, 1) };
    let mut best_err = (v - best.0 as f64 / best.1 as f64).abs();
    loop {
        let med = (lo.0 + hi.0, lo.1 + hi.1);
        if med.1 > max_denom {
            break;
        }
        let mv = med.0 as f64 / med.1 as f64;
        let err = (v - mv).abs();
        if err < best_err {
            best = med;
            best_err = err;
        }
        if err <= TIME_EPS {
            break;
        }
        if v < mv {
            hi = med;
        } else {
            lo = med;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DeterministicModel;
    use crate::path::PathSpec;
    use dmc_lp::SolverOptions;

    fn net(lambda: f64, delta: f64) -> NetworkSpec {
        NetworkSpec::builder()
            .path(PathSpec::new(80e6, 0.450, 0.2).unwrap())
            .path(PathSpec::new(20e6, 0.150, 0.0).unwrap())
            .data_rate(lambda)
            .lifetime(delta)
            .build()
            .unwrap()
    }

    fn solve(lambda: f64, delta: f64) -> Strategy {
        DeterministicModel::new(&net(lambda, delta), 2, true)
            .solve_quality(&SolverOptions::default())
            .unwrap()
    }

    #[test]
    fn well_formed_and_metrics_consistent() {
        let s = solve(90e6, 0.8);
        assert!(s.is_well_formed(1e-9));
        assert!((s.goodput() - s.quality() * 90e6).abs() < 1.0);
        // Send rates respect bandwidths (Eq. 3).
        assert!(s.send_rates()[0] <= 80e6 + 1.0);
        assert!(s.send_rates()[1] <= 20e6 + 1.0);
    }

    #[test]
    fn table4_lambda90_solution_structure() {
        // Paper Table IV bottom, δ = 750–1000 band, reports x0,0 = 1/15,
        // x1,2 = 8/9, x2,2 = 2/45 with Q = 42/45. That optimum is
        // *degenerate*: every split with x1,2 + x1,0 = 8/9 and the path-2
        // slack filled accordingly achieves the same Q (the paper lists
        // one vertex). The invariants shared by the whole optimal family —
        // Q, full utilization S1 = 80 / S2 = 20 Mbps, well-formedness —
        // are what we assert.
        let s = solve(90e6, 0.8);
        assert!((s.quality() - 42.0 / 45.0).abs() < 1e-9);
        assert!(s.is_well_formed(1e-9));
        assert!(
            (s.send_rates()[0] - 80e6).abs() < 1.0,
            "S1 = {}",
            s.send_rates()[0]
        );
        assert!(
            (s.send_rates()[1] - 20e6).abs() < 1.0,
            "S2 = {}",
            s.send_rates()[1]
        );
        // Both real paths carry initial transmissions: diversity is used.
        let path0_initial: f64 = (0..s.table().num_combos())
            .filter(|&l| matches!(s.table().slots_of(l)[0], Slot::Path(0)))
            .map(|l| s.x()[l])
            .sum();
        assert!(
            (path0_initial - 8.0 / 9.0).abs() < 1e-9,
            "path-0 share {path0_initial}"
        );
    }

    #[test]
    fn fraction_lookup_and_nonzero_agree() {
        let s = solve(40e6, 0.8);
        let total_nonzero: f64 = s.nonzero().iter().map(|(_, _, v)| v).sum();
        assert!((total_nonzero - 1.0).abs() < 1e-9);
        for (label, slots, v) in s.nonzero() {
            assert!((s.fraction(&slots) - v).abs() < 1e-15, "{label}");
        }
    }

    #[test]
    fn evaluate_under_same_network_matches_prediction() {
        let s = solve(90e6, 0.8);
        let eval = s.evaluate_under(&net(90e6, 0.8));
        assert!((eval.quality - s.quality()).abs() < 1e-9);
        for (a, b) in eval.send_rates.iter().zip(s.send_rates()) {
            assert!((a - b).abs() < 1.0);
        }
    }

    #[test]
    fn evaluate_under_overload_degrades_quality() {
        // Strategy solved believing path 0 has 2× its true bandwidth: the
        // true network drops the overflow, so quality drops below the
        // prediction but stays above the single-path floor.
        let believed =
            net(90e6, 0.8).with_path_replaced(0, PathSpec::new(160e6, 0.450, 0.2).unwrap());
        let s = DeterministicModel::new(&believed, 2, true)
            .solve_quality(&SolverOptions::default())
            .unwrap();
        let eval = s.evaluate_under(&net(90e6, 0.8));
        assert!(eval.quality < s.quality() - 0.01);
        assert!(eval.quality > 0.2);
    }

    #[test]
    fn evaluate_under_underestimate_wastes_capacity() {
        // Believing path 0 has half its true bandwidth forces drops via the
        // blackhole: quality below the oracle's 42/45 but the prediction
        // itself is honest (evaluation equals prediction).
        let believed =
            net(90e6, 0.8).with_path_replaced(0, PathSpec::new(40e6, 0.450, 0.2).unwrap());
        let s = DeterministicModel::new(&believed, 2, true)
            .solve_quality(&SolverOptions::default())
            .unwrap();
        let eval = s.evaluate_under(&net(90e6, 0.8));
        assert!(eval.quality < 42.0 / 45.0 - 0.05);
        assert!((eval.quality - s.quality()).abs() < 1e-6);
    }

    #[test]
    fn approx_fraction_reproduces_table_entries() {
        assert_eq!(approx_fraction(0.625, 100), (5, 8));
        assert_eq!(approx_fraction(8.0 / 9.0, 100), (8, 9));
        assert_eq!(approx_fraction(2.0 / 45.0, 100), (2, 45));
        assert_eq!(approx_fraction(1.0, 100), (1, 1));
        assert_eq!(approx_fraction(0.0, 100), (0, 1));
        assert_eq!(approx_fraction(f64::NAN, 100), (0, 1));
    }

    #[test]
    fn display_lists_nonzero_combos() {
        let s = solve(90e6, 0.8);
        let text = format!("{s}");
        assert!(text.contains("x1,2"), "{text}");
        assert!(text.contains("Q = 0.93"), "{text}");
    }
}
