//! Path characteristics (paper Table I: `b_i`, `d_i`, `τ_i`, `c_i`).

use std::fmt;

/// End-to-end characteristics of one network path.
///
/// Units: bandwidth in **bits/second**, delay in **seconds** (one-way),
/// loss as a probability in `[0, 1]`, cost in abstract **units per bit**
/// (money, energy, … — paper §IV).
///
/// ```
/// use dmc_core::PathSpec;
///
/// // Path 1 of the paper's Figure 1: 10 Mbps, 600 ms, 10 % loss.
/// let p = PathSpec::new(10e6, 0.600, 0.10).unwrap();
/// assert_eq!(p.bandwidth(), 10e6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathSpec {
    bandwidth: f64,
    delay: f64,
    loss: f64,
    cost: f64,
}

/// Error produced when a [`PathSpec`] or a
/// [`NetworkSpec`](crate::NetworkSpec) is out of range.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecError(pub(crate) String);

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid specification: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

impl PathSpec {
    /// Creates a path with zero cost.
    ///
    /// # Errors
    ///
    /// Rejects non-positive/non-finite bandwidth, negative or NaN delay,
    /// or loss outside `[0, 1]`.
    pub fn new(bandwidth_bps: f64, delay_s: f64, loss: f64) -> Result<Self, SpecError> {
        Self::with_cost(bandwidth_bps, delay_s, loss, 0.0)
    }

    /// Creates a path with an explicit per-bit cost `c_i`.
    ///
    /// # Errors
    ///
    /// Same as [`PathSpec::new`], plus rejects negative or non-finite cost.
    pub fn with_cost(
        bandwidth_bps: f64,
        delay_s: f64,
        loss: f64,
        cost_per_bit: f64,
    ) -> Result<Self, SpecError> {
        if !(bandwidth_bps > 0.0) || !bandwidth_bps.is_finite() {
            return Err(SpecError(format!(
                "bandwidth must be finite and > 0, got {bandwidth_bps}"
            )));
        }
        if !(delay_s >= 0.0) || delay_s.is_nan() {
            return Err(SpecError(format!("delay must be ≥ 0, got {delay_s}")));
        }
        if !(0.0..=1.0).contains(&loss) || loss.is_nan() {
            return Err(SpecError(format!("loss must be in [0, 1], got {loss}")));
        }
        if !(cost_per_bit >= 0.0) || !cost_per_bit.is_finite() {
            return Err(SpecError(format!(
                "cost must be finite and ≥ 0, got {cost_per_bit}"
            )));
        }
        Ok(PathSpec {
            bandwidth: bandwidth_bps,
            delay: delay_s,
            loss,
            cost: cost_per_bit,
        })
    }

    /// Bandwidth `b_i` in bits/second.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// One-way delay `d_i` in seconds.
    pub fn delay(&self) -> f64 {
        self.delay
    }

    /// Bit-erasure probability `τ_i`.
    pub fn loss(&self) -> f64 {
        self.loss
    }

    /// Cost `c_i` per bit.
    pub fn cost(&self) -> f64 {
        self.cost
    }

    /// Returns a copy with the bandwidth replaced (used by the sensitivity
    /// experiment to inject estimation errors).
    #[must_use]
    pub fn scaled_bandwidth(&self, factor: f64) -> Self {
        let mut p = *self;
        p.bandwidth = (self.bandwidth * factor).max(f64::MIN_POSITIVE);
        p
    }

    /// Returns a copy with the delay scaled by `factor`.
    #[must_use]
    pub fn scaled_delay(&self, factor: f64) -> Self {
        let mut p = *self;
        p.delay = (self.delay * factor).max(0.0);
        p
    }

    /// Returns a copy with `error` added to the loss rate, clamped to
    /// `[0, 1]`.
    #[must_use]
    pub fn offset_loss(&self, error: f64) -> Self {
        let mut p = *self;
        p.loss = (self.loss + error).clamp(0.0, 1.0);
        p
    }
}

impl fmt::Display for PathSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.1} Mbps / {:.0} ms / {:.1}% loss",
            self.bandwidth / 1e6,
            self.delay * 1e3,
            self.loss * 100.0
        )?;
        if self.cost > 0.0 {
            write!(f, " / cost {:.3e}/bit", self.cost)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_path() {
        let p = PathSpec::with_cost(80e6, 0.45, 0.2, 1e-9).unwrap();
        assert_eq!(p.bandwidth(), 80e6);
        assert_eq!(p.delay(), 0.45);
        assert_eq!(p.loss(), 0.2);
        assert_eq!(p.cost(), 1e-9);
    }

    #[test]
    fn invalid_paths_rejected() {
        assert!(PathSpec::new(0.0, 0.1, 0.0).is_err());
        assert!(PathSpec::new(-1.0, 0.1, 0.0).is_err());
        assert!(PathSpec::new(f64::INFINITY, 0.1, 0.0).is_err());
        assert!(PathSpec::new(1e6, -0.1, 0.0).is_err());
        assert!(PathSpec::new(1e6, f64::NAN, 0.0).is_err());
        assert!(PathSpec::new(1e6, 0.1, 1.5).is_err());
        assert!(PathSpec::new(1e6, 0.1, -0.1).is_err());
        assert!(PathSpec::with_cost(1e6, 0.1, 0.1, -2.0).is_err());
    }

    #[test]
    fn infinite_delay_is_allowed() {
        // Needed to express degenerate/dead paths; the blackhole uses it.
        let p = PathSpec::new(1e6, f64::INFINITY, 0.0).unwrap();
        assert_eq!(p.delay(), f64::INFINITY);
    }

    #[test]
    fn perturbation_helpers() {
        let p = PathSpec::new(10e6, 0.1, 0.5).unwrap();
        assert_eq!(p.scaled_bandwidth(0.5).bandwidth(), 5e6);
        assert_eq!(p.scaled_delay(2.0).delay(), 0.2);
        assert_eq!(p.offset_loss(0.7).loss(), 1.0);
        assert_eq!(p.offset_loss(-0.7).loss(), 0.0);
    }

    #[test]
    fn display_is_nonempty() {
        let p = PathSpec::with_cost(20e6, 0.1, 0.0, 1e-9).unwrap();
        assert!(!format!("{p}").is_empty());
        assert!(!format!("{p:?}").is_empty());
    }
}
