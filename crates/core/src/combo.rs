//! Path-combination index algebra (paper Eq. 13, generalized).
//!
//! A *path combination* is the ordered sequence of paths a piece of data
//! is sent along: the initial transmission followed by the (potential)
//! retransmissions. With `m` transmissions over `s` slots (real paths
//! plus, optionally, the blackhole), there are `s^m` combinations.
//!
//! Combinations are numbered like the paper's vectorization: index `l`
//! encodes the stage-`k` slot as the `k`-th base-`s` digit,
//! **least-significant digit = first transmission** (Eq. 13:
//! `i = l mod n`, `j = ⌊l/n⌋`).

/// One transmission slot: the blackhole (drop) or a real path.
///
/// Real paths are identified by their 0-based index into
/// [`NetworkSpec::paths`](crate::NetworkSpec::paths).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Slot {
    /// The virtual "blackhole" path of Eq. 19: sending here discards the
    /// data (`τ = 1`, `d = ∞`, `c = 0`, unconstrained bandwidth — see
    /// DESIGN.md deviation 1).
    Blackhole,
    /// A real path, 0-based.
    Path(usize),
}

impl Slot {
    /// The paper's display index: 0 for the blackhole, `i + 1` for real
    /// path `i` (Table IV's `x0,0`, `x1,2`, … notation).
    pub fn display_index(&self) -> usize {
        match self {
            Slot::Blackhole => 0,
            Slot::Path(i) => i + 1,
        }
    }
}

/// The combination table for a scenario: bijection between combination
/// indices `0..num_combos()` and stage sequences `[Slot; m]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComboTable {
    /// Number of real paths.
    n_paths: usize,
    /// Whether slot digit 0 is the blackhole.
    blackhole: bool,
    /// Number of transmissions per combination (`m ≥ 1`;
    /// `m − 1` retransmissions).
    transmissions: usize,
}

impl ComboTable {
    /// Creates the table for `n_paths` real paths and `transmissions`
    /// stages, optionally including the blackhole slot.
    ///
    /// # Panics
    ///
    /// Panics if `n_paths == 0` or `transmissions == 0`.
    pub fn new(n_paths: usize, transmissions: usize, blackhole: bool) -> Self {
        assert!(n_paths > 0, "need at least one path");
        assert!(transmissions > 0, "need at least one transmission");
        ComboTable {
            n_paths,
            blackhole,
            transmissions,
        }
    }

    /// Number of slot values per stage (`n` or `n + 1`).
    pub fn num_slots(&self) -> usize {
        self.n_paths + usize::from(self.blackhole)
    }

    /// Number of real paths.
    pub fn num_paths(&self) -> usize {
        self.n_paths
    }

    /// Number of transmissions `m`.
    pub fn transmissions(&self) -> usize {
        self.transmissions
    }

    /// Whether the blackhole slot exists.
    pub fn has_blackhole(&self) -> bool {
        self.blackhole
    }

    /// Total number of combinations (`num_slots ^ m`), i.e. the LP's
    /// variable count.
    pub fn num_combos(&self) -> usize {
        self.num_slots().pow(self.transmissions as u32)
    }

    fn digit_to_slot(&self, digit: usize) -> Slot {
        if self.blackhole {
            if digit == 0 {
                Slot::Blackhole
            } else {
                Slot::Path(digit - 1)
            }
        } else {
            Slot::Path(digit)
        }
    }

    fn slot_to_digit(&self, slot: Slot) -> Option<usize> {
        match (slot, self.blackhole) {
            (Slot::Blackhole, true) => Some(0),
            (Slot::Blackhole, false) => None,
            (Slot::Path(i), bh) => {
                if i < self.n_paths {
                    Some(i + usize::from(bh))
                } else {
                    None
                }
            }
        }
    }

    /// Decodes combination index `l` into its stage sequence
    /// (`result[0]` = first transmission).
    ///
    /// # Panics
    ///
    /// Panics if `l ≥ num_combos()`.
    pub fn slots_of(&self, l: usize) -> Vec<Slot> {
        assert!(l < self.num_combos(), "combo index {l} out of range");
        let base = self.num_slots();
        let mut rest = l;
        (0..self.transmissions)
            .map(|_| {
                let digit = rest % base;
                rest /= base;
                self.digit_to_slot(digit)
            })
            .collect()
    }

    /// Encodes a stage sequence into its combination index.
    ///
    /// Returns `None` if the sequence length differs from
    /// `transmissions()` or a slot does not exist in this table.
    pub fn index_of(&self, slots: &[Slot]) -> Option<usize> {
        if slots.len() != self.transmissions {
            return None;
        }
        let base = self.num_slots();
        let mut l = 0;
        for (stage, &slot) in slots.iter().enumerate().rev() {
            let digit = self.slot_to_digit(slot)?;
            l = l * base + digit;
            let _ = stage;
        }
        Some(l)
    }

    /// Iterates over all `(index, slots)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, Vec<Slot>)> + '_ {
        (0..self.num_combos()).map(move |l| (l, self.slots_of(l)))
    }

    /// Formats a combination the way the paper writes Table IV columns:
    /// `x1,2` for "path 1 then path 2".
    pub fn label(&self, l: usize) -> String {
        let parts: Vec<String> = self
            .slots_of(l)
            .iter()
            .map(|s| s.display_index().to_string())
            .collect();
        format!("x{}", parts.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq13_two_paths_with_blackhole() {
        // n=2 real + blackhole → 3 slots, m=2 → 9 combos.
        let t = ComboTable::new(2, 2, true);
        assert_eq!(t.num_combos(), 9);
        // l = i + n·j with i the first transmission (Eq. 13).
        // l = 5 → i = 5 mod 3 = 2 (path index 1), j = 1 (path index 0).
        assert_eq!(t.slots_of(5), vec![Slot::Path(1), Slot::Path(0)]);
        assert_eq!(t.index_of(&[Slot::Path(1), Slot::Path(0)]), Some(5));
        // l = 0 → blackhole twice (the paper's x0,0).
        assert_eq!(t.slots_of(0), vec![Slot::Blackhole, Slot::Blackhole]);
        assert_eq!(t.label(0), "x0,0");
        // Paper's x1,2: path 1 (display) then path 2 (display)
        // = Slot::Path(0) then Slot::Path(1) → l = 1 + 3·2 = 7.
        assert_eq!(t.index_of(&[Slot::Path(0), Slot::Path(1)]), Some(7));
        assert_eq!(t.label(7), "x1,2");
    }

    #[test]
    fn round_trip_all_indices() {
        for (n, m, bh) in [(1, 1, true), (2, 2, true), (3, 3, false), (4, 2, true)] {
            let t = ComboTable::new(n, m, bh);
            for l in 0..t.num_combos() {
                let slots = t.slots_of(l);
                assert_eq!(slots.len(), m);
                assert_eq!(t.index_of(&slots), Some(l), "n={n} m={m} l={l}");
            }
        }
    }

    #[test]
    fn without_blackhole_digit_zero_is_path_zero() {
        let t = ComboTable::new(2, 2, false);
        assert_eq!(t.num_combos(), 4);
        assert_eq!(t.slots_of(0), vec![Slot::Path(0), Slot::Path(0)]);
        assert_eq!(t.index_of(&[Slot::Blackhole, Slot::Path(0)]), None);
    }

    #[test]
    fn index_of_rejects_bad_input() {
        let t = ComboTable::new(2, 2, true);
        assert_eq!(t.index_of(&[Slot::Path(0)]), None); // wrong length
        assert_eq!(t.index_of(&[Slot::Path(5), Slot::Path(0)]), None); // bad path
    }

    #[test]
    fn display_indices() {
        assert_eq!(Slot::Blackhole.display_index(), 0);
        assert_eq!(Slot::Path(0).display_index(), 1);
        assert_eq!(Slot::Path(6).display_index(), 7);
    }

    #[test]
    fn combo_count_growth() {
        // Fig. 4's x-axis: for n paths + blackhole and m transmissions the
        // variable count is (n+1)^m.
        assert_eq!(ComboTable::new(10, 2, true).num_combos(), 121);
        assert_eq!(ComboTable::new(10, 3, true).num_combos(), 1331);
    }

    #[test]
    fn iter_visits_everything_once() {
        let t = ComboTable::new(3, 2, true);
        let seen: Vec<usize> = t.iter().map(|(l, _)| l).collect();
        assert_eq!(seen.len(), 16);
        assert_eq!(seen, (0..16).collect::<Vec<_>>());
    }
}
