//! The unified front door: [`Scenario`] + [`Objective`] → [`Planner`] →
//! [`Plan`].
//!
//! One `Planner` replaces the historical split between
//! `optimal_strategy`/`min_cost_strategy` (deterministic, §V/§VI-A) and
//! `RandomDelayModel::solve_quality` (random delays, §VI-B): it inspects
//! the scenario's delay distributions and routes constant delays through
//! the exact Eq. 12 coefficients, anything else through the discretized
//! Eq. 28/34 machinery — same optimum either way, one API.
//!
//! The planner **owns its scratch memory**: the LP workspace
//! ([`dmc_lp::Workspace`]) and the model coefficient buffers are reused
//! across [`Planner::plan`] calls, so parameter sweeps (λ/δ curves, the
//! experiments crate) and periodic re-solves (`AdaptiveSender`) stop
//! paying a fresh allocation per solve — see the `planner_reuse`
//! benchmark.
//!
//! It also **warm-starts the LP**: the optimal basis of every solve is
//! cached per problem shape and fed to
//! [`dmc_lp::Problem::solve_warm_with`] on the next same-shaped solve, so
//! a sweep or re-solve that only moves objective/RHS coefficients re-enters
//! phase 2 directly instead of re-deriving feasibility from scratch (see
//! the `lp_backends` benchmark and `BENCH_lp.json`). A shape change or a
//! basis made infeasible by the new coefficients falls back to a cold
//! solve automatically; results are bit-identical either way.

use crate::builder::fill_deterministic_coeffs;
use crate::combo::ComboTable;
use crate::path::{PathSpec, SpecError};
use crate::plan::{Plan, TimeoutSchedule};
use crate::random_delay::{fill_random_coeffs, PlateauRule};
use crate::scenario::{Scenario, ScenarioPath};
use crate::strategy::Strategy;
use dmc_lp::{Basis, ConstraintKind, Problem, Solution, SolveError, SolverOptions, Workspace};
use std::collections::HashMap;
use std::fmt;

/// What the LP optimizes (the paper's three solve modes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Objective {
    /// Maximize communication quality (Eq. 10). A finite scenario budget
    /// `µ` is honored as the Eq. 7 cost row.
    MaxQuality,
    /// Minimize spend subject to a quality floor (§VI-A, Eq. 20–23).
    MinCost {
        /// Required quality `Q ≥ min_quality` (fraction in `[0, 1]`).
        min_quality: f64,
    },
    /// Maximize quality, *requiring* the scenario to carry a finite cost
    /// budget — use this when the budget is the point, so a forgotten
    /// `cost_budget` is an error instead of a silently unconstrained
    /// solve.
    MaxQualityUnderBudget,
}

/// Errors from the planning pipeline.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PlanError {
    /// The scenario itself is invalid.
    Spec(SpecError),
    /// The LP could not be solved (e.g. an unreachable quality floor, or
    /// infeasibility with the blackhole disabled).
    Solve(SolveError),
    /// The objective does not fit the scenario (e.g.
    /// [`Objective::MaxQualityUnderBudget`] without a finite budget).
    Unsupported(String),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Spec(e) => write!(f, "{e}"),
            PlanError::Solve(e) => write!(f, "{e}"),
            PlanError::Unsupported(msg) => write!(f, "unsupported objective: {msg}"),
        }
    }
}

impl std::error::Error for PlanError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PlanError::Spec(e) => Some(e),
            PlanError::Solve(e) => Some(e),
            PlanError::Unsupported(_) => None,
        }
    }
}

impl From<SpecError> for PlanError {
    fn from(e: SpecError) -> Self {
        PlanError::Spec(e)
    }
}

impl From<SolveError> for PlanError {
    fn from(e: SolveError) -> Self {
        PlanError::Solve(e)
    }
}

/// Warm-start cache counters of a [`Planner`] (or a
/// `dmc_fleet::FleetPlanner`, which keeps the same kind of cache over its
/// joint LPs): how re-solves split between basis reuse and cold solves.
///
/// An *attempt* is a solve for which a cached basis of the right shape
/// existed; it becomes a *hit* when the solver actually re-entered
/// phase 2 from that basis, and a *miss* when the basis had gone stale
/// (infeasible under the new coefficients, singular) and the solver fell
/// back to a cold two-phase solve. Solves with no cached basis at all
/// (first solve of a shape, cache disabled) count in neither bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct WarmStats {
    /// Warm-start attempts that re-entered phase 2 from the cached basis.
    pub hits: u64,
    /// Warm-start attempts that fell back to a cold solve.
    pub misses: u64,
}

impl WarmStats {
    /// Total solves that consulted a cached basis (`hits + misses`).
    pub fn attempts(&self) -> u64 {
        self.hits + self.misses
    }
}

impl fmt::Display for WarmStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} warm hit(s) / {} attempt(s)",
            self.hits,
            self.attempts()
        )
    }
}

/// Planner configuration (model-level knobs shared by every solve).
#[derive(Debug, Clone, PartialEq)]
pub struct PlannerConfig {
    /// Include the blackhole path (default true; keeps the LP feasible
    /// under overload, Eq. 19).
    pub blackhole: bool,
    /// Discretization grid step in seconds for random-delay scenarios
    /// (default 1 ms, the paper's reporting granularity).
    pub grid_step: f64,
    /// Plateau tie-break for Eq. 34 (default midpoint).
    pub plateau: PlateauRule,
    /// LP solver options.
    pub solver: SolverOptions,
    /// Cache the optimal basis of each solved problem shape and
    /// warm-start subsequent solves of the same shape from it (default
    /// true). λ/δ sweeps and an adaptive sender's periodic re-solves move
    /// only objective/RHS coefficients, so the cached basis usually lets
    /// the LP skip phase 1 and most pivots; a stale basis falls back to a
    /// cold solve inside the solver, so results are identical either way.
    /// Only effective with [`dmc_lp::Backend::Revised`].
    pub warm_start: bool,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            blackhole: true,
            grid_step: 1e-3,
            plateau: PlateauRule::Midpoint,
            solver: SolverOptions::default(),
            warm_start: true,
        }
    }
}

/// Cache key for warm-start bases: the *shape* of an assembled LP.
///
/// Two problems of equal shape (same variable count, same row count, same
/// row-kind pattern) can exchange bases: feasibility of a basis depends
/// only on the RHS, which the solver re-checks on every warm start.
/// Shapes with more than 128 rows are not cached (the paper's LPs have a
/// handful).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ShapeKey {
    n_vars: usize,
    n_rows: usize,
    eq_mask: u128,
}

impl ShapeKey {
    fn of(problem: &Problem) -> Option<Self> {
        let n_rows = problem.num_constraints();
        if n_rows > 128 {
            return None;
        }
        let mut eq_mask = 0u128;
        for (i, c) in problem.constraints().iter().enumerate() {
            if c.kind() == ConstraintKind::Eq {
                eq_mask |= 1 << i;
            }
        }
        Some(ShapeKey {
            n_vars: problem.num_vars(),
            n_rows,
            eq_mask,
        })
    }
}

/// Bound on cached shapes; a planner cycling through more shapes than
/// this simply restarts its cache (sweeps touch one or two shapes).
const MAX_CACHED_SHAPES: usize = 32;

/// The planning engine: turns ([`Scenario`], [`Objective`]) into a
/// [`Plan`], reusing its LP workspace and coefficient buffers across
/// calls.
///
/// ```
/// use dmc_core::{Objective, Planner, Scenario, ScenarioPath};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let scenario = Scenario::builder()
///     .path(ScenarioPath::constant(10e6, 0.600, 0.10)?) // 10 Mbps, 600 ms, 10 %
///     .path(ScenarioPath::constant(1e6, 0.200, 0.0)?)   //  1 Mbps, 200 ms,  0 %
///     .data_rate(10e6)
///     .lifetime(1.0)
///     .build()?;
/// let mut planner = Planner::new();
/// let plan = planner.plan(&scenario, Objective::MaxQuality)?;
/// assert!((plan.quality() - 1.0).abs() < 1e-9); // Figure 1: 100 % in time
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct Planner {
    config: PlannerConfig,
    workspace: Workspace,
    // Reused coefficient buffers (cleared and refilled per plan).
    p: Vec<f64>,
    cost: Vec<f64>,
    usage: Vec<Vec<f64>>,
    stage_timeouts: Vec<Vec<Option<f64>>>,
    det_paths: Vec<PathSpec>,
    // Warm-start state: last optimal basis per problem shape, plus
    // counters for observability (benchmarks, tests).
    // dmc-lint: allow(det-unordered-map) key-lookup-only cache: get/insert/contains_key/len/clear, never iterated, so key order cannot reach results
    warm_bases: HashMap<ShapeKey, Basis>,
    warm_attempts: u64,
    warm_hits: u64,
}

impl Planner {
    /// A planner with the default configuration.
    pub fn new() -> Self {
        Planner::default()
    }

    /// A planner with an explicit configuration.
    pub fn with_config(config: PlannerConfig) -> Self {
        Planner {
            config,
            ..Planner::default()
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &PlannerConfig {
        &self.config
    }

    /// Mutable access to the configuration (applies to subsequent plans).
    pub fn config_mut(&mut self) -> &mut PlannerConfig {
        &mut self.config
    }

    /// Solves `scenario` for `objective` and packages the result.
    ///
    /// Deterministic scenarios (every delay constant) use the exact
    /// closed-form coefficients of Eq. 12 and the Eq. 4 timeout rule;
    /// anything else uses the discretized Eq. 28 coefficients and Eq. 34
    /// optimal timeouts. Either way the output is one [`Plan`].
    ///
    /// # Errors
    ///
    /// * [`PlanError::Unsupported`] when the objective does not fit the
    ///   scenario (budget objective without a budget, quality floor
    ///   outside `[0, 1]`);
    /// * [`PlanError::Solve`] on LP failure (an unreachable
    ///   [`Objective::MinCost`] floor reports
    ///   [`SolveError::Infeasible`]).
    pub fn plan(&mut self, scenario: &Scenario, objective: Objective) -> Result<Plan, PlanError> {
        self.validate(scenario, objective)?;
        let (table, schedule, ack_path) = self.fill_buffers(scenario);

        let problem = self.assemble_lp(scenario, objective, &table);
        let solution = self.solve_lp(&problem)?;
        let strategy = self.package_strategy(scenario, &table, solution.into_x());

        Ok(Plan {
            scenario: scenario.clone(),
            objective,
            strategy,
            schedule,
            ack_path,
        })
    }

    /// Fills the planner's coefficient buffers (`p`, `usage`, `cost`) for
    /// `scenario` and returns the combo table, timeout schedule and ack
    /// path — the regime dispatch shared by [`Planner::plan`] and
    /// [`Planner::model`].
    fn fill_buffers(&mut self, scenario: &Scenario) -> (ComboTable, TimeoutSchedule, usize) {
        let n = scenario.num_paths();
        let table = ComboTable::new(n, scenario.transmissions(), self.config.blackhole);
        if self.usage.len() != n {
            self.usage.resize_with(n, Vec::new);
        }
        let ack_path = scenario.ack_path();

        let schedule = if scenario.is_deterministic() {
            let dmin = self.load_det_paths(scenario);
            fill_deterministic_coeffs(
                &self.det_paths,
                dmin,
                scenario.lifetime(),
                &table,
                &mut self.p,
                &mut self.usage,
                &mut self.cost,
            );
            TimeoutSchedule::deterministic(&self.det_paths, dmin, &table)
        } else {
            fill_random_coeffs(
                scenario.paths(),
                scenario.lifetime(),
                self.config.grid_step,
                self.config.plateau,
                &table,
                ack_path,
                &mut self.p,
                &mut self.usage,
                &mut self.cost,
                &mut self.stage_timeouts,
            );
            TimeoutSchedule::from_stage_timeouts(&self.stage_timeouts, &table, scenario.lifetime())
        };
        (table, schedule, ack_path)
    }

    /// Builds the *unsolved* model of a scenario: the Eq. 12/28 coefficient
    /// vectors, the combination table, the Eq. 4/34 timeout schedule and
    /// the ack path, packaged as an owned [`ScenarioModel`].
    ///
    /// This is the planner's front half with the LP solve left to the
    /// caller — the hook the multi-flow fleet layer
    /// (`dmc_fleet::FleetPlanner`) uses to assemble one *joint* LP whose
    /// per-path capacity rows are shared across flows, and to package the
    /// joint solution back into ordinary per-flow [`Plan`]s via
    /// [`ScenarioModel::plan_for`].
    ///
    /// The coefficients are computed by exactly the code path
    /// [`Planner::plan`] uses, so an LP assembled from a `ScenarioModel`
    /// the way [`Planner::plan`] assembles its own reproduces
    /// [`Planner::plan`]'s answers bit for bit.
    pub fn model(&mut self, scenario: &Scenario) -> ScenarioModel {
        let (table, schedule, ack_path) = self.fill_buffers(scenario);
        ScenarioModel {
            scenario: scenario.clone(),
            table,
            schedule,
            ack_path,
            p: self.p.clone(),
            usage: self.usage.clone(),
            cost: self.cost.clone(),
        }
    }

    /// The paper's Experiment-1 procedure (§VII-A) as a first-class plan:
    /// the **LP** is solved with conservatively inflated delays
    /// (`measured + margin`, absorbing queueing noise at deadline
    /// boundaries), while the **timeout schedule** keeps the measured
    /// delays — inflating those too would push retransmissions past the
    /// deadline.
    ///
    /// Deterministic scenarios only (the random-delay model absorbs
    /// margins into the distributions themselves).
    ///
    /// # Errors
    ///
    /// [`PlanError::Unsupported`] for random-delay scenarios or a
    /// non-finite/negative margin; otherwise as [`Planner::plan`].
    pub fn plan_with_margin(
        &mut self,
        measured: &Scenario,
        margin_s: f64,
        objective: Objective,
    ) -> Result<Plan, PlanError> {
        if !measured.is_deterministic() {
            return Err(PlanError::Unsupported(
                "delay margins only apply to deterministic scenarios".into(),
            ));
        }
        if !(margin_s >= 0.0) || !margin_s.is_finite() {
            return Err(PlanError::Unsupported(format!(
                "margin must be finite and ≥ 0, got {margin_s}"
            )));
        }
        let mut inflated = measured.clone();
        for (k, p) in measured.paths().iter().enumerate() {
            let spec = p.as_spec().expect("deterministic scenario");
            let slow = ScenarioPath::constant_with_cost(
                spec.bandwidth(),
                spec.delay() + margin_s,
                spec.loss(),
                spec.cost(),
            )?;
            inflated = inflated.with_path_replaced(k, slow);
        }
        let mut plan = self.plan(&inflated, objective)?;
        // Swap the timeout schedule back to the measured delays.
        let dmin = self.load_det_paths(measured);
        plan.schedule =
            TimeoutSchedule::deterministic(&self.det_paths, dmin, plan.strategy.table());
        plan.scenario = measured.clone();
        Ok(plan)
    }

    /// Solves an assembled LP, warm-starting from the cached basis of the
    /// same problem shape when enabled, and refreshing the cache with the
    /// new optimal basis.
    ///
    /// Warm and cold solves of the same problem produce identical
    /// results (the revised backend canonicalizes its reported vertex),
    /// so this is purely a performance device.
    fn solve_lp(&mut self, problem: &Problem) -> Result<Solution, SolveError> {
        let key = if self.config.warm_start {
            ShapeKey::of(problem)
        } else {
            None
        };
        let solution = match key.and_then(|k| self.warm_bases.get(&k)) {
            Some(basis) => {
                self.warm_attempts += 1;
                // Mirror hit/miss into the telemetry registry (no-op when
                // disabled); a solve error counts as a miss, matching how
                // `warm_stats()` derives misses from attempts − hits.
                let obs = &self.config.solver.obs;
                let s = match problem.solve_warm_with(
                    &self.config.solver,
                    &mut self.workspace,
                    basis,
                ) {
                    Ok(s) => s,
                    Err(e) => {
                        obs.counter("planner.warm_misses").inc();
                        return Err(e);
                    }
                };
                if s.used_warm_start() {
                    self.warm_hits += 1;
                    obs.counter("planner.warm_hits").inc();
                } else {
                    obs.counter("planner.warm_misses").inc();
                }
                s
            }
            None => problem.solve_with(&self.config.solver, &mut self.workspace)?,
        };
        if let (Some(k), Some(basis)) = (key, solution.basis()) {
            if self.warm_bases.len() >= MAX_CACHED_SHAPES && !self.warm_bases.contains_key(&k) {
                self.warm_bases.clear();
            }
            self.warm_bases.insert(k, basis.clone());
        }
        Ok(solution)
    }

    /// Warm-start cache counters: how many solves re-entered phase 2 from
    /// a cached basis ([`WarmStats::hits`]) and how many consulted a
    /// cached basis that had gone stale ([`WarmStats::misses`]).
    /// Diagnostic counters for benches and tests.
    ///
    /// MIGRATION: the same events are mirrored onto the `dmc_obs`
    /// counters `planner.warm_hits` / `planner.warm_misses` of
    /// `config.solver.obs` when that registry is enabled. This accessor
    /// stays per-planner (a registry shared across planners or replays
    /// aggregates instead); prefer the registry for exported telemetry.
    pub fn warm_stats(&self) -> WarmStats {
        WarmStats {
            hits: self.warm_hits,
            misses: self.warm_attempts - self.warm_hits,
        }
    }

    /// The pre-[`WarmStats`] counter shape: `(attempts, hits)`.
    #[deprecated(note = "use `warm_stats()`, which returns a named `WarmStats { hits, misses }`")]
    pub fn warm_stats_tuple(&self) -> (u64, u64) {
        (self.warm_attempts, self.warm_hits)
    }

    /// Number of problem shapes with a cached warm-start basis.
    pub fn cached_bases(&self) -> usize {
        self.warm_bases.len()
    }

    /// Drops all cached warm-start bases (subsequent solves start cold).
    pub fn clear_warm_cache(&mut self) {
        self.warm_bases.clear();
    }

    /// Loads a deterministic scenario's paths into the reusable
    /// `det_paths` buffer and returns `d_min` (Eq. 1).
    ///
    /// # Panics
    ///
    /// Panics if the scenario is not deterministic (callers check).
    fn load_det_paths(&mut self, scenario: &Scenario) -> f64 {
        self.det_paths.clear();
        for p in scenario.paths() {
            self.det_paths
                .push(p.as_spec().expect("deterministic scenario"));
        }
        self.det_paths
            .iter()
            .map(PathSpec::delay)
            .fold(f64::INFINITY, f64::min)
    }

    fn validate(&self, scenario: &Scenario, objective: Objective) -> Result<(), PlanError> {
        match objective {
            Objective::MaxQuality => Ok(()),
            Objective::MaxQualityUnderBudget => {
                if scenario.cost_budget().is_finite() {
                    Ok(())
                } else {
                    Err(PlanError::Unsupported(
                        "MaxQualityUnderBudget requires a finite scenario cost_budget".into(),
                    ))
                }
            }
            Objective::MinCost { min_quality } => {
                if (0.0..=1.0).contains(&min_quality) {
                    Ok(())
                } else {
                    Err(PlanError::Unsupported(format!(
                        "MinCost quality floor must be in [0, 1], got {min_quality}"
                    )))
                }
            }
        }
    }

    /// Assembles the LP for the requested objective from the filled
    /// coefficient buffers.
    fn assemble_lp(
        &self,
        scenario: &Scenario,
        objective: Objective,
        table: &ComboTable,
    ) -> Problem {
        let lambda = scenario.data_rate();
        match objective {
            Objective::MaxQuality | Objective::MaxQualityUnderBudget => {
                let mut lp = Problem::maximize(self.p.clone());
                for (k, usage) in self.usage.iter().enumerate() {
                    lp.add_le(usage.clone(), scenario.paths()[k].bandwidth() / lambda)
                        .expect("dimensions match");
                }
                if scenario.cost_budget().is_finite() {
                    lp.add_le(self.cost.clone(), scenario.cost_budget() / lambda)
                        .expect("dimensions match");
                }
                lp.add_eq(vec![1.0; table.num_combos()], 1.0)
                    .expect("dimensions match");
                lp
            }
            Objective::MinCost { min_quality } => {
                let mut lp = Problem::minimize(self.cost.clone());
                for (k, usage) in self.usage.iter().enumerate() {
                    lp.add_le(usage.clone(), scenario.paths()[k].bandwidth() / lambda)
                        .expect("dimensions match");
                }
                lp.add_ge(self.p.clone(), min_quality)
                    .expect("p has exactly one coefficient per path");
                lp.add_eq(vec![1.0; table.num_combos()], 1.0)
                    .expect("dimensions match");
                lp
            }
        }
    }

    /// Packages an assignment into a [`Strategy`] with predicted metrics
    /// (Eq. 2, 6, 7).
    fn package_strategy(&self, scenario: &Scenario, table: &ComboTable, x: Vec<f64>) -> Strategy {
        let lambda = scenario.data_rate();
        let quality: f64 = self.p.iter().zip(&x).map(|(p, v)| p * v).sum();
        let send_rates: Vec<f64> = self
            .usage
            .iter()
            .map(|usage| lambda * usage.iter().zip(&x).map(|(u, v)| u * v).sum::<f64>())
            .collect();
        let cost_rate = lambda * self.cost.iter().zip(&x).map(|(c, v)| c * v).sum::<f64>();
        Strategy::new(table.clone(), x, lambda, quality, cost_rate, send_rates)
    }
}

/// The unsolved model of one scenario, produced by [`Planner::model`]:
/// everything [`Planner::plan`] derives *before* the LP solve, owned and
/// detached from the planner's scratch buffers.
///
/// Consumers assemble their own LP from the coefficient vectors (the
/// fleet layer concatenates several models into one joint LP with shared
/// capacity rows) and package an assignment back into a [`Plan`] with
/// [`ScenarioModel::plan_for`].
#[derive(Debug, Clone)]
pub struct ScenarioModel {
    scenario: Scenario,
    table: ComboTable,
    schedule: TimeoutSchedule,
    ack_path: usize,
    p: Vec<f64>,
    usage: Vec<Vec<f64>>,
    cost: Vec<f64>,
}

impl ScenarioModel {
    /// The scenario this model was built for.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The combination table (LP variable ↔ stage-sequence bijection).
    pub fn table(&self) -> &ComboTable {
        &self.table
    }

    /// Number of LP variables (`table().num_combos()`).
    pub fn num_combos(&self) -> usize {
        self.table.num_combos()
    }

    /// The per-stage retransmission-timeout schedule (Eq. 4 / Eq. 34).
    pub fn schedule(&self) -> &TimeoutSchedule {
        &self.schedule
    }

    /// The acknowledgment path (Eq. 25 / Eq. 1), 0-based.
    pub fn ack_path(&self) -> usize {
        self.ack_path
    }

    /// In-time delivery probability `p_l` per combination (Eq. 12/28).
    pub fn quality_coeffs(&self) -> &[f64] {
        &self.p
    }

    /// Expected transmissions of real path `k` per unit data, per
    /// combination (row `k` of Eq. 15, divided by `λ`).
    ///
    /// # Panics
    ///
    /// Panics if `k` is not a real path index.
    pub fn usage_coeffs(&self, k: usize) -> &[f64] {
        &self.usage[k]
    }

    /// Expected cost per bit per combination (Eq. 16 divided by `λ`).
    pub fn cost_coeffs(&self) -> &[f64] {
        &self.cost
    }

    /// Nonzero entries of [`ScenarioModel::quality_coeffs`] as sorted
    /// `(combination index, value)` triplets.
    ///
    /// The coefficient vectors are sparse in a structured way — every
    /// combination whose delivery never beats the deadline (blackhole
    /// prefixes, hopeless path sequences) contributes an exact zero — and
    /// the fleet layer assembles its joint LP rows from these triplets
    /// (`dmc_lp::Problem::add_*_sparse`) so the sparse solver sees the
    /// true sparsity pattern without re-scanning dense vectors.
    pub fn quality_triplets(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        nonzeros(&self.p)
    }

    /// Nonzero entries of [`ScenarioModel::usage_coeffs`]`(k)` as sorted
    /// `(combination index, value)` triplets.
    ///
    /// # Panics
    ///
    /// Panics if `k` is not a real path index.
    pub fn usage_triplets(&self, k: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        nonzeros(&self.usage[k])
    }

    /// Nonzero entries of [`ScenarioModel::cost_coeffs`] as sorted
    /// `(combination index, value)` triplets.
    pub fn cost_triplets(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        nonzeros(&self.cost)
    }

    /// Packages an assignment vector into a full [`Plan`], computing the
    /// predicted metrics (Eq. 2, 6, 7) exactly as [`Planner::plan`] does —
    /// same coefficient vectors, same summation order — so feeding the `x`
    /// of a planner solve through here reproduces the planner's plan bit
    /// for bit.
    ///
    /// `objective` is recorded on the plan as the objective `x` was solved
    /// for; this method does not solve anything itself.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != num_combos()`.
    pub fn plan_for(&self, objective: Objective, x: Vec<f64>) -> Plan {
        assert_eq!(
            x.len(),
            self.table.num_combos(),
            "assignment length does not match the combination table"
        );
        let lambda = self.scenario.data_rate();
        let quality: f64 = self.p.iter().zip(&x).map(|(p, v)| p * v).sum();
        let send_rates: Vec<f64> = self
            .usage
            .iter()
            .map(|usage| lambda * usage.iter().zip(&x).map(|(u, v)| u * v).sum::<f64>())
            .collect();
        let cost_rate = lambda * self.cost.iter().zip(&x).map(|(c, v)| c * v).sum::<f64>();
        let strategy = Strategy::new(
            self.table.clone(),
            x,
            lambda,
            quality,
            cost_rate,
            send_rates,
        );
        Plan {
            scenario: self.scenario.clone(),
            objective,
            strategy,
            schedule: self.schedule.clone(),
            ack_path: self.ack_path,
        }
    }
}

/// Sorted `(index, value)` pairs of the nonzero entries of a dense
/// coefficient vector.
fn nonzeros(v: &[f64]) -> impl Iterator<Item = (usize, f64)> + '_ {
    v.iter()
        .enumerate()
        // dmc-lint: allow(float-exact) exact-zero sparsity filter: a stored 0.0 means structurally absent, not approximately small
        .filter(|(_, &x)| x != 0.0)
        .map(|(i, &x)| (i, x))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve::{min_cost_strategy, optimal_strategy, ModelConfig};
    use crate::{NetworkSpec, RandomDelayConfig, RandomDelayModel, RandomNetworkSpec};
    use dmc_stats::ShiftedGamma;
    use std::sync::Arc;

    fn table3_scenario(lambda: f64, delta: f64) -> Scenario {
        Scenario::builder()
            .path(ScenarioPath::constant(80e6, 0.450, 0.2).unwrap())
            .path(ScenarioPath::constant(20e6, 0.150, 0.0).unwrap())
            .data_rate(lambda)
            .lifetime(delta)
            .build()
            .unwrap()
    }

    fn table3_network(lambda: f64, delta: f64) -> NetworkSpec {
        NetworkSpec::builder()
            .path(crate::PathSpec::new(80e6, 0.450, 0.2).unwrap())
            .path(crate::PathSpec::new(20e6, 0.150, 0.0).unwrap())
            .data_rate(lambda)
            .lifetime(delta)
            .build()
            .unwrap()
    }

    fn table5_scenario() -> Scenario {
        Scenario::builder()
            .path(
                ScenarioPath::new(
                    80e6,
                    Arc::new(ShiftedGamma::new(10.0, 0.004, 0.400).unwrap()),
                    0.2,
                    0.0,
                )
                .unwrap(),
            )
            .path(
                ScenarioPath::new(
                    20e6,
                    Arc::new(ShiftedGamma::new(5.0, 0.002, 0.100).unwrap()),
                    0.0,
                    0.0,
                )
                .unwrap(),
            )
            .data_rate(90e6)
            .lifetime(0.750)
            .build()
            .unwrap()
    }

    #[test]
    fn deterministic_plan_matches_legacy_exactly() {
        let mut planner = Planner::new();
        for (lambda, delta) in [(10e6, 0.8), (90e6, 0.8), (120e6, 0.8), (90e6, 0.45)] {
            let plan = planner
                .plan(&table3_scenario(lambda, delta), Objective::MaxQuality)
                .unwrap();
            let legacy =
                optimal_strategy(&table3_network(lambda, delta), &ModelConfig::default()).unwrap();
            assert_eq!(plan.strategy().x(), legacy.x(), "λ={lambda} δ={delta}");
            assert_eq!(plan.quality(), legacy.quality());
            assert_eq!(plan.send_rates(), legacy.send_rates());
        }
    }

    #[test]
    fn random_plan_matches_legacy_model() {
        let scenario = table5_scenario();
        let mut planner = Planner::new();
        let plan = planner.plan(&scenario, Objective::MaxQuality).unwrap();
        let legacy_net = RandomNetworkSpec::new(scenario.paths().to_vec(), 90e6, 0.750).unwrap();
        let model = RandomDelayModel::new(&legacy_net, &RandomDelayConfig::default());
        let legacy = model.solve_quality(&SolverOptions::default()).unwrap();
        assert_eq!(plan.strategy().x(), legacy.x());
        assert_eq!(plan.quality(), legacy.quality());
        assert_eq!(plan.ack_path(), model.ack_path());
        // Pairwise timeouts agree too.
        for i in 0..2 {
            for j in 0..2 {
                assert_eq!(plan.timeout(i, j), model.timeout(i, j), "t({i},{j})");
            }
        }
    }

    #[test]
    fn deterministic_schedule_is_eq4() {
        let mut planner = Planner::new();
        let plan = planner
            .plan(&table3_scenario(90e6, 0.8), Objective::MaxQuality)
            .unwrap();
        // t(1,2) = d_1 + d_min = 450 + 150 ms.
        let t = plan.timeout(0, 1).expect("defined");
        assert!((t - 0.600).abs() < 1e-12, "t = {t}");
        // Stage timers exist for real-path stages.
        let table = plan.strategy().table();
        let l = table
            .index_of(&[crate::Slot::Path(0), crate::Slot::Path(1)])
            .unwrap();
        let s0 = plan.schedule().stage(l, 0).expect("stage 0 armed");
        assert!(s0.retransmit);
        let s1 = plan.schedule().stage(l, 1).expect("stage 1 detect-only");
        assert!(!s1.retransmit);
    }

    #[test]
    fn min_cost_objective_matches_legacy() {
        let scenario = Scenario::builder()
            .path(ScenarioPath::constant_with_cost(80e6, 0.450, 0.2, 3e-9).unwrap())
            .path(ScenarioPath::constant_with_cost(20e6, 0.150, 0.0, 1e-9).unwrap())
            .data_rate(90e6)
            .lifetime(0.8)
            .build()
            .unwrap();
        let net = scenario.to_network_spec().unwrap();
        let mut planner = Planner::new();
        let plan = planner
            .plan(&scenario, Objective::MinCost { min_quality: 0.9 })
            .unwrap();
        let legacy = min_cost_strategy(&net, 0.9, &ModelConfig::default()).unwrap();
        assert_eq!(plan.strategy().x(), legacy.x());
        assert_eq!(plan.cost_rate(), legacy.cost_rate());
        // Unreachable floor is an LP infeasibility.
        assert!(matches!(
            planner.plan(&scenario, Objective::MinCost { min_quality: 0.99 }),
            Err(PlanError::Solve(_))
        ));
        // Out-of-range floor is rejected before solving.
        assert!(matches!(
            planner.plan(&scenario, Objective::MinCost { min_quality: 1.5 }),
            Err(PlanError::Unsupported(_))
        ));
    }

    #[test]
    fn min_cost_works_for_random_scenarios_too() {
        // New capability: the legacy API had no random-delay min-cost
        // entry point; the planner solves it with the same coefficients.
        let base = table5_scenario();
        let costed = base
            .with_path_replaced(
                0,
                ScenarioPath::new(
                    80e6,
                    Arc::new(ShiftedGamma::new(10.0, 0.004, 0.400).unwrap()),
                    0.2,
                    3e-9,
                )
                .unwrap(),
            )
            .with_path_replaced(
                1,
                ScenarioPath::new(
                    20e6,
                    Arc::new(ShiftedGamma::new(5.0, 0.002, 0.100).unwrap()),
                    0.0,
                    1e-9,
                )
                .unwrap(),
            );
        let mut planner = Planner::new();
        let qmax = planner.plan(&costed, Objective::MaxQuality).unwrap();
        let floor = qmax.quality() - 1e-9;
        let cheap = planner
            .plan(&costed, Objective::MinCost { min_quality: floor })
            .unwrap();
        assert!(cheap.quality() >= floor - 1e-6);
        assert!(cheap.cost_rate() <= qmax.cost_rate() + 1e-6);
    }

    #[test]
    fn budget_objective_requires_budget() {
        let mut planner = Planner::new();
        assert!(matches!(
            planner.plan(
                &table3_scenario(90e6, 0.8),
                Objective::MaxQualityUnderBudget
            ),
            Err(PlanError::Unsupported(_))
        ));
        let budgeted = Scenario::builder()
            .path(ScenarioPath::constant_with_cost(80e6, 0.450, 0.2, 1.0).unwrap())
            .path(ScenarioPath::constant_with_cost(20e6, 0.150, 0.0, 0.0).unwrap())
            .data_rate(90e6)
            .lifetime(0.8)
            .cost_budget(1.0)
            .build()
            .unwrap();
        let plan = planner
            .plan(&budgeted, Objective::MaxQualityUnderBudget)
            .unwrap();
        // Path 0 unaffordable → path-1-only quality 2/9 (cf. the legacy
        // cost_budget_binds test).
        assert!(
            (plan.quality() - 2.0 / 9.0).abs() < 1e-6,
            "{}",
            plan.quality()
        );
        assert!(plan.cost_rate() <= 1.0 + 1e-6);
    }

    #[test]
    fn plan_with_margin_splits_lp_from_timeouts() {
        // Measured 400/100 ms, margin 50 ms: the LP sees 450/150 (Table IV
        // numbers) while timeouts keep 400/100 (t = d_i + d_min = 500 ms).
        let measured = Scenario::builder()
            .path(ScenarioPath::constant(80e6, 0.400, 0.2).unwrap())
            .path(ScenarioPath::constant(20e6, 0.100, 0.0).unwrap())
            .data_rate(90e6)
            .lifetime(0.8)
            .build()
            .unwrap();
        let mut planner = Planner::new();
        let plan = planner
            .plan_with_margin(&measured, 0.050, Objective::MaxQuality)
            .unwrap();
        assert!(
            (plan.quality() - 42.0 / 45.0).abs() < 1e-9,
            "{}",
            plan.quality()
        );
        let t = plan.timeout(0, 1).expect("defined");
        assert!((t - 0.500).abs() < 1e-12, "t = {t}");
        // The plan reports the *measured* scenario.
        assert_eq!(plan.scenario().paths()[0].constant_delay(), Some(0.400));
        // Margins don't apply to random scenarios.
        assert!(matches!(
            planner.plan_with_margin(&table5_scenario(), 0.05, Objective::MaxQuality),
            Err(PlanError::Unsupported(_))
        ));
    }

    #[test]
    fn planner_reuse_across_shapes_and_sweeps() {
        // One planner across different path counts, transmission counts
        // and regimes must keep producing correct answers.
        let mut planner = Planner::new();
        for m in 1..=3 {
            let s = table3_scenario(90e6, 1.5).with_transmissions(m);
            let plan = planner.plan(&s, Objective::MaxQuality).unwrap();
            let legacy = optimal_strategy(
                &table3_network(90e6, 1.5),
                &ModelConfig::with_transmissions(m),
            )
            .unwrap();
            assert_eq!(plan.strategy().x(), legacy.x(), "m={m}");
        }
        let random = planner
            .plan(&table5_scenario(), Objective::MaxQuality)
            .unwrap();
        assert!((random.quality() - 0.9333).abs() < 0.005);
        let three_path = Scenario::builder()
            .path(ScenarioPath::constant(80e6, 0.450, 0.2).unwrap())
            .path(ScenarioPath::constant(20e6, 0.150, 0.0).unwrap())
            .path(ScenarioPath::constant(30e6, 0.250, 0.05).unwrap())
            .data_rate(130e6)
            .lifetime(0.8)
            .build()
            .unwrap();
        let plan = planner.plan(&three_path, Objective::MaxQuality).unwrap();
        assert!(plan.strategy().is_well_formed(1e-9));
        assert!(plan.quality() > 0.0 && plan.quality() <= 1.0 + 1e-9);
    }

    #[test]
    fn model_plan_for_reproduces_plan_bit_for_bit() {
        // Deterministic and random regimes: re-packaging the planner's own
        // x through ScenarioModel::plan_for must reproduce the plan
        // exactly (the fleet decomposition path relies on this).
        let mut planner = Planner::new();
        for scenario in [table3_scenario(90e6, 0.8), table5_scenario()] {
            let plan = planner.plan(&scenario, Objective::MaxQuality).unwrap();
            let model = planner.model(&scenario);
            assert_eq!(model.num_combos(), plan.strategy().x().len());
            let repack = model.plan_for(Objective::MaxQuality, plan.strategy().x().to_vec());
            assert_eq!(repack.strategy().x(), plan.strategy().x());
            assert_eq!(repack.quality(), plan.quality());
            assert_eq!(repack.cost_rate(), plan.cost_rate());
            assert_eq!(repack.send_rates(), plan.send_rates());
            assert_eq!(repack.ack_path(), plan.ack_path());
            assert_eq!(repack.schedule(), plan.schedule());
        }
    }

    #[test]
    fn model_triplets_are_exactly_the_nonzero_coefficients() {
        let mut planner = Planner::new();
        for scenario in [table3_scenario(90e6, 0.8), table5_scenario()] {
            let model = planner.model(&scenario);
            let p = model.quality_coeffs();
            let trip: Vec<(usize, f64)> = model.quality_triplets().collect();
            assert_eq!(trip.len(), p.iter().filter(|&&v| v != 0.0).count());
            assert!(trip.iter().all(|&(i, v)| p[i] == v && v != 0.0));
            assert!(trip.windows(2).all(|w| w[0].0 < w[1].0), "sorted");
            for k in 0..scenario.num_paths() {
                let u = model.usage_coeffs(k);
                let t: Vec<(usize, f64)> = model.usage_triplets(k).collect();
                assert_eq!(t.len(), u.iter().filter(|&&v| v != 0.0).count());
                assert!(t.iter().all(|&(i, v)| u[i] == v));
                // The usage rows have structural zeros (combinations that
                // never touch path k) — the sparsity is real.
                assert!(t.len() < u.len(), "path {k} usage should be sparse");
            }
            let c = model.cost_coeffs();
            let t: Vec<(usize, f64)> = model.cost_triplets().collect();
            assert_eq!(t.len(), c.iter().filter(|&&v| v != 0.0).count());
        }
    }

    #[test]
    fn warm_stats_struct_and_tuple_shim_agree() {
        let mut planner = Planner::new();
        for lambda in [60e6, 80e6, 100e6] {
            planner
                .plan(&table3_scenario(lambda, 0.8), Objective::MaxQuality)
                .unwrap();
        }
        let stats = planner.warm_stats();
        assert!(stats.hits > 0, "sweep never warm-started");
        assert_eq!(stats.attempts(), stats.hits + stats.misses);
        #[allow(deprecated)]
        let (attempts, hits) = planner.warm_stats_tuple();
        assert_eq!(attempts, stats.attempts());
        assert_eq!(hits, stats.hits);
        assert!(format!("{stats}").contains("warm hit"));
    }

    #[test]
    fn blackhole_disabled_reports_infeasible() {
        let mut planner = Planner::with_config(PlannerConfig {
            blackhole: false,
            ..PlannerConfig::default()
        });
        let err = planner
            .plan(&table3_scenario(200e6, 0.8), Objective::MaxQuality)
            .unwrap_err();
        assert!(matches!(err, PlanError::Solve(_)));
        assert!(!format!("{err}").is_empty());
    }
}
