//! Plan-level feasibility invariants for the unified pipeline: for
//! arbitrary [`Scenario`]s, every [`Plan`] the [`Planner`] emits must
//! (a) respect per-path capacity, (b) cover the message stream exactly
//! once across combinations, and (c) carry a monotone timeout schedule.

use dmc_core::{Objective, Plan, Planner, Scenario, ScenarioPath, Slot};
use dmc_stats::ShiftedGamma;
use proptest::prelude::*;
use std::sync::Arc;

fn arb_constant_path() -> impl Strategy<Value = ScenarioPath> {
    (
        1.0f64..200.0, // bandwidth Mbps
        0.005f64..0.8, // delay s
        0.0f64..0.9,   // loss
        0.0f64..5e-9,  // cost per bit
    )
        .prop_map(|(bw, d, l, c)| {
            ScenarioPath::constant_with_cost(bw * 1e6, d, l, c).expect("valid")
        })
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (
        proptest::collection::vec(arb_constant_path(), 1..5),
        1.0f64..300.0, // λ Mbps
        0.05f64..2.0,  // δ s
        1usize..4,     // transmissions m
    )
        .prop_map(|(paths, lambda, delta, m)| {
            Scenario::builder()
                .paths(paths)
                .data_rate(lambda * 1e6)
                .lifetime(delta)
                .transmissions(m)
                .build()
                .expect("valid")
        })
}

/// A Table-V-like random-delay scenario with randomized operating point
/// (the §VI-B regime goes through the discretized Eq. 28/34 machinery —
/// different code path, same invariants).
fn arb_random_scenario() -> impl Strategy<Value = Scenario> {
    (30.0f64..110.0, 0.5f64..1.2).prop_map(|(lambda, delta)| {
        let p1 = ScenarioPath::new(
            80e6,
            Arc::new(ShiftedGamma::new(10.0, 0.004, 0.400).expect("valid")),
            0.2,
            0.0,
        )
        .expect("valid");
        let p2 = ScenarioPath::new(
            20e6,
            Arc::new(ShiftedGamma::new(5.0, 0.002, 0.100).expect("valid")),
            0.0,
            0.0,
        )
        .expect("valid");
        Scenario::builder()
            .path(p1)
            .path(p2)
            .data_rate(lambda * 1e6)
            .lifetime(delta)
            .build()
            .expect("valid")
    })
}

/// The three plan invariants, shared by both regimes.
fn check_plan(plan: &Plan, scenario: &Scenario) -> Result<(), TestCaseError> {
    // (b) Coverage: the assignment is a probability distribution over
    // combinations — every generated block lands on exactly one
    // combination (possibly the blackhole), never zero, never two.
    let x = plan.strategy().x();
    let sum: f64 = x.iter().sum();
    prop_assert!((sum - 1.0).abs() < 1e-7, "Σx = {sum}");
    prop_assert!(x.iter().all(|&v| v >= -1e-9), "negative assignment");
    prop_assert!(
        plan.quality() >= -1e-9 && plan.quality() <= 1.0 + 1e-9,
        "Q = {}",
        plan.quality()
    );

    // (a) Capacity: expected per-path send rates stay within bandwidth.
    for (k, (&rate, path)) in plan.send_rates().iter().zip(scenario.paths()).enumerate() {
        prop_assert!(
            rate <= path.bandwidth() * (1.0 + 1e-7),
            "S_{k} = {rate} > b = {}",
            path.bandwidth()
        );
    }

    // (c) Monotone timeout schedule: stage timers are positive and
    // finite, so cumulative firing times strictly increase stage over
    // stage; timers exist only on real-path slots and only slots
    // followed by a real path may retransmit.
    let schedule = plan.schedule();
    let table = plan.strategy().table();
    prop_assert!(schedule.num_combos() == table.num_combos());
    for l in 0..schedule.num_combos() {
        let slots = table.slots_of(l);
        let mut cumulative = 0.0f64;
        for (s, spec) in schedule.stages(l).iter().enumerate() {
            let Some(spec) = spec else { continue };
            prop_assert!(
                matches!(slots.get(s), Some(Slot::Path(_))),
                "combo {l} stage {s}: timer on a non-path slot"
            );
            prop_assert!(
                spec.delay.is_finite() && spec.delay > 0.0,
                "combo {l} stage {s}: non-positive timer {}",
                spec.delay
            );
            if spec.retransmit {
                prop_assert!(
                    matches!(slots.get(s + 1), Some(Slot::Path(_))),
                    "combo {l} stage {s}: retransmit into a non-path slot"
                );
            }
            let next = cumulative + spec.delay;
            prop_assert!(next > cumulative, "combo {l}: schedule not monotone");
            cumulative = next;
        }
    }

    // Coverage at the packet level: the plan's scheduler assigns every
    // block to exactly one in-range combination.
    let mut scheduler = plan.scheduler();
    let n = 500u64;
    let mut counts = vec![0u64; x.len()];
    for _ in 0..n {
        let combo = scheduler.next_combo();
        prop_assert!(combo < x.len(), "combo {combo} out of range");
        counts[combo] += 1;
    }
    prop_assert_eq!(counts.iter().sum::<u64>(), n);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Deterministic regime: invariants hold for any constant-delay
    /// scenario and transmission count.
    #[test]
    fn deterministic_plans_are_feasible(scenario in arb_scenario()) {
        let plan = Planner::new()
            .plan(&scenario, Objective::MaxQuality)
            .expect("blackhole keeps it feasible");
        check_plan(&plan, &scenario)?;
    }

    /// The margin entry point (Experiment 1's split) preserves the same
    /// invariants — rates are checked against the *margined* model the
    /// plan was solved for.
    #[test]
    fn margined_plans_are_feasible(scenario in arb_scenario(), margin in 0.0f64..0.1) {
        let plan = Planner::new()
            .plan_with_margin(&scenario, margin, Objective::MaxQuality)
            .expect("feasible");
        let margined = plan.scenario().clone();
        check_plan(&plan, &margined)?;
    }
}

proptest! {
    // The random-delay solve runs a grid search per combo; keep the case
    // count low.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random-delay regime (Eq. 28/34 discretization): same invariants.
    #[test]
    fn random_delay_plans_are_feasible(scenario in arb_random_scenario()) {
        let plan = Planner::new()
            .plan(&scenario, Objective::MaxQuality)
            .expect("feasible");
        check_plan(&plan, &scenario)?;
    }
}
