//! Property-based tests on the model's invariants.

use dmc_core::{
    optimal_strategy, ComboScheduler, DeterministicModel, ModelConfig, NetworkSpec, PathSpec,
    SolverOptions,
};
use proptest::prelude::*;

/// Strategy for a random but valid path.
fn arb_path() -> impl Strategy<Value = PathSpec> {
    (
        1.0f64..200.0, // bandwidth Mbps
        0.005f64..0.8, // delay s
        0.0f64..0.9,   // loss
        0.0f64..5e-9,  // cost per bit
    )
        .prop_map(|(bw, d, l, c)| PathSpec::with_cost(bw * 1e6, d, l, c).expect("valid"))
}

fn arb_network() -> impl Strategy<Value = NetworkSpec> {
    (
        proptest::collection::vec(arb_path(), 1..5),
        1.0f64..300.0, // λ Mbps
        0.05f64..2.0,  // δ s
    )
        .prop_map(|(paths, lambda, delta)| {
            NetworkSpec::builder()
                .paths(paths)
                .data_rate(lambda * 1e6)
                .lifetime(delta)
                .build()
                .expect("valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The paper's fundamental invariants (Eq. 3, 6, 8, 9) hold for the
    /// optimum of *any* scenario.
    #[test]
    fn optimal_strategy_invariants(net in arb_network(), m in 1usize..4) {
        let cfg = ModelConfig { transmissions: m, ..Default::default() };
        let s = optimal_strategy(&net, &cfg).expect("blackhole keeps it feasible");
        prop_assert!(s.is_well_formed(1e-7));
        prop_assert!(s.quality() >= -1e-9 && s.quality() <= 1.0 + 1e-9,
            "Q = {}", s.quality());
        for (k, (&rate, path)) in s.send_rates().iter().zip(net.paths()).enumerate() {
            prop_assert!(rate <= path.bandwidth() * (1.0 + 1e-7),
                "S_{k} = {rate} > b = {}", path.bandwidth());
        }
        prop_assert!(s.cost_rate() >= -1e-9);
    }

    /// Quality is monotone in lifetime and antitone in data rate.
    #[test]
    fn quality_monotonicity(net in arb_network()) {
        let cfg = ModelConfig::default();
        let q = optimal_strategy(&net, &cfg).unwrap().quality();
        let longer = net.with_lifetime(net.lifetime() * 1.5);
        let q_longer = optimal_strategy(&longer, &cfg).unwrap().quality();
        prop_assert!(q_longer >= q - 1e-7, "longer lifetime reduced Q: {q} → {q_longer}");
        let faster = net.with_data_rate(net.data_rate() * 1.5);
        let q_faster = optimal_strategy(&faster, &cfg).unwrap().quality();
        prop_assert!(q_faster <= q + 1e-7, "higher rate raised Q: {q} → {q_faster}");
    }

    /// Adding a path never lowers the optimal quality.
    #[test]
    fn extra_path_never_hurts(net in arb_network(), extra in arb_path()) {
        let cfg = ModelConfig::default();
        let q = optimal_strategy(&net, &cfg).unwrap().quality();
        let bigger = NetworkSpec::builder()
            .paths(net.paths().iter().copied())
            .path(extra)
            .data_rate(net.data_rate())
            .lifetime(net.lifetime())
            .build()
            .unwrap();
        let q_bigger = optimal_strategy(&bigger, &cfg).unwrap().quality();
        prop_assert!(q_bigger >= q - 1e-7, "extra path reduced Q: {q} → {q_bigger}");
    }

    /// The multipath optimum dominates every single-path optimum.
    #[test]
    fn multipath_dominates_each_path(net in arb_network()) {
        let cfg = ModelConfig::default();
        let multi = optimal_strategy(&net, &cfg).unwrap().quality();
        for k in 0..net.num_paths() {
            let single = dmc_core::single_path_quality(&net, k, &cfg).unwrap();
            prop_assert!(multi >= single - 1e-7,
                "path {k} alone ({single}) beat multipath ({multi})");
        }
    }

    /// `evaluate_under` on the *same* network reproduces the predicted
    /// metrics (the analytic cross-evaluator is consistent).
    #[test]
    fn self_evaluation_consistency(net in arb_network()) {
        let s = optimal_strategy(&net, &ModelConfig::default()).unwrap();
        let eval = s.evaluate_under(&net);
        prop_assert!((eval.quality - s.quality()).abs() < 1e-6,
            "self-eval {} vs predicted {}", eval.quality, s.quality());
    }

    /// Algorithm 1 keeps the empirical distribution within `k/N` of the
    /// target for every prefix.
    #[test]
    fn algorithm1_tracks_any_solution(net in arb_network(), n_packets in 100u64..2_000) {
        let s = optimal_strategy(&net, &ModelConfig::default()).unwrap();
        let mut sched = ComboScheduler::new(s.x().to_vec()).expect("valid x");
        for _ in 0..n_packets {
            sched.next_combo();
        }
        let k = s.x().len() as f64;
        prop_assert!(sched.max_deviation() <= k / n_packets as f64,
            "deviation {} after {n_packets}", sched.max_deviation());
    }

    /// The LP solution is a true optimum: no random feasible assignment
    /// beats it.
    #[test]
    fn no_feasible_point_beats_optimum(net in arb_network(), seed in any::<u64>()) {
        let model = DeterministicModel::new(&net, 2, true);
        let s = model.solve_quality(&SolverOptions::default()).unwrap();
        // Random candidate: Dirichlet-ish weights over combos, then scale
        // down until capacity-feasible.
        let ncombos = s.x().len();
        let mut state = seed.wrapping_add(1);
        let mut w: Vec<f64> = (0..ncombos).map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64).max(1e-9)
        }).collect();
        let total: f64 = w.iter().sum();
        w.iter_mut().for_each(|v| *v /= total);
        // Shift mass to the blackhole (combo 0) until feasible.
        let mut scale = 1.0f64;
        for _ in 0..60 {
            let candidate: Vec<f64> = w.iter().enumerate().map(|(l, &v)| {
                if l == 0 { v * scale + (1.0 - scale) } else { v * scale }
            }).collect();
            let feasible = (0..net.num_paths()).all(|k| {
                let used: f64 = model.usage_coeffs(k).iter().zip(&candidate)
                    .map(|(u, x)| u * x).sum();
                used * net.data_rate() <= net.paths()[k].bandwidth() * (1.0 + 1e-9)
            });
            if feasible {
                let q: f64 = model.quality_coeffs().iter().zip(&candidate)
                    .map(|(p, x)| p * x).sum();
                prop_assert!(q <= s.quality() + 1e-7,
                    "feasible candidate beat the optimum: {q} > {}", s.quality());
                break;
            }
            scale *= 0.8;
        }
    }
}
