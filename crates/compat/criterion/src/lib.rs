//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! This environment builds with no network access, so the subset the
//! workspace's benches use is vendored here: [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`], [`Throughput`]
//! and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement model: each benchmark is warmed up, then timed in batches
//! until a fixed wall-clock budget is spent; the **median of the batch
//! means** is reported as ns/iter. There are no statistical reports or
//! HTML output. Set `CRITERION_OUTPUT_JSON=1` to additionally emit one
//! JSON line per benchmark (used to record `BENCH_*.json` artifacts).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Measurement budget knobs (fixed; criterion's config surface is not
/// reproduced).
const WARMUP: Duration = Duration::from_millis(60);
const MEASURE: Duration = Duration::from_millis(240);
const BATCHES: usize = 10;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        run_benchmark(name, &mut f);
    }
}

/// A named group of benchmarks (`group/name` ids).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration throughput (recorded in the JSON output
    /// only; the stub does not scale units).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub's budget is wall-clock
    /// based, so the sample count is ignored.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Runs a benchmark identified by `id` with an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.0);
        run_benchmark(&full, &mut |b| f(b, input));
        self
    }

    /// Runs a benchmark identified by a plain name.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name.into());
        run_benchmark(&full, &mut |b| f(b));
        self
    }

    /// Ends the group (no-op in the stub).
    pub fn finish(self) {}
}

/// A benchmark identifier: function name plus a parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Creates an id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// Creates an id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Per-iteration throughput declaration.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Handed to the benchmark closure; call [`Bencher::iter`] with the code
/// under test.
#[derive(Debug, Default)]
pub struct Bencher {
    /// Measured mean ns/iter per batch.
    samples: Vec<f64>,
}

impl Bencher {
    /// Measures `f`, storing batch means for the caller to summarize.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up while estimating the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP {
            std_black_box(f());
            warm_iters += 1;
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(1.0);
        // Split the measurement budget into batches; report each batch's
        // mean so the summary can take a robust median.
        let batch_ns = MEASURE.as_nanos() as f64 / BATCHES as f64;
        let batch_iters = ((batch_ns / est_ns).ceil() as u64).max(1);
        for _ in 0..BATCHES {
            let start = Instant::now();
            for _ in 0..batch_iters {
                std_black_box(f());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            self.samples.push(elapsed / batch_iters as f64);
        }
    }
}

fn run_benchmark(id: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher::default();
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{id:<50} (no measurement: Bencher::iter never called)");
        return;
    }
    let mut sorted = bencher.samples.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = sorted[sorted.len() / 2];
    let min = sorted[0];
    let max = sorted[sorted.len() - 1];
    println!("{id:<50} time: [{min:>12.1} ns {median:>12.1} ns {max:>12.1} ns]");
    if std::env::var("CRITERION_OUTPUT_JSON").is_ok() {
        println!(
            "{{\"id\":\"{id}\",\"ns_per_iter_median\":{median:.1},\"ns_per_iter_min\":{min:.1},\"ns_per_iter_max\":{max:.1}}}"
        );
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_and_groups_render() {
        let id = BenchmarkId::new("algo", 42);
        assert_eq!(id.0, "algo/42");
        assert_eq!(BenchmarkId::from_parameter(7).0, "7");
    }

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::default();
        b.iter(|| std::hint::black_box(3u64.wrapping_mul(7)));
        assert!(!b.samples.is_empty());
        assert!(b.samples.iter().all(|&s| s > 0.0));
    }
}
