//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! This environment builds with no network access, so the subset of the
//! rand 0.9 API the workspace actually uses is vendored here:
//!
//! * [`RngCore`] / [`Rng`] with the generic [`Rng::random`] method,
//! * [`SeedableRng::seed_from_u64`],
//! * [`rngs::StdRng`], a deterministic xoshiro256\*\* generator.
//!
//! The generator is **not** cryptographically secure — neither is the use
//! the workspace makes of it (Bernoulli loss draws, gamma delay sampling,
//! weighted-random scheduling baselines). Determinism for a given seed is
//! the property the simulator relies on, and it is guaranteed here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A source of random `u64`s (object-safe core trait).
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be drawn uniformly from an RNG via [`Rng::random`].
///
/// Mirrors rand's `StandardUniform` distribution for the primitive types
/// this workspace draws.
pub trait Standard: Sized {
    /// Draws one value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u8 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Convenience extension over [`RngCore`], mirroring rand's `Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution
    /// (`[0, 1)` for floats, full range for integers).
    fn random<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Draws a value in `[low, high)`.
    fn random_range(&mut self, range: core::ops::Range<f64>) -> f64 {
        range.start + (range.end - range.start) * self.random::<f64>()
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256\*\* generator (stand-in for rand's
    /// `StdRng`; different stream, same contract: reproducible for a
    /// given seed).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn works_through_dyn_and_generic_receivers() {
        fn generic<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.random()
        }
        fn dynamic(rng: &mut dyn RngCore) -> f64 {
            rng.random::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(1);
        let a = generic(&mut rng);
        let b = dynamic(&mut rng);
        assert!(a != b || a == b); // both compile and run
        assert!((0.0..1.0).contains(&a) && (0.0..1.0).contains(&b));
    }
}
