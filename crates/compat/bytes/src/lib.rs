//! Offline stand-in for the [`bytes`](https://crates.io/crates/bytes)
//! crate.
//!
//! This environment builds with no network access, so the subset the
//! workspace uses is vendored here: cheaply-clonable immutable [`Bytes`],
//! a growable [`BytesMut`] builder, and the [`Buf`]/[`BufMut`] cursor
//! traits for the little-endian accessors the wire formats need.
//!
//! Unlike the real crate there is no zero-copy slicing — payloads here
//! are tiny protocol headers, and `Arc<[u8]>` clones are already O(1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// A cheaply clonable, immutable contiguous slice of memory.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Creates `Bytes` from a static slice (copied once; the real crate
    /// borrows, which is an optimization this stub does not need).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            data: Arc::from(bytes),
        }
    }

    /// Copies a slice into a new `Bytes`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

/// A growable byte builder; [`BytesMut::freeze`] converts to [`Bytes`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty builder.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty builder with pre-allocated capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the builder is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.buf.into(),
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

/// Read cursor over a byte source.
///
/// Implemented for `&[u8]`, advancing the slice in place. All getters
/// panic when the remaining bytes are insufficient, like the real crate.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Skips `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8;

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16;

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64;

    /// Fills `dst` from the cursor, advancing past the copied bytes.
    fn copy_to_slice(&mut self, dst: &mut [u8]);
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }

    fn get_u8(&mut self) -> u8 {
        let v = self[0];
        self.advance(1);
        v
    }

    fn get_u16_le(&mut self) -> u16 {
        let (head, rest) = self.split_at(2);
        let v = u16::from_le_bytes(head.try_into().expect("2 bytes"));
        *self = rest;
        v
    }

    fn get_u32_le(&mut self) -> u32 {
        let (head, rest) = self.split_at(4);
        let v = u32::from_le_bytes(head.try_into().expect("4 bytes"));
        *self = rest;
        v
    }

    fn get_u64_le(&mut self) -> u64 {
        let (head, rest) = self.split_at(8);
        let v = u64::from_le_bytes(head.try_into().expect("8 bytes"));
        *self = rest;
        v
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        let (head, rest) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = rest;
    }
}

/// Write cursor over a growable byte sink. Implemented for [`BytesMut`].
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_little_endian() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u8(0xD7);
        b.put_u16_le(0xBEEF);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u64_le(0x0123_4567_89AB_CDEF);
        b.put_slice(&[1, 2, 3]);
        let frozen = b.freeze();
        assert_eq!(frozen.len(), 1 + 2 + 4 + 8 + 3);

        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.get_u8(), 0xD7);
        assert_eq!(cursor.get_u16_le(), 0xBEEF);
        assert_eq!(cursor.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cursor.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(cursor.remaining(), 3);
        cursor.advance(3);
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    fn bytes_equality_and_clone_are_by_content() {
        let a = Bytes::copy_from_slice(b"abc");
        let b = Bytes::from(b"abc".to_vec());
        assert_eq!(a, b);
        let c = a.clone();
        assert_eq!(c.as_ref(), b"abc");
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from_static(b"xy").len(), 2);
    }
}
