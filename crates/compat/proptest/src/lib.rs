//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! This environment builds with no network access, so the subset of the
//! proptest API the workspace uses is vendored here:
//!
//! * the [`proptest!`] macro (with the `#![proptest_config(..)]` header),
//! * [`prop_assert!`] / [`prop_assert_eq!`],
//! * [`Strategy`] with [`Strategy::prop_map`], range and tuple strategies,
//! * [`any`] and [`collection::vec`],
//! * [`ProptestConfig::with_cases`].
//!
//! Differences from the real crate: inputs are drawn from a fixed
//! deterministic stream per test (seeded from the test name), and there
//! is **no shrinking** — a failing case reports its case number and the
//! formatted assertion message instead of a minimized input. That trades
//! debugging convenience for zero dependencies; the generated coverage is
//! equivalent.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::marker::PhantomData;
use std::ops::Range;

/// Deterministic generator feeding the strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator seeded from a test name (FNV-1a hash), so every
    /// test draws a reproducible input stream.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `u64` in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        self.next_u64() % bound
    }
}

/// Per-run configuration (`#![proptest_config(..)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Error produced by a failing `prop_assert!`-style check.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (the only combinator the
    /// workspace uses).
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.end > self.start, "empty f64 range");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.end > self.start, "empty f32 range");
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128) - (self.start as i128);
                assert!(span > 0, "empty integer range");
                let offset = (u128::from(rng.next_u64()) % (span as u128)) as i128;
                (self.start as i128 + offset) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only: arbitrary bit patterns would mostly be
        // astronomically large; a mix of magnitudes is more useful.
        let exp = (rng.below(41) as i32) - 20;
        (rng.unit_f64() * 2.0 - 1.0) * 10f64.powi(exp)
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Default)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (`any::<u64>()`, `any::<bool>()`, …).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy returned by [`vec()`](fn@vec).
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates `Vec`s of `element` values with a length drawn from
    /// `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The usual imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Asserts a condition inside a [`proptest!`] body; on failure the current
/// case is reported (with its case number) and the test panics.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// Asserts two expressions are equal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left_val = $left;
        let right_val = $right;
        $crate::prop_assert!(
            left_val == right_val,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            left_val,
            right_val
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left_val = $left;
        let right_val = $right;
        $crate::prop_assert!(left_val == right_val, $($fmt)+);
    }};
}

/// Asserts two expressions differ inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left_val = $left;
        let right_val = $right;
        $crate::prop_assert!(
            left_val != right_val,
            "assertion failed: `left != right`\n  both: `{:?}`",
            left_val
        );
    }};
}

/// Defines property tests: each `#[test] fn name(arg in strategy, ..)`
/// item runs `config.cases` times over freshly drawn inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($cfg:expr); ) => {};
    (config = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let run = move || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                };
                if let ::std::result::Result::Err(e) = run() {
                    panic!(
                        "proptest `{}` failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_items!{ config = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges stay in bounds; tuples and maps compose.
        #[test]
        fn ranges_and_combinators(
            x in 1.5f64..2.5,
            n in 3usize..10,
            pair in (0u64..5, 10u64..20).prop_map(|(a, b)| a + b),
            bits in crate::collection::vec(any::<bool>(), 2..6),
        ) {
            prop_assert!((1.5..2.5).contains(&x), "x = {x}");
            prop_assert!((3..10).contains(&n));
            prop_assert!((10..25).contains(&pair), "pair = {pair}");
            prop_assert!(bits.len() >= 2 && bits.len() < 6);
            prop_assert_eq!(n, n);
            prop_assert_ne!(n, n + 1);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case_number() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]

            #[allow(dead_code)]
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 1_000, "x was only {x}");
            }
        }
        always_fails();
    }

    #[test]
    fn deterministic_streams_per_name() {
        let mut a = crate::TestRng::from_name("alpha");
        let mut b = crate::TestRng::from_name("alpha");
        let mut c = crate::TestRng::from_name("beta");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
