//! Frozen registry views and their deterministic renderings.

use std::fmt::Write as _;

use crate::metrics::bucket_upper_bound;
use crate::span::SpanEvent;

/// FNV-1a offset basis (the constant used across this workspace).
const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// FNV-1a over a byte slice, seeded with the standard offset basis.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_BASIS;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// A histogram frozen at snapshot time. Only non-empty buckets are kept,
/// as `(bucket index, count)` pairs in index order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values (wrapping on overflow).
    pub sum: u64,
    /// Smallest observed value; `None` when no observation was made.
    pub min: Option<u64>,
    /// Largest observed value (0 when empty).
    pub max: u64,
    /// Non-empty log2 buckets, ascending by index.
    pub buckets: Vec<(u8, u64)>,
}

/// Aggregate of all closed spans sharing a name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanSummary {
    /// The span name.
    pub name: &'static str,
    /// Number of closed spans.
    pub count: u64,
    /// Sum of `exit − enter` over closed spans, in logical ticks.
    pub total_ticks: u64,
    /// Largest single span, in logical ticks.
    pub max_ticks: u64,
}

/// One structured warning: first message wins, repeats only count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WarningRecord {
    /// Stable warning key (e.g. `"service.bad_dmc_threads"`).
    pub key: &'static str,
    /// Message of the first occurrence.
    pub message: String,
    /// Total occurrences.
    pub count: u64,
}

/// A frozen, name-sorted view of a registry. Produced by
/// [`Obs::snapshot`](crate::Obs::snapshot); all renderings
/// ([`to_jsonl`](Snapshot::to_jsonl),
/// [`to_prometheus`](Snapshot::to_prometheus),
/// [`fnv_hash`](Snapshot::fnv_hash)) are pure functions of the field
/// values, so equal snapshots render byte-identically.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Logical clock at snapshot time.
    pub clock: u64,
    /// Counters, ascending by name.
    pub counters: Vec<(&'static str, u64)>,
    /// Gauges, ascending by name.
    pub gauges: Vec<(&'static str, i64)>,
    /// Histograms, ascending by name.
    pub histograms: Vec<(&'static str, HistogramSnapshot)>,
    /// Span aggregates, ascending by name.
    pub spans: Vec<SpanSummary>,
    /// Individual span events, in recording order (bounded by
    /// [`crate::MAX_SPAN_EVENTS`]).
    pub events: Vec<SpanEvent>,
    /// Span events discarded once the event buffer filled.
    pub events_dropped: u64,
    /// Structured warnings, ascending by key.
    pub warnings: Vec<WarningRecord>,
}

/// Appends `s` as a JSON string literal (with quotes) to `out`.
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Sanitizes a metric name into a Prometheus identifier: prefixes
/// `dmc_` and maps every non-alphanumeric byte to `_`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("dmc_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

impl Snapshot {
    /// The value of counter `name`, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }

    /// The level of gauge `name`, if registered.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }

    /// The frozen histogram `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, h)| h)
    }

    /// The span aggregate `name`, if any span with that name closed.
    pub fn span(&self, name: &str) -> Option<&SpanSummary> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Renders the snapshot as JSON lines: one `meta` line, then one
    /// line per counter, gauge, histogram, span aggregate, span event
    /// and warning — in that order, names ascending within each kind.
    /// Byte-deterministic: equal snapshots render identically.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\"type\":\"meta\",\"clock\":{},\"events_dropped\":{}}}",
            self.clock, self.events_dropped
        );
        for &(name, v) in &self.counters {
            out.push_str("{\"type\":\"counter\",\"name\":");
            push_json_str(&mut out, name);
            let _ = writeln!(out, ",\"value\":{v}}}");
        }
        for &(name, v) in &self.gauges {
            out.push_str("{\"type\":\"gauge\",\"name\":");
            push_json_str(&mut out, name);
            let _ = writeln!(out, ",\"value\":{v}}}");
        }
        for (name, h) in &self.histograms {
            out.push_str("{\"type\":\"histogram\",\"name\":");
            push_json_str(&mut out, name);
            let _ = write!(out, ",\"count\":{},\"sum\":{}", h.count, h.sum);
            match h.min {
                Some(min) => {
                    let _ = write!(out, ",\"min\":{min}");
                }
                None => out.push_str(",\"min\":null"),
            }
            let _ = write!(out, ",\"max\":{},\"buckets\":[", h.max);
            for (i, &(idx, n)) in h.buckets.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{idx},{n}]");
            }
            out.push_str("]}\n");
        }
        for s in &self.spans {
            out.push_str("{\"type\":\"span\",\"name\":");
            push_json_str(&mut out, s.name);
            let _ = writeln!(
                out,
                ",\"count\":{},\"total_ticks\":{},\"max_ticks\":{}}}",
                s.count, s.total_ticks, s.max_ticks
            );
        }
        for e in &self.events {
            out.push_str("{\"type\":\"event\",\"name\":");
            push_json_str(&mut out, e.name);
            let _ = writeln!(out, ",\"enter\":{},\"exit\":{}}}", e.enter, e.exit);
        }
        for w in &self.warnings {
            out.push_str("{\"type\":\"warning\",\"key\":");
            push_json_str(&mut out, w.key);
            out.push_str(",\"message\":");
            push_json_str(&mut out, &w.message);
            let _ = writeln!(out, ",\"count\":{}}}", w.count);
        }
        out
    }

    /// Renders the snapshot in Prometheus text exposition format. Names
    /// are prefixed `dmc_` and non-alphanumerics become `_`; histograms
    /// emit cumulative `_bucket{le="..."}` series (upper bounds are the
    /// log2 bucket edges `2^i − 1`) plus `_sum` and `_count`; span
    /// aggregates emit `_count` and `_ticks_total`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# TYPE dmc_clock_ticks counter");
        let _ = writeln!(out, "dmc_clock_ticks {}", self.clock);
        for &(name, v) in &self.counters {
            let p = prom_name(name);
            let _ = writeln!(out, "# TYPE {p} counter");
            let _ = writeln!(out, "{p} {v}");
        }
        for &(name, v) in &self.gauges {
            let p = prom_name(name);
            let _ = writeln!(out, "# TYPE {p} gauge");
            let _ = writeln!(out, "{p} {v}");
        }
        for (name, h) in &self.histograms {
            let p = prom_name(name);
            let _ = writeln!(out, "# TYPE {p} histogram");
            let mut cumulative = 0u64;
            for &(idx, n) in &h.buckets {
                cumulative += n;
                let _ = writeln!(
                    out,
                    "{p}_bucket{{le=\"{}\"}} {cumulative}",
                    bucket_upper_bound(idx as usize)
                );
            }
            let _ = writeln!(out, "{p}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "{p}_sum {}", h.sum);
            let _ = writeln!(out, "{p}_count {}", h.count);
        }
        for s in &self.spans {
            let p = prom_name(s.name);
            let _ = writeln!(out, "# TYPE {p}_spans_count counter");
            let _ = writeln!(out, "{p}_spans_count {}", s.count);
            let _ = writeln!(out, "# TYPE {p}_spans_ticks_total counter");
            let _ = writeln!(out, "{p}_spans_ticks_total {}", s.total_ticks);
        }
        out
    }

    /// FNV-1a hash of the [`to_jsonl`](Snapshot::to_jsonl) rendering —
    /// the replay-pinning fingerprint: bitwise-identical telemetry
    /// across replays and worker counts means identical hashes.
    pub fn fnv_hash(&self) -> u64 {
        fnv1a(self.to_jsonl().as_bytes())
    }

    /// The delta from `before` to `self` (both taken from the same
    /// registry, `self` later). Counters, gauge levels, histogram
    /// counts/sums/buckets, span counts/totals and warning counts
    /// subtract (saturating); histogram `min`/`max` and span `max_ticks`
    /// keep the current value (extremes have no meaningful delta);
    /// metrics whose delta is entirely zero are omitted; events are
    /// the suffix recorded since `before`.
    pub fn diff(&self, before: &Snapshot) -> Snapshot {
        let mut out = Snapshot {
            clock: self.clock.saturating_sub(before.clock),
            ..Snapshot::default()
        };
        for &(name, v) in &self.counters {
            let d = v.saturating_sub(before.counter(name).unwrap_or(0));
            if d > 0 {
                out.counters.push((name, d));
            }
        }
        for &(name, v) in &self.gauges {
            let d = v - before.gauge(name).unwrap_or(0);
            if d != 0 {
                out.gauges.push((name, d));
            }
        }
        for (name, h) in &self.histograms {
            let empty = HistogramSnapshot::default();
            let b = before.histogram(name).unwrap_or(&empty);
            let count = h.count.saturating_sub(b.count);
            if count == 0 {
                continue;
            }
            let mut buckets = Vec::new();
            for &(idx, n) in &h.buckets {
                let prev = b
                    .buckets
                    .iter()
                    .find(|&&(i, _)| i == idx)
                    .map_or(0, |&(_, n)| n);
                let d = n.saturating_sub(prev);
                if d > 0 {
                    buckets.push((idx, d));
                }
            }
            out.histograms.push((
                name,
                HistogramSnapshot {
                    count,
                    sum: h.sum.wrapping_sub(b.sum),
                    min: h.min,
                    max: h.max,
                    buckets,
                },
            ));
        }
        for s in &self.spans {
            let (bc, bt) = before
                .span(s.name)
                .map_or((0, 0), |b| (b.count, b.total_ticks));
            let count = s.count.saturating_sub(bc);
            if count > 0 {
                out.spans.push(SpanSummary {
                    name: s.name,
                    count,
                    total_ticks: s.total_ticks.saturating_sub(bt),
                    max_ticks: s.max_ticks,
                });
            }
        }
        if self.events.len() >= before.events.len() {
            out.events = self.events[before.events.len()..].to_vec();
        }
        out.events_dropped = self.events_dropped.saturating_sub(before.events_dropped);
        for w in &self.warnings {
            let prev = before
                .warnings
                .iter()
                .find(|b| b.key == w.key)
                .map_or(0, |b| b.count);
            let count = w.count.saturating_sub(prev);
            if count > 0 {
                out.warnings.push(WarningRecord {
                    key: w.key,
                    message: w.message.clone(),
                    count,
                });
            }
        }
        out
    }

    /// Merges `other` into `self` by the same rules as
    /// [`Obs::absorb`](crate::Obs::absorb): counts add, extremes fold,
    /// events append, clocks add. Useful for combining already-frozen
    /// per-fork snapshots without a live registry.
    pub fn absorb(&mut self, other: &Snapshot) {
        fn merge_by_name<T: Clone>(
            dst: &mut Vec<(&'static str, T)>,
            src: &[(&'static str, T)],
            fold: impl Fn(&mut T, &T),
        ) {
            for (name, v) in src {
                match dst.iter_mut().find(|(n, _)| n == name) {
                    Some((_, existing)) => fold(existing, v),
                    None => dst.push((name, v.clone())),
                }
            }
            dst.sort_by_key(|&(n, _)| n);
        }
        self.clock += other.clock;
        merge_by_name(&mut self.counters, &other.counters, |a, b| *a += *b);
        merge_by_name(&mut self.gauges, &other.gauges, |a, b| *a += *b);
        merge_by_name(&mut self.histograms, &other.histograms, |a, b| {
            a.count += b.count;
            a.sum = a.sum.wrapping_add(b.sum);
            a.min = match (a.min, b.min) {
                (Some(x), Some(y)) => Some(x.min(y)),
                (x, y) => x.or(y),
            };
            a.max = a.max.max(b.max);
            for &(idx, n) in &b.buckets {
                match a.buckets.iter_mut().find(|(i, _)| *i == idx) {
                    Some((_, existing)) => *existing += n,
                    None => a.buckets.push((idx, n)),
                }
            }
            a.buckets.sort_by_key(|&(i, _)| i);
        });
        for s in &other.spans {
            match self.spans.iter_mut().find(|d| d.name == s.name) {
                Some(d) => {
                    d.count += s.count;
                    d.total_ticks += s.total_ticks;
                    d.max_ticks = d.max_ticks.max(s.max_ticks);
                }
                None => self.spans.push(*s),
            }
        }
        self.spans.sort_by_key(|s| s.name);
        for e in &other.events {
            if self.events.len() < crate::MAX_SPAN_EVENTS {
                self.events.push(*e);
            } else {
                self.events_dropped += 1;
            }
        }
        self.events_dropped += other.events_dropped;
        for w in &other.warnings {
            match self.warnings.iter_mut().find(|d| d.key == w.key) {
                Some(d) => d.count += w.count,
                None => self.warnings.push(w.clone()),
            }
        }
        self.warnings.sort_by(|a, b| a.key.cmp(b.key));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Obs;

    fn sample() -> Obs {
        let obs = Obs::enabled();
        obs.counter("b.second").add(2);
        obs.counter("a.first").add(1);
        obs.gauge("depth").add(3);
        let h = obs.histogram("latency");
        for v in [0u64, 1, 5, 5, 300] {
            h.record(v);
        }
        {
            let _s = obs.span("work");
            obs.advance(7);
        }
        obs.warn_once("w.key", "some \"quoted\" detail\n".into());
        obs
    }

    #[test]
    fn jsonl_is_sorted_typed_and_escaped() {
        let text = sample().snapshot().to_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines[0],
            "{\"type\":\"meta\",\"clock\":7,\"events_dropped\":0}"
        );
        assert_eq!(
            lines[1],
            "{\"type\":\"counter\",\"name\":\"a.first\",\"value\":1}"
        );
        assert_eq!(
            lines[2],
            "{\"type\":\"counter\",\"name\":\"b.second\",\"value\":2}"
        );
        assert_eq!(
            lines[3],
            "{\"type\":\"gauge\",\"name\":\"depth\",\"value\":3}"
        );
        assert_eq!(
            lines[4],
            "{\"type\":\"histogram\",\"name\":\"latency\",\"count\":5,\"sum\":311,\
             \"min\":0,\"max\":300,\"buckets\":[[0,1],[1,1],[3,2],[9,1]]}"
        );
        assert_eq!(
            lines[5],
            "{\"type\":\"span\",\"name\":\"work\",\"count\":1,\"total_ticks\":7,\"max_ticks\":7}"
        );
        assert_eq!(
            lines[6],
            "{\"type\":\"event\",\"name\":\"work\",\"enter\":0,\"exit\":7}"
        );
        assert_eq!(
            lines[7],
            "{\"type\":\"warning\",\"key\":\"w.key\",\
             \"message\":\"some \\\"quoted\\\" detail\\n\",\"count\":1}"
        );
        assert_eq!(lines.len(), 8);
    }

    #[test]
    fn prometheus_buckets_are_cumulative_with_log2_edges() {
        let text = sample().snapshot().to_prometheus();
        assert!(text.contains("# TYPE dmc_latency histogram"));
        assert!(text.contains("dmc_latency_bucket{le=\"0\"} 1"));
        assert!(text.contains("dmc_latency_bucket{le=\"1\"} 2"));
        assert!(text.contains("dmc_latency_bucket{le=\"7\"} 4"));
        assert!(text.contains("dmc_latency_bucket{le=\"511\"} 5"));
        assert!(text.contains("dmc_latency_bucket{le=\"+Inf\"} 5"));
        assert!(text.contains("dmc_latency_sum 311"));
        assert!(text.contains("dmc_latency_count 5"));
        assert!(text.contains("dmc_a_first 1"));
        assert!(text.contains("dmc_work_spans_ticks_total 7"));
    }

    #[test]
    fn fnv_hash_is_stable_and_input_sensitive() {
        let a = sample().snapshot();
        let b = sample().snapshot();
        assert_eq!(a.fnv_hash(), b.fnv_hash());
        let other = Obs::enabled();
        other.counter("a.first").add(2);
        assert_ne!(a.fnv_hash(), other.snapshot().fnv_hash());
        // Pin the FNV-1a primitive itself against the workspace constants.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn diff_subtracts_and_drops_zero_deltas() {
        let obs = Obs::enabled();
        obs.counter("grow").add(3);
        obs.counter("idle").add(9);
        obs.histogram("h").record(4);
        let before = obs.snapshot();
        obs.counter("grow").add(2);
        obs.histogram("h").record(16);
        obs.advance(5);
        let delta = obs.diff(&before);
        assert_eq!(delta.clock, 5);
        assert_eq!(delta.counter("grow"), Some(2));
        assert_eq!(delta.counter("idle"), None);
        let h = delta.histogram("h").expect("h grew in the delta window");
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 16);
        assert_eq!(h.buckets, vec![(5, 1)]);
        // A self-diff is empty apart from extremes-free structure.
        let now = obs.snapshot();
        let zero = now.diff(&now);
        assert!(zero.counters.is_empty() && zero.histograms.is_empty());
        assert_eq!(zero.clock, 0);
    }

    #[test]
    fn snapshot_absorb_matches_registry_absorb() {
        let a = sample().snapshot();
        let b = sample().snapshot();
        let mut frozen = a.clone();
        frozen.absorb(&b);
        let live = Obs::enabled();
        live.absorb(&a);
        live.absorb(&b);
        assert_eq!(frozen.fnv_hash(), live.snapshot().fnv_hash());
    }
}
