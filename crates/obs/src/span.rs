//! Span tracing against the logical clock.

use crate::registry::Obs;

/// Cap on the retained span-event trace per registry; aggregates
/// ([`crate::SpanSummary`]) keep counting past it, and the snapshot
/// reports how many events were dropped.
pub const MAX_SPAN_EVENTS: usize = 8192;

/// One recorded enter/exit pair, in logical-clock ticks of the registry
/// that recorded it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// The span's name.
    pub name: &'static str,
    /// Logical clock at entry.
    pub enter: u64,
    /// Logical clock at exit (`exit − enter` is the span's tick cost).
    pub exit: u64,
}

/// Per-name running aggregate of closed spans.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct SpanAgg {
    pub(crate) count: u64,
    pub(crate) total_ticks: u64,
    pub(crate) max_ticks: u64,
}

/// An open span: records its exit (at the registry's then-current
/// logical clock) when dropped. Obtained from [`Obs::span`]; a span from
/// a disabled registry is inert.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    pub(crate) obs: &'a Obs,
    pub(crate) name: &'static str,
    pub(crate) enter: u64,
    pub(crate) live: bool,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if self.live {
            self.obs.record_span(self.name, self.enter);
        }
    }
}
