//! Opt-in wallclock profiling for driver binaries.
//!
//! Wallclock is the one thing the telemetry core must never touch: a
//! nanosecond in a [`Snapshot`](crate::Snapshot) would make every hash
//! machine-dependent. Drivers still legitimately want a rough "where did
//! the seconds go" answer, so this module quarantines `Instant` behind
//! an explicit profiler whose output goes to a human (stderr, a log) and
//! **never** into a snapshot. Library crates must not use it.

// dmc-lint: allow-file(det-wallclock) wallclock is quarantined here by design: WallProfiler is driver-only and its readings never enter a Snapshot or any hashed artifact

use std::time::Instant;

/// Accumulates coarse wallclock bins for a driver binary.
///
/// Usage: `mark(label)` at each phase boundary; the time since the
/// previous mark is charged to that label. [`WallProfiler::render`]
/// produces a human-readable multi-line summary. Bins are reported in
/// first-use order — this is presentation, not telemetry, and it is the
/// caller's job to keep it out of anything deterministic.
#[derive(Debug)]
pub struct WallProfiler {
    start: Instant,
    last: Instant,
    bins: Vec<(&'static str, f64)>,
}

impl Default for WallProfiler {
    fn default() -> Self {
        Self::new()
    }
}

impl WallProfiler {
    /// Starts profiling now.
    pub fn new() -> Self {
        let now = Instant::now();
        WallProfiler {
            start: now,
            last: now,
            bins: Vec::new(),
        }
    }

    /// Charges the wallclock since the previous mark (or construction)
    /// to `label`.
    pub fn mark(&mut self, label: &'static str) {
        let now = Instant::now();
        let secs = now.duration_since(self.last).as_secs_f64();
        self.last = now;
        match self.bins.iter_mut().find(|(l, _)| *l == label) {
            Some((_, acc)) => *acc += secs,
            None => self.bins.push((label, secs)),
        }
    }

    /// Total wallclock seconds since construction.
    pub fn total_secs(&self) -> f64 {
        self.last.duration_since(self.start).as_secs_f64()
            + Instant::now().duration_since(self.last).as_secs_f64()
    }

    /// A human-readable summary, one `label: seconds` line per bin.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (label, secs) in &self.bins {
            out.push_str(&format!("wall {label}: {secs:.3}s\n"));
        }
        out.push_str(&format!("wall total: {:.3}s\n", self.total_secs()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_accumulate_and_render() {
        let mut p = WallProfiler::new();
        p.mark("setup");
        p.mark("solve");
        p.mark("solve");
        let text = p.render();
        assert!(text.contains("wall setup:"));
        assert!(text.contains("wall solve:"));
        assert!(text.contains("wall total:"));
        assert_eq!(p.bins.len(), 2, "repeat labels share a bin");
        assert!(p.total_secs() >= 0.0);
    }
}
