//! The registry handle: metric registration, the logical clock, span
//! recording, forking and snapshotting.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use crate::metrics::{Counter, Gauge, Histogram, HistogramCell};
use crate::snapshot::{HistogramSnapshot, Snapshot, SpanSummary, WarningRecord};
use crate::span::{SpanAgg, SpanEvent, SpanGuard, MAX_SPAN_EVENTS};

/// One registered metric cell.
#[derive(Debug)]
enum Metric {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicI64>),
    Histogram(Arc<HistogramCell>),
}

/// Span trace storage: bounded event list plus unbounded aggregates.
#[derive(Debug, Default)]
struct SpanLog {
    aggs: BTreeMap<&'static str, SpanAgg>,
    events: Vec<SpanEvent>,
    dropped: u64,
}

/// Structured warnings: one record per key, with a repeat count.
#[derive(Debug, Default)]
struct WarnLog {
    entries: BTreeMap<&'static str, (String, u64)>,
}

/// Registry internals behind one [`Obs`] handle.
#[derive(Debug)]
struct Inner {
    /// The logical clock: monotone ticks advanced by instrumented code
    /// (pivots, simulated nanoseconds, submission seqs) — never wallclock.
    clock: AtomicU64,
    metrics: Mutex<BTreeMap<&'static str, Metric>>,
    spans: Mutex<SpanLog>,
    warnings: Mutex<WarnLog>,
}

/// Recovers the data behind a poisoned lock: every recorder only ever
/// appends commutative updates, so a panicking holder cannot leave the
/// maps structurally broken — telemetry keeps collecting.
fn relock<'a, T>(
    r: Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    r.unwrap_or_else(PoisonError::into_inner)
}

/// A cheap, cloneable, `Send + Sync` handle to a telemetry registry —
/// or to nothing at all ([`Obs::disabled`], the default), in which case
/// every operation is a no-op branch with no allocation.
///
/// Clones share the registry. Equality is identity: two handles compare
/// equal iff they are both disabled or share one registry (this is what
/// lets configuration structs like `SolverOptions` keep `PartialEq`).
#[derive(Debug, Clone, Default)]
pub struct Obs(Option<Arc<Inner>>);

impl PartialEq for Obs {
    fn eq(&self, other: &Self) -> bool {
        match (&self.0, &other.0) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

impl Obs {
    /// The no-op handle: collects nothing, allocates nothing.
    pub fn disabled() -> Self {
        Obs(None)
    }

    /// A fresh, empty, enabled registry.
    pub fn enabled() -> Self {
        Obs(Some(Arc::new(Inner {
            clock: AtomicU64::new(0),
            metrics: Mutex::new(BTreeMap::new()),
            spans: Mutex::new(SpanLog::default()),
            warnings: Mutex::new(WarnLog::default()),
        })))
    }

    /// Whether this handle is attached to a registry.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// An independent registry with its own clock, enabled iff `self`
    /// is. This is the unit of parallelism: give each worker/shard/trial
    /// a fork, then [`Obs::absorb`] the forks' snapshots in a fixed
    /// order — span traces and clock reads stay deterministic because
    /// each fork only ever sees one deterministic operation sequence.
    pub fn fork(&self) -> Obs {
        if self.is_enabled() {
            Obs::enabled()
        } else {
            Obs::disabled()
        }
    }

    // ---- logical clock --------------------------------------------------

    /// Advances the logical clock by `n` ticks (commutative).
    #[inline]
    pub fn advance(&self, n: u64) {
        if let Some(inner) = &self.0 {
            inner.clock.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Raises the logical clock to at least `t` (commutative; used by
    /// recorders whose domain already has a monotone time, e.g.
    /// simulated nanoseconds).
    #[inline]
    pub fn advance_to(&self, t: u64) {
        if let Some(inner) = &self.0 {
            inner.clock.fetch_max(t, Ordering::Relaxed);
        }
    }

    /// Current logical clock (0 when disabled). Not commutative with
    /// concurrent [`Obs::advance`] calls — read it only from contexts
    /// that own the registry (or a fork).
    pub fn tick(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |inner| inner.clock.load(Ordering::Relaxed))
    }

    // ---- metric registration --------------------------------------------

    /// The counter registered under `name`, creating it on first use.
    ///
    /// A name can hold only one metric kind; asking for a registered
    /// name with a different kind records a structured warning and
    /// returns a detached handle (the misuse is visible in the snapshot
    /// instead of panicking mid-solve).
    pub fn counter(&self, name: &'static str) -> Counter {
        let Some(inner) = &self.0 else {
            return Counter(None);
        };
        let mut metrics = relock(inner.metrics.lock());
        match metrics
            .entry(name)
            .or_insert_with(|| Metric::Counter(Arc::new(AtomicU64::new(0))))
        {
            Metric::Counter(cell) => Counter(Some(Arc::clone(&*cell))),
            _ => {
                drop(metrics);
                self.warn_once("obs.kind_mismatch", format!("{name} is not a counter"));
                Counter(None)
            }
        }
    }

    /// The gauge registered under `name`, creating it on first use (same
    /// kind-mismatch contract as [`Obs::counter`]).
    pub fn gauge(&self, name: &'static str) -> Gauge {
        let Some(inner) = &self.0 else {
            return Gauge(None);
        };
        let mut metrics = relock(inner.metrics.lock());
        match metrics
            .entry(name)
            .or_insert_with(|| Metric::Gauge(Arc::new(AtomicI64::new(0))))
        {
            Metric::Gauge(cell) => Gauge(Some(Arc::clone(&*cell))),
            _ => {
                drop(metrics);
                self.warn_once("obs.kind_mismatch", format!("{name} is not a gauge"));
                Gauge(None)
            }
        }
    }

    /// The histogram registered under `name`, creating it on first use
    /// (same kind-mismatch contract as [`Obs::counter`]).
    pub fn histogram(&self, name: &'static str) -> Histogram {
        let Some(inner) = &self.0 else {
            return Histogram(None);
        };
        let mut metrics = relock(inner.metrics.lock());
        match metrics
            .entry(name)
            .or_insert_with(|| Metric::Histogram(Arc::new(HistogramCell::new())))
        {
            Metric::Histogram(cell) => Histogram(Some(Arc::clone(&*cell))),
            _ => {
                drop(metrics);
                self.warn_once("obs.kind_mismatch", format!("{name} is not a histogram"));
                Histogram(None)
            }
        }
    }

    // ---- spans ----------------------------------------------------------

    /// Opens a span at the current logical clock; its exit is recorded
    /// when the guard drops. Spans are per-registry state: record them
    /// only from contexts that own the registry (or a fork).
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        SpanGuard {
            obs: self,
            name,
            enter: self.tick(),
            live: self.is_enabled(),
        }
    }

    /// Closes a span opened at `enter` (called by [`SpanGuard::drop`]).
    pub(crate) fn record_span(&self, name: &'static str, enter: u64) {
        let Some(inner) = &self.0 else {
            return;
        };
        let exit = inner.clock.load(Ordering::Relaxed);
        let ticks = exit.saturating_sub(enter);
        let mut spans = relock(inner.spans.lock());
        let agg = spans.aggs.entry(name).or_default();
        agg.count += 1;
        agg.total_ticks += ticks;
        agg.max_ticks = agg.max_ticks.max(ticks);
        if spans.events.len() < MAX_SPAN_EVENTS {
            spans.events.push(SpanEvent { name, enter, exit });
        } else {
            spans.dropped += 1;
        }
    }

    // ---- warnings -------------------------------------------------------

    /// Records a structured warning under `key`. The message of the
    /// first occurrence is kept, later occurrences only bump the count —
    /// so parallel drivers get one clean record instead of interleaved
    /// stderr garbage. Returns `true` iff this was the first occurrence
    /// (callers that also want a human-visible line print on `true`).
    pub fn warn_once(&self, key: &'static str, message: String) -> bool {
        let Some(inner) = &self.0 else {
            return false;
        };
        let mut warnings = relock(inner.warnings.lock());
        let entry = warnings.entries.entry(key).or_insert_with(|| (message, 0));
        entry.1 += 1;
        entry.1 == 1
    }

    // ---- snapshot / diff / merge ----------------------------------------

    /// Freezes the registry into a name-sorted, deterministic
    /// [`Snapshot`]. Disabled handles return the empty snapshot.
    pub fn snapshot(&self) -> Snapshot {
        let Some(inner) = &self.0 else {
            return Snapshot::default();
        };
        let mut snap = Snapshot {
            clock: inner.clock.load(Ordering::Relaxed),
            ..Snapshot::default()
        };
        {
            let metrics = relock(inner.metrics.lock());
            for (name, metric) in metrics.iter() {
                match metric {
                    Metric::Counter(c) => snap.counters.push((name, c.load(Ordering::Relaxed))),
                    Metric::Gauge(g) => snap.gauges.push((name, g.load(Ordering::Relaxed))),
                    Metric::Histogram(h) => {
                        let count = h.count.load(Ordering::Relaxed);
                        let buckets: Vec<(u8, u64)> = h
                            .buckets
                            .iter()
                            .enumerate()
                            .filter_map(|(i, b)| {
                                let n = b.load(Ordering::Relaxed);
                                (n > 0).then_some((i as u8, n))
                            })
                            .collect();
                        snap.histograms.push((
                            name,
                            HistogramSnapshot {
                                count,
                                sum: h.sum.load(Ordering::Relaxed),
                                min: (count > 0).then(|| h.min.load(Ordering::Relaxed)),
                                max: h.max.load(Ordering::Relaxed),
                                buckets,
                            },
                        ));
                    }
                }
            }
        }
        {
            let spans = relock(inner.spans.lock());
            for (name, agg) in spans.aggs.iter() {
                snap.spans.push(SpanSummary {
                    name,
                    count: agg.count,
                    total_ticks: agg.total_ticks,
                    max_ticks: agg.max_ticks,
                });
            }
            snap.events = spans.events.clone();
            snap.events_dropped = spans.dropped;
        }
        {
            let warnings = relock(inner.warnings.lock());
            for (key, (message, count)) in warnings.entries.iter() {
                snap.warnings.push(WarningRecord {
                    key,
                    message: message.clone(),
                    count: *count,
                });
            }
        }
        snap
    }

    /// The delta since `before`: shorthand for
    /// `self.snapshot().diff(before)`.
    pub fn diff(&self, before: &Snapshot) -> Snapshot {
        self.snapshot().diff(before)
    }

    /// Folds a snapshot (typically of a fork) into this registry:
    /// counters/gauges add, histograms add bucket-wise, span aggregates
    /// add and events append (respecting [`MAX_SPAN_EVENTS`]), warnings
    /// add, and the clock advances by the snapshot's clock (forks start
    /// at zero, so total ticks accumulate). Absorbing forks in a fixed
    /// order yields a deterministic merged registry.
    pub fn absorb(&self, snap: &Snapshot) {
        if !self.is_enabled() {
            return;
        }
        for &(name, v) in &snap.counters {
            self.counter(name).add(v);
        }
        for &(name, v) in &snap.gauges {
            self.gauge(name).add(v);
        }
        for (name, h) in &snap.histograms {
            let target = self.histogram(name);
            if let Some(cell) = &target.0 {
                cell.count.fetch_add(h.count, Ordering::Relaxed);
                cell.sum.fetch_add(h.sum, Ordering::Relaxed);
                if let Some(min) = h.min {
                    cell.min.fetch_min(min, Ordering::Relaxed);
                }
                cell.max.fetch_max(h.max, Ordering::Relaxed);
                for &(i, n) in &h.buckets {
                    cell.buckets[i as usize].fetch_add(n, Ordering::Relaxed);
                }
            }
        }
        if let Some(inner) = &self.0 {
            let mut spans = relock(inner.spans.lock());
            for s in &snap.spans {
                let agg = spans.aggs.entry(s.name).or_default();
                agg.count += s.count;
                agg.total_ticks += s.total_ticks;
                agg.max_ticks = agg.max_ticks.max(s.max_ticks);
            }
            for e in &snap.events {
                if spans.events.len() < MAX_SPAN_EVENTS {
                    spans.events.push(*e);
                } else {
                    spans.dropped += 1;
                }
            }
            spans.dropped += snap.events_dropped;
            let mut warnings = relock(inner.warnings.lock());
            for w in &snap.warnings {
                let entry = warnings
                    .entries
                    .entry(w.key)
                    .or_insert_with(|| (w.message.clone(), 0));
                entry.1 += w.count;
            }
        }
        self.advance(snap.clock);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert_and_equal_to_itself() {
        let off = Obs::disabled();
        assert!(!off.is_enabled());
        off.advance(5);
        assert_eq!(off.tick(), 0);
        off.counter("x").inc();
        off.warn_once("k", "m".into());
        let snap = off.snapshot();
        assert!(snap.counters.is_empty() && snap.warnings.is_empty());
        assert_eq!(off, Obs::disabled());
        assert_ne!(off, Obs::enabled());
    }

    #[test]
    fn clones_share_the_registry_and_compare_equal() {
        let a = Obs::enabled();
        let b = a.clone();
        a.counter("n").add(2);
        b.counter("n").add(3);
        assert_eq!(a.snapshot().counter("n"), Some(5));
        assert_eq!(a, b);
        assert_ne!(a, Obs::enabled());
    }

    #[test]
    fn kind_mismatch_warns_instead_of_panicking() {
        let obs = Obs::enabled();
        obs.counter("m").inc();
        let g = obs.gauge("m");
        g.set(7); // detached: must not corrupt the counter
        let snap = obs.snapshot();
        assert_eq!(snap.counter("m"), Some(1));
        assert_eq!(snap.warnings.len(), 1);
        assert_eq!(snap.warnings[0].key, "obs.kind_mismatch");
    }

    #[test]
    fn spans_measure_logical_ticks() {
        let obs = Obs::enabled();
        {
            let _outer = obs.span("outer");
            obs.advance(10);
            {
                let _inner = obs.span("inner");
                obs.advance(3);
            }
            obs.advance(2);
        }
        let snap = obs.snapshot();
        let outer = snap.span("outer").expect("outer span was recorded");
        assert_eq!(
            (outer.count, outer.total_ticks, outer.max_ticks),
            (1, 15, 15)
        );
        let inner = snap.span("inner").expect("inner span was recorded");
        assert_eq!(inner.total_ticks, 3);
        // Events record absolute enter/exit ticks, inner closes first.
        assert_eq!(
            snap.events[0],
            SpanEvent {
                name: "inner",
                enter: 10,
                exit: 13
            }
        );
        assert_eq!(
            snap.events[1],
            SpanEvent {
                name: "outer",
                enter: 0,
                exit: 15
            }
        );
    }

    #[test]
    fn warn_once_keeps_one_record_with_a_count() {
        let obs = Obs::enabled();
        assert!(obs.warn_once("env", "first message".into()));
        assert!(!obs.warn_once("env", "second message ignored".into()));
        let snap = obs.snapshot();
        assert_eq!(snap.warnings.len(), 1);
        assert_eq!(snap.warnings[0].message, "first message");
        assert_eq!(snap.warnings[0].count, 2);
    }

    #[test]
    fn absorb_merges_forks_deterministically() {
        let parent = Obs::enabled();
        let mk = |pivots: u64, depth: u64| {
            let f = parent.fork();
            f.counter("pivots").add(pivots);
            f.histogram("depth").record(depth);
            {
                let _s = f.span("solve");
                f.advance(pivots);
            }
            f.snapshot()
        };
        let (a, b) = (mk(4, 1), mk(6, 8));
        parent.absorb(&a);
        parent.absorb(&b);
        let snap = parent.snapshot();
        assert_eq!(snap.counter("pivots"), Some(10));
        assert_eq!(snap.clock, 10);
        let h = snap.histogram("depth").expect("depth histogram merged");
        assert_eq!(h.count, 2);
        assert_eq!((h.min, h.max), (Some(1), 8));
        let s = snap.span("solve").expect("solve spans merged");
        assert_eq!((s.count, s.total_ticks, s.max_ticks), (2, 10, 6));
        // Same forks absorbed in the same order → identical snapshot.
        let parent2 = Obs::enabled();
        parent2.absorb(&a);
        parent2.absorb(&b);
        assert_eq!(parent2.snapshot().fnv_hash(), snap.fnv_hash());
    }
}
