//! dmc-obs: deterministic telemetry for the deadline-multipath stack.
//!
//! The solver, fleet, protocol and simulator crates all expose behavior
//! that matters for evaluation — simplex pivots, warm-basis hits, shard
//! queue depths, degradation-ladder rungs, injected fault counts — but
//! ad-hoc per-crate tuples cannot be exported, diffed or asserted on
//! uniformly. This crate is the one telemetry substrate they share:
//!
//! * [`Obs`] — a cheap, cloneable handle to a [metric registry]. The
//!   default handle is **disabled**: every operation is a branch on a
//!   `None` and performs no allocation, so library code can be
//!   instrumented unconditionally while the uninstrumented configuration
//!   stays at tier-1 performance (`obs_overhead` in `dmc-bench` gates
//!   this in CI).
//! * [`Counter`] / [`Gauge`] / [`Histogram`] — named metrics. Histograms
//!   use **fixed log2 buckets** (bucket `i ≥ 1` holds values in
//!   `[2^(i-1), 2^i)`; bucket 0 holds zero), so bucket boundaries are a
//!   pure function of the value and never drift between runs.
//! * **Span traces** ([`Obs::span`]) — enter/exit events recorded
//!   against a **logical clock**: a monotone `u64` advanced explicitly
//!   by the instrumented code (simplex pivots, simulated nanoseconds,
//!   service submission sequence numbers — never wallclock). Snapshots
//!   are therefore bit-identical across replays, machines and thread
//!   counts. Wallclock enrichment exists only as the opt-in
//!   [`WallProfiler`], intended for driver binaries, never library code.
//! * [`Snapshot`] — a frozen, name-sorted view of a registry with
//!   deterministic [JSON-lines](Snapshot::to_jsonl) and
//!   [Prometheus-style text](Snapshot::to_prometheus) renderings (both
//!   hand-rolled: this workspace builds offline), an FNV-1a
//!   [hash](Snapshot::fnv_hash) for replay pinning, a
//!   [`diff`](Snapshot::diff) for before/after deltas, and
//!   [`absorb`](Snapshot::absorb) for deterministic merging.
//!
//! # Threading model
//!
//! Registries are explicit values threaded through configuration structs
//! (`dmc_lp::SolverOptions::obs`, `dmc_fleet::FleetConfig::obs`,
//! `dmc_experiments::runner::RunConfig::obs`) — there is no global
//! registry. A handle is `Send + Sync`; counter/gauge/histogram updates
//! and [`Obs::advance`]/[`Obs::advance_to`] are **commutative** (atomic
//! adds and maxes), so concurrent recorders still produce a
//! deterministic final snapshot. Span recording and [`Obs::tick`] reads
//! are *not* commutative: code that records spans from parallel workers
//! must give each worker its own [`Obs::fork`] and merge the forks'
//! snapshots in a deterministic order (what the fleet service and the
//! Monte-Carlo engine do — per shard and per trial respectively).
//!
//! # Example
//!
//! ```
//! use dmc_obs::Obs;
//!
//! let obs = Obs::enabled();
//! let pivots = obs.counter("lp.pivots");
//! {
//!     let _solve = obs.span("lp.solve");
//!     pivots.add(17);
//!     obs.advance(17); // the logical clock counts pivots here
//! }
//! let snap = obs.snapshot();
//! assert_eq!(snap.counter("lp.pivots"), Some(17));
//! assert_eq!(snap.clock, 17);
//! // Disabled handles cost nothing and collect nothing.
//! let off = Obs::disabled();
//! off.counter("lp.pivots").add(1);
//! assert!(off.snapshot().counters.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod metrics;
mod registry;
mod snapshot;
mod span;
mod wall;

pub use metrics::{bucket_index, bucket_upper_bound, Counter, Gauge, Histogram, NUM_BUCKETS};
pub use registry::Obs;
pub use snapshot::{fnv1a, HistogramSnapshot, Snapshot, SpanSummary, WarningRecord};
pub use span::{SpanEvent, SpanGuard, MAX_SPAN_EVENTS};
pub use wall::WallProfiler;
