//! Metric handles and their shared cells.
//!
//! A handle is either attached to a live cell (registry enabled) or
//! empty (registry disabled); every operation on an empty handle is a
//! no-op branch. Cells are atomics, and every update is commutative
//! (add / max / min), so any interleaving of concurrent recorders
//! produces the same final value — the property the workspace's
//! bit-identical-across-thread-counts snapshots rest on.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// Number of log2 histogram buckets: bucket 0 for zero, buckets 1..=64
/// for `[2^(i-1), 2^i)`.
pub const NUM_BUCKETS: usize = 65;

/// The log2 bucket a value falls into: 0 for 0, otherwise
/// `floor(log2(v)) + 1` — i.e. bucket `i ≥ 1` holds `[2^(i-1), 2^i)`.
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// The largest value bucket `i` admits (inclusive): 0 for bucket 0,
/// `2^i − 1` otherwise (saturating at `u64::MAX` for bucket 64).
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A monotonically increasing event count.
#[derive(Debug, Clone, Default)]
pub struct Counter(pub(crate) Option<Arc<AtomicU64>>);

impl Counter {
    /// A detached no-op counter (what a disabled registry hands out).
    pub fn disabled() -> Self {
        Counter(None)
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 when detached).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A signed level (queue depth, eta-file length).
///
/// In parallel contexts use the commutative [`Gauge::add`]/[`Gauge::sub`]
/// rather than [`Gauge::set`], whose last-writer-wins outcome depends on
/// scheduling.
#[derive(Debug, Clone, Default)]
pub struct Gauge(pub(crate) Option<Arc<AtomicI64>>);

impl Gauge {
    /// A detached no-op gauge.
    pub fn disabled() -> Self {
        Gauge(None)
    }

    /// Overwrites the level (single-threaded recorders only).
    #[inline]
    pub fn set(&self, v: i64) {
        if let Some(cell) = &self.0 {
            cell.store(v, Ordering::Relaxed);
        }
    }

    /// Raises the level by `d` (commutative).
    #[inline]
    pub fn add(&self, d: i64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(d, Ordering::Relaxed);
        }
    }

    /// Lowers the level by `d` (commutative).
    #[inline]
    pub fn sub(&self, d: i64) {
        self.add(-d);
    }

    /// Current level (0 when detached).
    pub fn get(&self) -> i64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// Shared storage of one histogram.
#[derive(Debug)]
pub(crate) struct HistogramCell {
    pub(crate) count: AtomicU64,
    pub(crate) sum: AtomicU64,
    /// `u64::MAX` until the first record (rendered as absent).
    pub(crate) min: AtomicU64,
    pub(crate) max: AtomicU64,
    pub(crate) buckets: [AtomicU64; NUM_BUCKETS],
}

impl HistogramCell {
    pub(crate) fn new() -> Self {
        HistogramCell {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// A distribution over `u64` values in fixed log2 buckets.
#[derive(Debug, Clone, Default)]
pub struct Histogram(pub(crate) Option<Arc<HistogramCell>>);

impl Histogram {
    /// A detached no-op histogram.
    pub fn disabled() -> Self {
        Histogram(None)
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(cell) = &self.0 {
            cell.count.fetch_add(1, Ordering::Relaxed);
            cell.sum.fetch_add(v, Ordering::Relaxed);
            cell.min.fetch_min(v, Ordering::Relaxed);
            cell.max.fetch_max(v, Ordering::Relaxed);
            cell.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Number of recorded observations (0 when detached).
    pub fn count(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |c| c.count.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        // Bucket 0: only zero.
        assert_eq!(bucket_index(0), 0);
        // Bucket i ≥ 1 holds [2^(i-1), 2^i): both endpoints pinned.
        for i in 1..64usize {
            let lo = 1u64 << (i - 1);
            let hi = (1u64 << i) - 1;
            assert_eq!(bucket_index(lo), i, "low edge of bucket {i}");
            assert_eq!(bucket_index(hi), i, "high edge of bucket {i}");
            assert_eq!(bucket_upper_bound(i), hi);
        }
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn detached_handles_are_inert() {
        let c = Counter::disabled();
        c.inc();
        c.add(5);
        assert_eq!(c.get(), 0);
        let g = Gauge::disabled();
        g.set(3);
        g.add(2);
        g.sub(1);
        assert_eq!(g.get(), 0);
        let h = Histogram::disabled();
        h.record(9);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn histogram_cell_tracks_extremes() {
        let h = Histogram(Some(Arc::new(HistogramCell::new())));
        for v in [4u64, 1, 9, 0] {
            h.record(v);
        }
        let cell = h.0.as_ref().expect("histogram was built attached");
        assert_eq!(cell.count.load(Ordering::Relaxed), 4);
        assert_eq!(cell.sum.load(Ordering::Relaxed), 14);
        assert_eq!(cell.min.load(Ordering::Relaxed), 0);
        assert_eq!(cell.max.load(Ordering::Relaxed), 9);
        assert_eq!(cell.buckets[0].load(Ordering::Relaxed), 1); // 0
        assert_eq!(cell.buckets[1].load(Ordering::Relaxed), 1); // 1
        assert_eq!(cell.buckets[3].load(Ordering::Relaxed), 1); // 4
        assert_eq!(cell.buckets[4].load(Ordering::Relaxed), 1); // 9
    }
}
